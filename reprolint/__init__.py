"""Entry shim: makes ``python -m reprolint`` work from the repo root.

``python -m`` puts the current directory on ``sys.path``, so this tiny
package is importable from a fresh checkout with nothing installed. It
points its search path at the real implementation in
``tools/reprolint`` and re-exports its public surface — every
submodule (``reprolint.cli``, ``reprolint.rules``, ...) resolves there.
"""

from __future__ import annotations

import os

__path__ = [
    os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        "tools",
        "reprolint",
    )
]

from ._api import *  # noqa: E402,F401,F403
from ._api import __all__  # noqa: E402,F401
