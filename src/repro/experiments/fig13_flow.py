"""Figure 13 — the daemon's process-handling and placement flow, traced.

Fig. 13 is a flowchart; its reproduction is the daemon implementation
itself (:mod:`repro.core`). This module makes the flow *observable*: it
runs a scripted scenario that exercises every edge of the chart — a
process arrives (raise voltage, place, settle), gets classified, changes
class mid-run (retune in place), a second process arrives and triggers
migrations, and processes exit (replacement + settle down) — and records
each flowchart step as it happens.

The emitted trace doubles as living documentation of the protocol and as
a regression fixture: the step sequence is asserted by the Fig. 13 tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.tables import format_table
from ..platform.chip import Chip
from ..platform.specs import get_spec
from ..policies.daemon import OnlineMonitoringDaemon
from ..policies.surfaces import PolicyEvent
from ..sim.system import ServerSystem
from ..units import fmt_freq, fmt_mv
from ..workloads.generator import JobSpec, Workload


@dataclass(frozen=True)
class FlowStep:
    """One observed step of the Fig. 13 flow."""

    time_s: float
    step: str
    detail: str


@dataclass
class Fig13Result:
    """The traced flow of one scripted scenario."""

    platform: str
    steps: List[FlowStep] = field(default_factory=list)
    violations: int = 0

    def kinds(self) -> List[str]:
        """Step kinds in order (for sequence assertions)."""
        return [s.step for s in self.steps]

    def format(self) -> str:
        """Render the traced flow."""
        return format_table(
            ("t(s)", "step", "detail"),
            [(round(s.time_s, 2), s.step, s.detail) for s in self.steps],
            title=f"Figure 13 - daemon flow trace ({self.platform})",
        )


class _TracingDaemon(OnlineMonitoringDaemon):
    """The daemon with flow-step journaling.

    ``decide`` snapshots the pre-actuation rail, and the post-actuation
    :meth:`~repro.policies.surfaces.Policy.on_applied` hook (the live
    observation now shows the applied state) journals the Fig. 13 step
    the event corresponds to.
    """

    def __init__(self, spec, sink: List[FlowStep]):
        super().__init__(spec)
        self._sink = sink
        self._before_mv = 0
        self._retunes_before = 0

    def decide(self, obs):
        self._before_mv = obs.voltage_mv
        self._retunes_before = self.retunes
        return super().decide(obs)

    def on_applied(self, obs, action):
        def log(step: str, detail: str) -> None:
            self._sink.append(
                FlowStep(time_s=obs.now, step=step, detail=detail)
            )

        event = obs.event
        before = self._before_mv
        after = obs.voltage_mv
        process = obs.process
        if event is PolicyEvent.ADMIT:
            if after > before:
                log(
                    "raise_voltage",
                    f"pre-invocation {fmt_mv(before)} -> {fmt_mv(after)} "
                    f"for pid {process.pid}",
                )
            log("process_arrives", f"pid {process.pid} ({process.name})")
        elif event is PolicyEvent.STARTED:
            log(
                "placement",
                f"pid {process.pid} on cores {list(process.cores)}",
            )
            if after != before:
                log(
                    "settle_voltage",
                    f"{fmt_mv(before)} -> {fmt_mv(after)}",
                )
        elif event is PolicyEvent.FINISHED:
            log("process_exits", f"pid {process.pid} ({process.name})")
            if after != before:
                log(
                    "settle_voltage",
                    f"{fmt_mv(before)} -> {fmt_mv(after)}",
                )
        elif event is PolicyEvent.TICK:
            if self.retunes > self._retunes_before:
                state = obs.chip_state()
                freqs = sorted(
                    {
                        fmt_freq(state.pmd_frequencies_hz[p])
                        for p in state.active_pmds
                    }
                )
                log(
                    "class_change_retune",
                    f"active clocks now {freqs}, rail "
                    f"{fmt_mv(state.voltage_mv)}",
                )


def scripted_workload() -> Workload:
    """The scenario: phase-changing job, then a CPU job, then exits."""
    return Workload(
        jobs=(
            JobSpec(0, "setup-then-crunch", 2, 0.0),
            JobSpec(1, "namd", 1, 30.0),
        ),
        duration_s=600.0,
        max_cores=8,
        seed=0,
    )


def run(platform: str = "xgene2") -> Fig13Result:
    """Trace the daemon through the scripted scenario."""
    spec = get_spec(platform)
    result = Fig13Result(platform=spec.name)
    chip = Chip(spec)
    daemon = _TracingDaemon(spec, result.steps)
    system = ServerSystem(chip, scripted_workload(), daemon)
    outcome = system.run()
    result.violations = len(outcome.violations)
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 13 decision flow with its violation count."""
    result = run(platform or "xgene2")
    return f"{result.format()}\n\nviolations: {result.violations}"


def main() -> None:
    """Print the traced flow via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig13")


if __name__ == "__main__":
    main()
