"""Figure 13 — the daemon's process-handling and placement flow, traced.

Fig. 13 is a flowchart; its reproduction is the daemon implementation
itself (:mod:`repro.core`). This module makes the flow *observable*: it
runs a scripted scenario that exercises every edge of the chart — a
process arrives (raise voltage, place, settle), gets classified, changes
class mid-run (retune in place), a second process arrives and triggers
migrations, and processes exit (replacement + settle down) — and records
each flowchart step as it happens.

The emitted trace doubles as living documentation of the protocol and as
a regression fixture: the step sequence is asserted by the Fig. 13 tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..analysis.tables import format_table
from ..core.daemon import OnlineMonitoringDaemon
from ..platform.chip import Chip
from ..platform.specs import get_spec
from ..sim.system import ServerSystem
from ..units import fmt_freq, fmt_mv
from ..workloads.generator import JobSpec, Workload


@dataclass(frozen=True)
class FlowStep:
    """One observed step of the Fig. 13 flow."""

    time_s: float
    step: str
    detail: str


@dataclass
class Fig13Result:
    """The traced flow of one scripted scenario."""

    platform: str
    steps: List[FlowStep] = field(default_factory=list)
    violations: int = 0

    def kinds(self) -> List[str]:
        """Step kinds in order (for sequence assertions)."""
        return [s.step for s in self.steps]

    def format(self) -> str:
        """Render the traced flow."""
        return format_table(
            ("t(s)", "step", "detail"),
            [(round(s.time_s, 2), s.step, s.detail) for s in self.steps],
            title=f"Figure 13 - daemon flow trace ({self.platform})",
        )


class _TracingDaemon(OnlineMonitoringDaemon):
    """The daemon with flow-step journaling."""

    def __init__(self, spec, sink: List[FlowStep]):
        super().__init__(spec)
        self._sink = sink

    def _log(self, step: str, detail: str) -> None:
        self._sink.append(
            FlowStep(time_s=self.system.now if self.system else 0.0,
                     step=step, detail=detail)
        )

    def place(self, process):
        before = self.system.chip.voltage_mv
        result = super().place(process)
        after = self.system.chip.voltage_mv
        if after > before:
            self._log(
                "raise_voltage",
                f"pre-invocation {fmt_mv(before)} -> {fmt_mv(after)} "
                f"for pid {process.pid}",
            )
        self._log("process_arrives", f"pid {process.pid} ({process.name})")
        return result

    def on_process_started(self, process):
        before = self.system.chip.voltage_mv
        super().on_process_started(process)
        after = self.system.chip.voltage_mv
        self._log(
            "placement",
            f"pid {process.pid} on cores {list(process.cores)}",
        )
        if after != before:
            self._log(
                "settle_voltage",
                f"{fmt_mv(before)} -> {fmt_mv(after)}",
            )

    def on_process_finished(self, process):
        before = self.system.chip.voltage_mv
        super().on_process_finished(process)
        after = self.system.chip.voltage_mv
        self._log("process_exits", f"pid {process.pid} ({process.name})")
        if after != before:
            self._log(
                "settle_voltage",
                f"{fmt_mv(before)} -> {fmt_mv(after)}",
            )

    def on_tick(self):
        retunes_before = self.retunes
        super().on_tick()
        if self.retunes > retunes_before:
            state = self.system.chip.state()
            freqs = sorted(
                {
                    fmt_freq(state.pmd_frequencies_hz[p])
                    for p in state.active_pmds
                }
            )
            self._log(
                "class_change_retune",
                f"active clocks now {freqs}, rail "
                f"{fmt_mv(state.voltage_mv)}",
            )


def scripted_workload() -> Workload:
    """The scenario: phase-changing job, then a CPU job, then exits."""
    return Workload(
        jobs=(
            JobSpec(0, "setup-then-crunch", 2, 0.0),
            JobSpec(1, "namd", 1, 30.0),
        ),
        duration_s=600.0,
        max_cores=8,
        seed=0,
    )


def run(platform: str = "xgene2") -> Fig13Result:
    """Trace the daemon through the scripted scenario."""
    spec = get_spec(platform)
    result = Fig13Result(platform=spec.name)
    chip = Chip(spec)
    daemon = _TracingDaemon(spec, result.steps)
    system = ServerSystem(chip, scripted_workload(), daemon)
    outcome = system.run()
    result.violations = len(outcome.violations)
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
) -> str:
    """Render the Fig. 13 decision flow with its violation count."""
    result = run(platform or "xgene2")
    return f"{result.format()}\n\nviolations: {result.violations}"


def main() -> None:
    """Print the traced flow via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig13")


if __name__ == "__main__":
    main()
