"""Figure 11 — energy across thread and frequency configurations.

Five benchmarks, ordered from the most CPU-intensive (namd, EP) to the
most memory-intensive (milc, CG, FT), at every thread-scaling option
(max/half/quarter) and reported frequency, each at its own safe Vmin.
The paper's patterns:

* X-Gene 2 at 0.9 GHz wins energy everywhere (clock division Vmin drop);
* for CPU-intensive programs, frequency reduction from fmax to fmax/2
  barely changes energy (at best); for memory-intensive programs it is a
  clear win on both chips.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..units import fmt_freq
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import figure11_set
from .energy_runner import EnergyRunner, RunMeasurement


@dataclass(frozen=True)
class Fig11Cell:
    """One (benchmark, threads, frequency) energy measurement."""

    benchmark: str
    nthreads: int
    freq_hz: int
    measurement: RunMeasurement

    @property
    def energy_j(self) -> float:
        """Normalized energy of the configuration."""
        return self.measurement.normalized_energy_j


@dataclass
class Fig11Result:
    """The full Fig. 11 grid of one platform."""

    platform: str
    cells: List[Fig11Cell] = field(default_factory=list)

    def energy_of(
        self, benchmark: str, nthreads: int, freq_hz: int
    ) -> float:
        """Energy of one grid cell."""
        for cell in self.cells:
            if (
                cell.benchmark == benchmark
                and cell.nthreads == nthreads
                and cell.freq_hz == freq_hz
            ):
                return cell.energy_j
        raise KeyError((benchmark, nthreads, freq_hz))

    def best_frequency(self, benchmark: str, nthreads: int) -> int:
        """Frequency with the lowest energy for one benchmark/threads."""
        candidates = [
            c
            for c in self.cells
            if c.benchmark == benchmark and c.nthreads == nthreads
        ]
        return min(candidates, key=lambda c: c.energy_j).freq_hz

    def format(self) -> str:
        """Render the grid."""
        return format_table(
            ("benchmark", "threads", "freq", "Vmin(mV)", "time(s)", "E(J)"),
            [
                (
                    c.benchmark,
                    c.nthreads,
                    fmt_freq(c.freq_hz),
                    c.measurement.voltage_mv,
                    round(c.measurement.duration_s, 1),
                    round(c.energy_j, 1),
                )
                for c in self.cells
            ],
            title=f"Figure 11 - energy ({self.platform})",
        )


def run(
    platform: str = "xgene2",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    voltage: str = "safe",
) -> Fig11Result:
    """Measure the Fig. 11 grid for one platform."""
    spec = get_spec(platform)
    runner = EnergyRunner(spec)
    pool = list(benchmarks) if benchmarks else figure11_set()
    result = Fig11Result(platform=spec.name)
    threads = runner.thread_grid()
    freqs = runner.frequency_grid()
    for profile in pool:
        # Every (threads, frequency) cell of one benchmark in one
        # batched sweep; cell order matches the original scalar loops.
        configs = []
        for nthreads in threads.values():
            allocation = (
                Allocation.CLUSTERED
                if nthreads == spec.n_cores
                else Allocation.SPREADED
            )
            for freq_hz in freqs.values():
                configs.append((nthreads, allocation, freq_hz))
        for measurement in runner.measure_batch(
            profile, configs, voltage=voltage
        ):
            result.cells.append(
                Fig11Cell(
                    benchmark=profile.name,
                    nthreads=measurement.nthreads,
                    freq_hz=measurement.freq_hz,
                    measurement=measurement,
                )
            )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 11 energy sweep for one platform.

    A ``policy`` key reruns the sweep at that policy's idle-machine
    rail mode (default: the safe-Vmin sweep the paper reports).
    """
    return run(platform or "xgene2", voltage=policy or "safe").format()


def main() -> None:
    """Print Fig. 11 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig11")


if __name__ == "__main__":
    main()
