"""Explicit experiment registry: the catalogue the orchestrator schedules.

Each paper artefact regenerator is described by one
:class:`ExperimentEntry`: its CLI name, the paper artefact it
reproduces, the module that implements it (imported lazily — this
module stays import-light so CLI startup does not pay for the whole
experiments package), its dependencies and a relative cost hint used by
the scheduler to start long-running experiments first.

Every experiment module exposes a uniform ``render`` function::

    def render(platform=None, duration_s=600.0, seed=0) -> str

returning exactly the text the CLI prints for that experiment
(``platform=None`` selects the paper's platform). Modules with several
artefacts (``tables34``) use a distinct ``render_name`` per entry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError

#: Root package of the experiment modules.
_PACKAGE = "repro.experiments"


@dataclass(frozen=True)
class ExperimentEntry:
    """One schedulable experiment in the registry."""

    #: CLI/registry name, e.g. ``fig7``.
    name: str
    #: Paper artefact the experiment regenerates.
    artefact: str
    #: Module implementing the experiment, relative to ``repro.experiments``.
    module: str
    #: Names of experiments that must complete first (e.g. the report
    #: waits for everything it summarizes, so their campaigns are warm).
    depends: Tuple[str, ...] = ()
    #: Relative cost hint in seconds; the scheduler launches costly
    #: experiments first to minimize the parallel makespan.
    cost: float = 0.1
    #: Paper platform, or ``None`` for platform-independent artefacts.
    default_platform: Optional[str] = None
    #: Name of the module's render function.
    render_name: str = "render"
    #: Whether the experiment consumes ``duration_s``/``seed``.
    timed: bool = False

    @property
    def module_path(self) -> str:
        """Fully qualified dotted module path."""
        return f"{_PACKAGE}.{self.module}"


#: The registry, in canonical (paper) order. Output of ``run-all`` is
#: merged in this order regardless of parallel completion order.
REGISTRY: Tuple[ExperimentEntry, ...] = (
    ExperimentEntry(
        name="table1",
        artefact="Table I — platform parameters",
        module="table1",
        cost=0.01,
    ),
    ExperimentEntry(
        name="fig3",
        artefact="Fig. 3 — safe-Vmin campaign",
        module="fig3_vmin_characterization",
        cost=0.05,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig4",
        artefact="Fig. 4 — single/two-core regions",
        module="fig4_core_variation",
        cost=0.05,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig5",
        artefact="Fig. 5 — failure probability curves",
        module="fig5_pfail",
        cost=0.02,
        default_platform="xgene3",
    ),
    ExperimentEntry(
        name="fig6",
        artefact="Fig. 6 — droop detections per bin",
        module="fig6_droops",
        cost=0.02,
        default_platform="xgene3",
    ),
    ExperimentEntry(
        name="fig7",
        artefact="Fig. 7 — clustered vs spreaded energy",
        module="fig7_allocation_energy",
        cost=0.02,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig8",
        artefact="Fig. 8 — full-chip contention ratios",
        module="fig8_contention",
        cost=0.02,
        default_platform="xgene3",
    ),
    ExperimentEntry(
        name="fig9",
        artefact="Fig. 9 — L3C access rates + threshold",
        module="fig9_l3c_rates",
        cost=0.02,
        default_platform="xgene3",
    ),
    ExperimentEntry(
        name="fig10",
        artefact="Fig. 10 — Vmin factor decomposition",
        module="fig10_factors",
        cost=0.02,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig11",
        artefact="Fig. 11 — energy across configurations",
        module="fig11_energy",
        cost=0.02,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig12",
        artefact="Fig. 12 — ED2P across configurations",
        module="fig12_ed2p",
        cost=0.02,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="table2",
        artefact="Table II — droop classes and safe Vmin",
        module="table2",
        cost=0.05,
        default_platform="xgene3",
    ),
    ExperimentEntry(
        name="fig13",
        artefact="Fig. 13 — traced daemon decision flow",
        module="fig13_flow",
        cost=0.1,
        default_platform="xgene2",
    ),
    ExperimentEntry(
        name="fig14",
        artefact="Fig. 14 — Baseline vs Optimal power",
        module="fig14_power_timeline",
        cost=0.7,
        default_platform="xgene3",
        timed=True,
    ),
    ExperimentEntry(
        name="fig15",
        artefact="Fig. 15 — load and process classes",
        module="fig15_load_timeline",
        cost=0.7,
        default_platform="xgene3",
        timed=True,
    ),
    ExperimentEntry(
        name="table3",
        artefact=(
            "Table III — X-Gene 2 "  # reprolint: disable=RL007 -- paper caption
            "four-configuration evaluation"
        ),
        module="tables34",
        cost=0.7,
        render_name="render_table3",
        timed=True,
    ),
    ExperimentEntry(
        name="table4",
        artefact=(
            "Table IV — X-Gene 3 "  # reprolint: disable=RL007 -- paper caption
            "four-configuration evaluation"
        ),
        module="tables34",
        cost=1.1,
        render_name="render_table4",
        timed=True,
    ),
    ExperimentEntry(
        name="variation",
        artefact="extension: chip-to-chip variation & golden-die risk",
        module="variation_study",
        cost=2.7,
        default_platform="xgene2",
        timed=True,
    ),
    ExperimentEntry(
        name="thermal",
        artefact="extension: junction temperature, leakage, thermal guard",
        module="thermal_study",
        cost=5.0,
        default_platform="xgene3",
        timed=True,
    ),
    ExperimentEntry(
        name="report",
        artefact="EXPERIMENTS.md-style reproduction report",
        module="report",
        depends=(
            "fig3",
            "fig4",
            "fig5",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12",
            "table2",
            "table3",
            "table4",
        ),
        cost=2.2,
        timed=True,
    ),
)

_BY_NAME: Dict[str, ExperimentEntry] = {
    entry.name: entry for entry in REGISTRY
}


def experiment_names() -> Tuple[str, ...]:
    """All registered experiment names in canonical order."""
    return tuple(entry.name for entry in REGISTRY)


def get_entry(name: str) -> ExperimentEntry:
    """Registry entry for ``name``."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: "
            f"{', '.join(experiment_names())}"
        ) from None


def topological_order(
    names: Sequence[str],
    registry: Sequence[ExperimentEntry] = REGISTRY,
) -> List[ExperimentEntry]:
    """Entries for ``names`` in a deterministic dependency-safe order.

    Dependencies outside the selection are ignored (running ``report``
    alone must work); among ready entries the canonical registry order
    breaks ties, so the result is stable. ``registry`` defaults to the
    package registry and exists for testing alternative catalogues.
    """
    if registry is REGISTRY:
        selected = [get_entry(name) for name in dict.fromkeys(names)]
    else:
        by_name = {entry.name: entry for entry in registry}
        try:
            selected = [
                by_name[name] for name in dict.fromkeys(names)
            ]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown experiment {exc.args[0]!r}"
            ) from None
    chosen = {entry.name for entry in selected}
    remaining = {
        entry.name: {dep for dep in entry.depends if dep in chosen}
        for entry in selected
    }
    order: List[ExperimentEntry] = []
    while remaining:
        ready = [
            entry
            for entry in registry
            if entry.name in remaining and not remaining[entry.name]
        ]
        if not ready:
            cycle = ", ".join(sorted(remaining))
            raise ConfigurationError(
                f"dependency cycle among experiments: {cycle}"
            )
        for entry in ready:
            del remaining[entry.name]
            for deps in remaining.values():
                deps.discard(entry.name)
            order.append(entry)
    return order
