"""Figure 15 — system load and running-process classes over one hour.

The per-second trace of the evaluation run: the 1-minute moving average
of the system load, plus the number of running CPU-intensive and
memory-intensive processes. Reproduction criteria: phases of high and
low utilisation with occasional peaks at the machine's capacity, and a
mix of both classes throughout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.tables import format_table
from ..core.configurations import run_configuration
from ..sim.tracing import TimelineTrace, moving_average
from ..workloads.generator import ServerWorkloadGenerator, Workload
from ..platform.specs import get_spec


@dataclass
class Fig15Result:
    """Load and class-count series of one Optimal run."""

    platform: str
    max_cores: int
    trace: TimelineTrace

    def load_moving_average(self, window_s: int = 60) -> List[float]:
        """1-minute moving average of busy cores (the paper's curve)."""
        return moving_average(
            [float(v) for v in self.trace.load_series()], window_s
        )

    def peak_load(self) -> int:
        """Largest sampled busy-core count."""
        return max(self.trace.load_series(), default=0)

    def class_counts(self) -> List[Tuple[int, int]]:
        """(cpu-intensive, memory-intensive) per second."""
        return self.trace.class_series()

    def has_both_classes(self) -> bool:
        """True when both classes appear in the run."""
        counts = self.class_counts()
        return any(c > 0 for c, _ in counts) and any(
            m > 0 for _, m in counts
        )

    def series(self, bucket_s: int = 60) -> List[Tuple[int, float, int, int]]:
        """(minute, avg load, max cpu procs, max mem procs) buckets."""
        loads = self.load_moving_average()
        classes = self.class_counts()
        rows = []
        for start in range(0, len(loads), bucket_s):
            chunk_load = loads[start:start + bucket_s]
            chunk_cls = classes[start:start + bucket_s]
            rows.append(
                (
                    start // bucket_s,
                    sum(chunk_load) / len(chunk_load),
                    max((c for c, _ in chunk_cls), default=0),
                    max((m for _, m in chunk_cls), default=0),
                )
            )
        return rows

    def format(self) -> str:
        """Render per-minute load and class peaks."""
        return format_table(
            ("minute", "avg load", "cpu procs", "mem procs"),
            [
                (minute, round(load, 2), cpu, mem)
                for minute, load, cpu, mem in self.series()
            ],
            title=(
                f"Figure 15 - system load and process classes "
                f"({self.platform}, {self.max_cores} cores)"
            ),
        )


def run(
    platform: str = "xgene3",
    duration_s: float = 3600.0,
    seed: int = 0,
    config: str = "optimal",
    workload: Optional[Workload] = None,
) -> Fig15Result:
    """Replay one workload and keep its load trace."""
    spec = get_spec(platform)
    if workload is None:
        generator = ServerWorkloadGenerator(
            max_cores=spec.n_cores, seed=seed
        )
        workload = generator.generate(duration_s)
    result = run_configuration(platform, workload, config)
    return Fig15Result(
        platform=spec.name,
        max_cores=spec.n_cores,
        trace=result.trace,
    )


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 15 load timeline.

    A ``policy`` key replays the run under that policy (default: the
    Optimal run the paper traces).
    """
    return run(
        platform or "xgene3",
        duration_s=duration_s,
        seed=seed,
        config=policy or "optimal",
    ).format()


def main() -> None:
    """Print Fig. 15 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig15")


if __name__ == "__main__":
    main()
