"""Figure 3 — complete safe-Vmin characterization of both chips.

For each of the 25 benchmarks, the paper measures the safe Vmin (1000
passing runs) at every thread-scaling option and reported frequency:
X-Gene 2 with 8 and 4 threads at 2.4/1.2/0.9 GHz, X-Gene 3 with 32, 16
and 8 threads at 3.0/1.5 GHz. The headline observation: for a fixed
thread count and frequency, all 25 benchmarks land within ~10 mV of each
other — workload variation has essentially vanished in multicore runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..platform.registry import (
    CharacterizationGrid,
    default_characterization_grid,
    model_for_spec,
)
from ..platform.specs import ChipSpec, get_spec
from ..units import fmt_freq
from ..vmin.characterize import VminCampaign
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set


def characterization_grid(spec: ChipSpec) -> CharacterizationGrid:
    """Thread/frequency grid of a platform's Fig. 3 campaign.

    Declared in the platform's bundle (``[characterization]`` in its
    spec file); platforms registered without a bundle get a derived
    grid instead of silently borrowing another chip's.
    """
    model = model_for_spec(spec)
    if model is not None:
        return model.characterization
    return default_characterization_grid(spec)


@dataclass(frozen=True)
class Fig3Row:
    """Safe Vmin of one benchmark at one configuration."""

    benchmark: str
    nthreads: int
    freq_hz: int
    safe_vmin_mv: int
    guardband_mv: float


@dataclass
class Fig3Result:
    """All characterization points of one platform."""

    platform: str
    rows: List[Fig3Row] = field(default_factory=list)

    def vmin_of(self, benchmark: str, nthreads: int, freq_hz: int) -> int:
        """Safe Vmin of one configuration."""
        for row in self.rows:
            if (
                row.benchmark == benchmark
                and row.nthreads == nthreads
                and row.freq_hz == freq_hz
            ):
                return row.safe_vmin_mv
        raise KeyError((benchmark, nthreads, freq_hz))

    def config_spread_mv(self, nthreads: int, freq_hz: int) -> float:
        """Across-benchmark Vmin spread of one (threads, freq) config.

        The paper's claim: at most ~10 mV in multicore runs.
        """
        values = [
            r.safe_vmin_mv
            for r in self.rows
            if r.nthreads == nthreads and r.freq_hz == freq_hz
        ]
        return max(values) - min(values)

    def format(self) -> str:
        """Render grouped by configuration."""
        table_rows: List[Tuple[str, str, int, int, float]] = []
        for row in sorted(
            self.rows,
            key=lambda r: (-r.nthreads, -r.freq_hz, r.benchmark),
        ):
            table_rows.append(
                (
                    f"{row.nthreads}T",
                    fmt_freq(row.freq_hz),
                    row.safe_vmin_mv,
                    int(row.guardband_mv),
                    row.benchmark,
                )
            )
        return format_table(
            ("threads", "freq", "Vmin(mV)", "guardband(mV)", "benchmark"),
            table_rows,
            title=f"Figure 3 - safe Vmin characterization ({self.platform})",
        )


def run(
    platform: str = "xgene2",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    mode: str = "analytic",
    silicon_seed: int = 0,
) -> Fig3Result:
    """Run the Fig. 3 campaign for one platform."""
    spec = get_spec(platform)
    grid = characterization_grid(spec)
    pool = list(benchmarks) if benchmarks else characterization_set()
    campaign = VminCampaign(spec, seed=silicon_seed)
    result = Fig3Result(platform=spec.name)
    # The whole (threads x freq x benchmark) campaign runs as one batched
    # kernel sweep; row order matches the original scalar loop.
    points = []
    for nthreads in grid.threads:
        allocation = (
            Allocation.CLUSTERED
            if nthreads == spec.n_cores
            else Allocation.SPREADED
        )
        for freq_hz in grid.freqs_hz:
            for profile in pool:
                points.append(
                    campaign.point(
                        profile.name,
                        nthreads,
                        allocation,
                        freq_hz,
                        workload_delta_mv=profile.vmin_delta_mv,
                    )
                )
    for point, measured in zip(
        points, campaign.measure_safe_vmin_batch(points, mode=mode)
    ):
        result.rows.append(
            Fig3Row(
                benchmark=point.workload,
                nthreads=point.nthreads,
                freq_hz=point.freq_hz,
                safe_vmin_mv=measured.safe_vmin_mv,
                guardband_mv=measured.guardband_mv,
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 3 campaign for one platform."""
    return run(platform or "xgene2").format()


def main() -> None:
    """Print the Fig. 3 characterization via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig3")


if __name__ == "__main__":
    main()
