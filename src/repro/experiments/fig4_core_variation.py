"""Figure 4 — single- and two-core Vmin regions on X-Gene 2 at 2.4 GHz.

With one or two active cores, the droop noise floor is low and the
static core-to-core variation shows: each core (and each PMD) has its own
safe region. On the paper's chip, PMD2 (cores 4/5) is the most robust
module and PMD0/PMD1 the most sensitive; workload-to-workload variation
reaches ~40 mV and core-to-core variation ~30 mV.

For every core (single-core runs) and every PMD (two-core runs) this
experiment reports the safe region boundary per benchmark: the safe Vmin
(bottom of the yellow region in the paper's plot) and the crash point
(bottom of the dark region).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..units import hz_to_ghz
from ..vmin.characterize import VminCampaign
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set


@dataclass(frozen=True)
class Fig4Row:
    """Safe/unsafe boundary of one benchmark on one core (or PMD)."""

    benchmark: str
    scope: str  # "core" or "pmd"
    index: int
    safe_vmin_mv: int
    crash_mv: int


@dataclass
class Fig4Result:
    """All single-core and two-core region boundaries."""

    platform: str
    freq_hz: int
    rows: List[Fig4Row] = field(default_factory=list)

    def _scope_vmins(self, scope: str) -> dict:
        out: dict = {}
        for row in self.rows:
            if row.scope == scope:
                out.setdefault(row.index, []).append(row.safe_vmin_mv)
        return out

    def core_to_core_spread_mv(self) -> float:
        """Spread of per-core worst-case Vmin (paper: up to ~30 mV)."""
        worst = {
            idx: max(vals) for idx, vals in self._scope_vmins("core").items()
        }
        return max(worst.values()) - min(worst.values())

    def workload_spread_mv(self) -> float:
        """Largest per-core across-benchmark spread (paper: up to ~40 mV)."""
        spreads = [
            max(vals) - min(vals)
            for vals in self._scope_vmins("core").values()
        ]
        return max(spreads)

    def most_robust_pmd(self) -> int:
        """PMD with the lowest worst-case two-core Vmin (paper: PMD2)."""
        worst = {
            idx: max(vals) for idx, vals in self._scope_vmins("pmd").items()
        }
        return min(worst, key=worst.get)

    def most_sensitive_pmd(self) -> int:
        """PMD with the highest worst-case two-core Vmin (paper: PMD0/1)."""
        worst = {
            idx: max(vals) for idx, vals in self._scope_vmins("pmd").items()
        }
        return max(worst, key=worst.get)

    def format(self) -> str:
        """Render the per-core/per-PMD boundaries."""
        return format_table(
            ("scope", "index", "benchmark", "safe Vmin(mV)", "crash(mV)"),
            [
                (r.scope, r.index, r.benchmark, r.safe_vmin_mv, r.crash_mv)
                for r in self.rows
            ],
            title=(
                f"Figure 4 - single/two-core safe regions "
                f"({self.platform} @ {hz_to_ghz(self.freq_hz):.1f}GHz)"
            ),
        )


def run(
    platform: str = "xgene2",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    silicon_seed: int = 0,
    mode: str = "analytic",
) -> Fig4Result:
    """Run the Fig. 4 campaign (single-core and two-core scans)."""
    spec = get_spec(platform)
    freq_hz = spec.fmax_hz
    pool = list(benchmarks) if benchmarks else characterization_set()
    campaign = VminCampaign(spec, seed=silicon_seed)
    result = Fig4Result(platform=spec.name, freq_hz=freq_hz)
    # All per-core and per-PMD scans run as one batched kernel sweep;
    # row order matches the original scalar loops.
    points = []
    scopes: List[tuple] = []
    for core in range(spec.n_cores):
        for profile in pool:
            points.append(
                campaign.point(
                    profile.name,
                    1,
                    Allocation.CLUSTERED,
                    freq_hz,
                    cores=(core,),
                    workload_delta_mv=profile.vmin_delta_mv,
                )
            )
            scopes.append(("core", core))
    for pmd in range(spec.n_pmds):
        cores = spec.cores_of_pmd(pmd)
        for profile in pool:
            points.append(
                campaign.point(
                    profile.name,
                    len(cores),
                    Allocation.CLUSTERED,
                    freq_hz,
                    cores=cores,
                    workload_delta_mv=profile.vmin_delta_mv,
                )
            )
            scopes.append(("pmd", pmd))
    scans = campaign.scan_unsafe_region_batch(points, mode=mode)
    for point, (scope, index), scan in zip(points, scopes, scans):
        result.rows.append(
            Fig4Row(
                benchmark=point.workload,
                scope=scope,
                index=index,
                safe_vmin_mv=scan.safe_vmin_mv,
                crash_mv=scan.crash_voltage_mv,
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Fig. 4 with its spread summary."""
    result = run(platform or "xgene2")
    return (
        f"{result.format()}\n"
        f"\ncore-to-core spread: {result.core_to_core_spread_mv():.0f} mV"
        f"\nworkload spread:     {result.workload_spread_mv():.0f} mV"
        f"\nmost robust PMD:     PMD{result.most_robust_pmd()}"
    )


def main() -> None:
    """Print the Fig. 4 summary via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig4")


if __name__ == "__main__":
    main()
