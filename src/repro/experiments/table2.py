"""Table II — droop magnitude vs frequency and core allocation.

The daemon's policy table for X-Gene 3: droop-magnitude class, the
utilized-PMD counts and thread-scaling options that map to it, and the
safe Vmin at 3 GHz and 1.5 GHz. This experiment regenerates the table
from the characterization-backed :class:`VminPolicyTable` and reports the
paper's published values next to the measured ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..analysis.tables import format_table
from ..core.policy import VminPolicyTable
from ..platform.pmu import DROOP_BINS_MV
from ..platform.registry import platform_key_for_spec
from ..platform.specs import FrequencyClass, get_spec
from ..vmin.droop import droop_ladder

#: Paper Table II Vmin values for X-Gene 3, by droop class:
#: (Vmin @ 3GHz, Vmin @ 1.5GHz), in mV.
PAPER_TABLE2_MV: Tuple[Tuple[int, int], ...] = (
    (780, 770),
    (800, 780),
    (810, 790),
    (830, 820),
)

#: Paper Table II thread-scaling examples per droop class (X-Gene 3).
PAPER_THREAD_SCALING: Tuple[str, ...] = (
    "1T, 2T, 4T(clustered)",
    "8T(clustered), 4T(spreaded)",
    "16T(clustered), 8T(spreaded)",
    "32T, 16T(spreaded)",
)


@dataclass(frozen=True)
class Table2Row:
    """One droop class of the policy table."""

    droop_class: int
    droop_bin_mv: Tuple[int, int]
    max_utilized_pmds: int
    thread_scaling: str
    vmin_high_mv: int
    vmin_skip_mv: int
    paper_high_mv: Optional[int]
    paper_skip_mv: Optional[int]


@dataclass
class Table2Result:
    """The regenerated policy table plus paper references."""

    platform: str
    rows: List[Table2Row] = field(default_factory=list)

    def format(self) -> str:
        """Render measured vs paper values."""
        return format_table(
            (
                "droop(mV)",
                "PMDs",
                "thread scaling",
                "Vmin@max",
                "Vmin@half",
                "paper@max",
                "paper@half",
            ),
            [
                (
                    f"[{r.droop_bin_mv[0]},{r.droop_bin_mv[1]})",
                    r.max_utilized_pmds,
                    r.thread_scaling,
                    r.vmin_high_mv,
                    r.vmin_skip_mv,
                    r.paper_high_mv if r.paper_high_mv else "-",
                    r.paper_skip_mv if r.paper_skip_mv else "-",
                )
                for r in self.rows
            ],
            title=f"Table II - droop classes and safe Vmin ({self.platform})",
        )


def run(
    platform: str = "xgene3",
    policy: Optional[VminPolicyTable] = None,
) -> Table2Result:
    """Regenerate Table II for one platform."""
    spec = get_spec(platform)
    table = policy or VminPolicyTable.from_characterization(spec)
    ladder = droop_ladder(spec)
    # The paper publishes Table II only for its 32-core machine.
    is_paper_chip = platform_key_for_spec(spec) == "xgene3"
    result = Table2Result(platform=spec.name)
    for droop_class, bound in enumerate(ladder):
        high = table.entry(FrequencyClass.HIGH, droop_class).vmin_mv
        skip = table.entry(FrequencyClass.SKIP, droop_class).vmin_mv
        paper_high = paper_skip = None
        scaling = f"configs on <= {bound} PMDs"
        if is_paper_chip and droop_class < len(PAPER_TABLE2_MV):
            paper_high, paper_skip = PAPER_TABLE2_MV[droop_class]
            scaling = PAPER_THREAD_SCALING[droop_class]
        result.rows.append(
            Table2Row(
                droop_class=droop_class,
                droop_bin_mv=DROOP_BINS_MV[droop_class],
                max_utilized_pmds=bound,
                thread_scaling=scaling,
                vmin_high_mv=high,
                vmin_skip_mv=skip,
                paper_high_mv=paper_high,
                paper_skip_mv=paper_skip,
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Table II for one platform."""
    return run(platform or "xgene3").format()


def main() -> None:
    """Print Table II via the orchestrator."""
    from .orchestrator import run_main

    run_main("table2")


if __name__ == "__main__":
    main()
