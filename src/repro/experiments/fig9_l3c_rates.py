"""Figure 9 — L3-cache access rate per million cycles (X-Gene 3, 3 GHz).

The daemon's classification metric, measured for the 25 benchmarks at
32, 16 and 8 threads. The paper derives the 3 K accesses / 1M cycles
threshold from this data: runs above it are the memory-intensive ones
(the same programs whose Fig. 8 ratio collapses), and the class is
stable across thread counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..allocation import Allocation, cores_for, utilized_pmd_count
from ..analysis.tables import format_table
from ..core.classifier import DEFAULT_THRESHOLD
from ..perf.contention import contention_factor
from ..perf.model import bandwidth_demand_gbs, execution_state
from ..platform.specs import get_spec
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set


@dataclass(frozen=True)
class Fig9Row:
    """Measured L3C rate of one benchmark at one thread count."""

    benchmark: str
    nthreads: int
    rate_per_mcycles: float

    def memory_intensive(
        self, threshold: float = DEFAULT_THRESHOLD
    ) -> bool:
        """Class under the paper's threshold rule."""
        return self.rate_per_mcycles > threshold


@dataclass
class Fig9Result:
    """All L3C rates of one platform."""

    platform: str
    freq_hz: int
    threshold: float
    rows: List[Fig9Row] = field(default_factory=list)

    def rate_of(self, benchmark: str, nthreads: int) -> float:
        """Rate of one configuration."""
        for row in self.rows:
            if row.benchmark == benchmark and row.nthreads == nthreads:
                return row.rate_per_mcycles
        raise KeyError((benchmark, nthreads))

    def classes_stable(self) -> bool:
        """True when every benchmark classifies the same at all counts."""
        by_name: dict = {}
        for row in self.rows:
            by_name.setdefault(row.benchmark, set()).add(
                row.memory_intensive(self.threshold)
            )
        return all(len(classes) == 1 for classes in by_name.values())

    def memory_intensive_set(self) -> List[str]:
        """Benchmarks above the threshold at max threads."""
        max_threads = max(r.nthreads for r in self.rows)
        return sorted(
            r.benchmark
            for r in self.rows
            if r.nthreads == max_threads
            and r.memory_intensive(self.threshold)
        )

    def format(self) -> str:
        """Render the figure data."""
        return format_table(
            ("benchmark", "threads", "L3C/1Mcyc", "class"),
            [
                (
                    r.benchmark,
                    r.nthreads,
                    round(r.rate_per_mcycles),
                    "memory"
                    if r.memory_intensive(self.threshold)
                    else "cpu",
                )
                for r in sorted(
                    self.rows,
                    key=lambda r: (-r.rate_per_mcycles, r.nthreads),
                )
            ],
            title=(
                f"Figure 9 - L3C access rates ({self.platform}, "
                f"threshold {self.threshold:.0f})"
            ),
        )


def run(
    platform: str = "xgene3",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    threshold: float = DEFAULT_THRESHOLD,
) -> Fig9Result:
    """Measure the PMU-visible L3C rate at each thread scaling option."""
    spec = get_spec(platform)
    pool = list(benchmarks) if benchmarks else characterization_set()
    counts = [spec.n_cores, spec.n_cores // 2, spec.n_cores // 4]
    result = Fig9Result(
        platform=spec.name, freq_hz=spec.fmax_hz, threshold=threshold
    )
    for profile in pool:
        for nthreads in counts:
            allocation = (
                Allocation.CLUSTERED
                if nthreads == spec.n_cores
                else Allocation.SPREADED
            )
            cores = cores_for(spec, nthreads, allocation)
            pmds = utilized_pmd_count(spec, nthreads, allocation)
            shares = len(cores) > pmds
            demand = bandwidth_demand_gbs(profile, spec, spec.fmax_hz)
            crowd = contention_factor(spec, [demand] * nthreads)
            state = execution_state(
                profile,
                spec,
                spec.fmax_hz,
                nthreads=nthreads,
                shares_pmd=shares,
                contention=crowd,
            )
            result.rows.append(
                Fig9Row(
                    benchmark=profile.name,
                    nthreads=nthreads,
                    rate_per_mcycles=state.l3_rate_per_mcycles,
                )
            )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Fig. 9 with the memory-intensive set."""
    result = run(platform or "xgene3")
    return (
        f"{result.format()}\n"
        f"\nmemory-intensive: {', '.join(result.memory_intensive_set())}"
    )


def main() -> None:
    """Print Fig. 9 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig9")


if __name__ == "__main__":
    main()
