"""Figure 7 — energy of clustered vs spreaded allocation (4T, X-Gene 2).

All 25 benchmarks at maximum frequency with 4 threads, clustered vs
spreaded, at nominal voltage. The reported difference
``(E_clustered - E_spreaded) / E_clustered`` is negative for
CPU-intensive programs (clustered wins: fewer utilized PMDs to power)
and positive for memory-intensive programs (spreaded wins: a private L2
per thread) — spanning roughly -10 % to +14 % in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..units import hz_to_ghz
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set
from .energy_runner import EnergyRunner


@dataclass(frozen=True)
class Fig7Row:
    """Clustered/spreaded energies of one benchmark."""

    benchmark: str
    mem_fraction: float
    energy_clustered_j: float
    energy_spreaded_j: float

    @property
    def diff_pct(self) -> float:
        """Paper metric: (Ec - Es) / Ec * 100; positive = spreaded wins."""
        return (
            100.0
            * (self.energy_clustered_j - self.energy_spreaded_j)
            / self.energy_clustered_j
        )


@dataclass
class Fig7Result:
    """All allocation-energy comparisons, CPU-intensive first."""

    platform: str
    nthreads: int
    freq_hz: int
    rows: List[Fig7Row] = field(default_factory=list)

    def sorted_rows(self) -> List[Fig7Row]:
        """Rows ordered like the figure: most CPU-intensive first."""
        return sorted(self.rows, key=lambda r: r.mem_fraction)

    def span(self) -> Sequence[float]:
        """(min, max) of the difference metric."""
        diffs = [r.diff_pct for r in self.rows]
        return min(diffs), max(diffs)

    def format(self) -> str:
        """Render the figure data."""
        return format_table(
            ("benchmark", "E clustered(J)", "E spreaded(J)", "diff(%)"),
            [
                (
                    r.benchmark,
                    round(r.energy_clustered_j, 1),
                    round(r.energy_spreaded_j, 1),
                    round(r.diff_pct, 1),
                )
                for r in self.sorted_rows()
            ],
            title=(
                f"Figure 7 - allocation energy, {self.nthreads}T @ "
                f"{hz_to_ghz(self.freq_hz):.1f}GHz ({self.platform})"
            ),
        )


def run(
    platform: str = "xgene2",
    nthreads: int = 4,
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    voltage: str = "nominal",
) -> Fig7Result:
    """Measure every benchmark under both allocations."""
    spec = get_spec(platform)
    runner = EnergyRunner(spec)
    pool = list(benchmarks) if benchmarks else characterization_set()
    result = Fig7Result(
        platform=spec.name, nthreads=nthreads, freq_hz=spec.fmax_hz
    )
    for profile in pool:
        # Both allocations of one benchmark in a single batched sweep.
        clustered, spreaded = runner.measure_batch(
            profile,
            [
                (nthreads, Allocation.CLUSTERED, None),
                (nthreads, Allocation.SPREADED, None),
            ],
            voltage=voltage,
        )
        result.rows.append(
            Fig7Row(
                benchmark=profile.name,
                mem_fraction=profile.mem_fraction,
                energy_clustered_j=clustered.normalized_energy_j,
                energy_spreaded_j=spreaded.normalized_energy_j,
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Fig. 7 with its allocation-energy span.

    A ``policy`` key reruns the comparison at that policy's idle-machine
    rail mode (default: the nominal-rail comparison the paper reports).
    """
    result = run(platform or "xgene2", voltage=policy or "nominal")
    low, high = result.span()
    return (
        f"{result.format()}\n"
        f"\nspan: {low:.1f}% .. {high:+.1f}% (paper: -9.6% .. +14.2%)"
    )


def main() -> None:
    """Print Fig. 7 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig7")


if __name__ == "__main__":
    main()
