"""Figure 10 — the magnitude of each safe-Vmin factor (X-Gene 2).

The decomposition of the exposed guardband into its contributors, as a
percentage of the nominal voltage: workload variability ~1 %, core
allocation ~4 %, clock skipping ~3 %, and clock division ~12 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..vmin.model import VminModel

#: Paper values, fraction of nominal voltage (Fig. 10).
PAPER_FACTORS: Dict[str, float] = {
    "workload": 0.01,
    "core_allocation": 0.04,
    "clock_skipping": 0.03,
    "clock_division": 0.12,
}


@dataclass(frozen=True)
class Fig10Result:
    """Measured factor decomposition vs the paper's."""

    platform: str
    factors: Dict[str, float]

    def rows(self) -> List[Tuple[str, float, float]]:
        """(factor, measured %, paper %) rows."""
        return [
            (
                name,
                round(100.0 * self.factors[name], 1),
                round(100.0 * PAPER_FACTORS.get(name, 0.0), 1),
            )
            for name in self.factors
        ]

    def format(self) -> str:
        """Render measured-vs-paper."""
        return format_table(
            ("factor", "measured(%)", "paper(%)"),
            self.rows(),
            title=f"Figure 10 - Vmin factor magnitudes ({self.platform})",
        )


def run(platform: str = "xgene2", silicon_seed: int = 0) -> Fig10Result:
    """Derive the factor decomposition from the Vmin model."""
    spec = get_spec(platform)
    model = VminModel(spec, silicon_seed=silicon_seed)
    return Fig10Result(
        platform=spec.name, factors=model.factor_decomposition()
    )


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 10 factor decomposition for one platform."""
    return run(platform or "xgene2").format()


def main() -> None:
    """Print Fig. 10 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig10")


if __name__ == "__main__":
    main()
