"""Figure 8 — relative performance under full-chip contention.

Multiple copies of each program run on all cores; the y-axis is the
execution time of one solo instance divided by the execution time under
contention. Programs with high shared-resource activity (CG, FT, mcf,
milc, lbm) collapse far below 1; CPU-intensive programs (namd, EP,
gamess, povray) stay at ~1. This ratio is the paper's ground truth for
the CPU- vs memory-intensive split that the L3C threshold then captures
online (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.tables import format_table
from ..perf.model import multi_instance_performance_ratio
from ..platform.specs import get_spec
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set


@dataclass(frozen=True)
class Fig8Row:
    """Contention ratio of one benchmark."""

    benchmark: str
    mem_fraction: float
    ratio: float


@dataclass
class Fig8Result:
    """All contention ratios of one platform."""

    platform: str
    n_instances: int
    rows: List[Fig8Row] = field(default_factory=list)

    def ratio_of(self, benchmark: str) -> float:
        """Ratio of one benchmark."""
        for row in self.rows:
            if row.benchmark == benchmark:
                return row.ratio
        raise KeyError(benchmark)

    def most_memory_intensive(self, count: int = 3) -> List[str]:
        """Benchmarks with the lowest ratios (most contention-bound)."""
        ordered = sorted(self.rows, key=lambda r: r.ratio)
        return [r.benchmark for r in ordered[:count]]

    def most_cpu_intensive(self, count: int = 3) -> List[str]:
        """Benchmarks with the highest ratios."""
        ordered = sorted(self.rows, key=lambda r: -r.ratio)
        return [r.benchmark for r in ordered[:count]]

    def format(self) -> str:
        """Render the figure data."""
        return format_table(
            ("benchmark", "mem fraction", "T1/TN"),
            [
                (r.benchmark, round(r.mem_fraction, 2), round(r.ratio, 3))
                for r in sorted(self.rows, key=lambda r: -r.ratio)
            ],
            title=(
                f"Figure 8 - relative performance under contention "
                f"({self.platform}, {self.n_instances} instances)"
            ),
        )


def run(
    platform: str = "xgene3",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
) -> Fig8Result:
    """Compute the T1/TN ratio for every benchmark."""
    spec = get_spec(platform)
    pool = list(benchmarks) if benchmarks else characterization_set()
    result = Fig8Result(platform=spec.name, n_instances=spec.n_cores)
    for profile in pool:
        result.rows.append(
            Fig8Row(
                benchmark=profile.name,
                mem_fraction=profile.mem_fraction,
                ratio=multi_instance_performance_ratio(profile, spec),
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 8 contention ratios for one platform."""
    return run(platform or "xgene3").format()


def main() -> None:
    """Print Fig. 8 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig8")


if __name__ == "__main__":
    main()
