"""Experiment regenerators: one module per paper table and figure.

| Module | Paper artefact |
|---|---|
| ``table1`` | Table I — platform parameters |
| ``fig3_vmin_characterization`` | Fig. 3 — safe-Vmin campaign |
| ``fig4_core_variation`` | Fig. 4 — single/two-core regions |
| ``fig5_pfail`` | Fig. 5 — failure probability curves |
| ``fig6_droops`` | Fig. 6 — droop detections per bin |
| ``fig7_allocation_energy`` | Fig. 7 — clustered vs spreaded energy |
| ``fig8_contention`` | Fig. 8 — full-chip contention ratios |
| ``fig9_l3c_rates`` | Fig. 9 — L3C access rates + threshold |
| ``fig10_factors`` | Fig. 10 — Vmin factor decomposition |
| ``fig11_energy`` | Fig. 11 — energy across configurations |
| ``fig12_ed2p`` | Fig. 12 — ED2P across configurations |
| ``table2`` | Table II — droop classes and safe Vmin |
| ``fig13_flow`` | Fig. 13 — traced daemon decision flow |
| ``fig14_power_timeline`` | Fig. 14 — Baseline vs Optimal power |
| ``fig15_load_timeline`` | Fig. 15 — load and process classes |
| ``tables34`` | Tables III/IV — four-configuration evaluation |
| ``variation_study`` | extension: chip-to-chip variation & golden-die risk |
| ``thermal_study`` | extension: junction temperature, leakage, thermal guard |
"""

from . import (
    fig3_vmin_characterization,
    fig13_flow,
    fig4_core_variation,
    fig5_pfail,
    fig6_droops,
    fig7_allocation_energy,
    fig8_contention,
    fig9_l3c_rates,
    fig10_factors,
    fig11_energy,
    fig12_ed2p,
    fig14_power_timeline,
    fig15_load_timeline,
    report,
    table1,
    table2,
    tables34,
    thermal_study,
    variation_study,
)
from .energy_runner import CAMPAIGN_STEP_MV, EnergyRunner, RunMeasurement

__all__ = [
    "CAMPAIGN_STEP_MV",
    "EnergyRunner",
    "RunMeasurement",
    "fig13_flow",
    "fig3_vmin_characterization",
    "fig4_core_variation",
    "fig5_pfail",
    "fig6_droops",
    "fig7_allocation_energy",
    "fig8_contention",
    "fig9_l3c_rates",
    "fig10_factors",
    "fig11_energy",
    "fig12_ed2p",
    "fig14_power_timeline",
    "fig15_load_timeline",
    "report",
    "table1",
    "table2",
    "tables34",
    "thermal_study",
    "variation_study",
]
