"""Experiment regenerators: one module per paper table and figure.

| Module | Paper artefact |
|---|---|
| ``table1`` | Table I — platform parameters |
| ``fig3_vmin_characterization`` | Fig. 3 — safe-Vmin campaign |
| ``fig4_core_variation`` | Fig. 4 — single/two-core regions |
| ``fig5_pfail`` | Fig. 5 — failure probability curves |
| ``fig6_droops`` | Fig. 6 — droop detections per bin |
| ``fig7_allocation_energy`` | Fig. 7 — clustered vs spreaded energy |
| ``fig8_contention`` | Fig. 8 — full-chip contention ratios |
| ``fig9_l3c_rates`` | Fig. 9 — L3C access rates + threshold |
| ``fig10_factors`` | Fig. 10 — Vmin factor decomposition |
| ``fig11_energy`` | Fig. 11 — energy across configurations |
| ``fig12_ed2p`` | Fig. 12 — ED2P across configurations |
| ``table2`` | Table II — droop classes and safe Vmin |
| ``fig13_flow`` | Fig. 13 — traced daemon decision flow |
| ``fig14_power_timeline`` | Fig. 14 — Baseline vs Optimal power |
| ``fig15_load_timeline`` | Fig. 15 — load and process classes |
| ``tables34`` | Tables III/IV — four-configuration evaluation |
| ``variation_study`` | extension: chip-to-chip variation & golden-die risk |
| ``thermal_study`` | extension: junction temperature, leakage, thermal guard |

The catalogue itself lives in :mod:`repro.experiments.registry` and the
parallel runner in :mod:`repro.experiments.orchestrator`. Submodules
are imported **lazily** (PEP 562): ``import repro.experiments`` pays
nothing until an experiment is actually touched, which keeps CLI
startup fast.
"""

import importlib
from typing import Tuple

_SUBMODULES: Tuple[str, ...] = (
    "energy_runner",
    "fig3_vmin_characterization",
    "fig4_core_variation",
    "fig5_pfail",
    "fig6_droops",
    "fig7_allocation_energy",
    "fig8_contention",
    "fig9_l3c_rates",
    "fig10_factors",
    "fig11_energy",
    "fig12_ed2p",
    "fig13_flow",
    "fig14_power_timeline",
    "fig15_load_timeline",
    "orchestrator",
    "registry",
    "report",
    "table1",
    "table2",
    "tables34",
    "thermal_study",
    "variation_study",
)

#: Names re-exported from :mod:`repro.experiments.energy_runner`.
_ENERGY_RUNNER_EXPORTS: Tuple[str, ...] = (
    "CAMPAIGN_STEP_MV",
    "EnergyRunner",
    "RunMeasurement",
)

__all__ = sorted(_SUBMODULES + _ENERGY_RUNNER_EXPORTS)


def __getattr__(name: str):
    """Lazily import submodules and the energy-runner exports."""
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    if name in _ENERGY_RUNNER_EXPORTS:
        module = importlib.import_module(f"{__name__}.energy_runner")
        return getattr(module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return __all__
