"""Analytic single-job measurement: one benchmark at one operating point.

The paper's Section V measurements (Figs. 7, 11, 12) run one benchmark at
a time on an otherwise idle machine, at a chosen thread count, core
allocation, frequency and voltage, and record execution time and energy.
On an idle machine the fluid model is closed-form, so these measurements
need no event simulation: duration comes straight from the performance
model and power from one evaluation of the power model.

Voltage modes:

* ``nominal`` — the stock rail (how Fig. 7's allocation comparison runs);
* ``safe`` — the configuration's characterized safe Vmin, quantized to
  the campaign's 10 mV step (how the Figs. 11/12 energy study runs:
  every V/f combination is taken at its own safe Vmin).

SPEC-style replicated runs report a per-instance normalized energy next
to the raw one (Section II.B's fairness rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation import Allocation, cores_for
from ..errors import ConfigurationError
from ..kernels.power import chip_power_grid
from ..kernels.vmin import safe_vmin_grid
from ..perf.contention import (
    bandwidth_utilization,
    contention_factor,
)
from ..perf.model import bandwidth_demand_gbs, execution_state
from ..platform.specs import ChipSpec
from ..power.energy import ed2p
from ..power.model import PowerModel
from ..vmin.cache import (
    VminCache,
    get_default_cache,
    make_key,
    model_fingerprint,
    occupancy_of,
    spec_fingerprint,
)
from ..vmin.model import VminModel
from ..workloads.profiles import BenchmarkProfile

#: Voltage-sweep step of the characterization campaigns, mV.
CAMPAIGN_STEP_MV = 10


@dataclass(frozen=True)
class RunMeasurement:
    """Time/energy measurement of one benchmark configuration."""

    benchmark: str
    nthreads: int
    allocation: Allocation
    freq_hz: int
    voltage_mv: int
    duration_s: float
    energy_j: float
    #: Energy normalized per instance for replicated (SPEC) runs;
    #: equals ``energy_j`` for parallel programs.
    normalized_energy_j: float

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        return self.energy_j / self.duration_s

    @property
    def ed2p(self) -> float:
        """ED2P on the normalized energy (the paper's Fig. 12 metric)."""
        return ed2p(self.normalized_energy_j, self.duration_s)


class EnergyRunner:
    """Measures benchmarks on an idle machine at fixed operating points."""

    def __init__(
        self,
        spec: ChipSpec,
        power_model: Optional[PowerModel] = None,
        vmin_model: Optional[VminModel] = None,
        cache: Optional[VminCache] = None,
    ):
        self.spec = spec
        self.power_model = power_model or PowerModel(spec)
        self.vmin_model = vmin_model or VminModel(spec)
        #: Explicit characterization cache, or ``None`` for the process
        #: default (see :mod:`repro.vmin.cache`).
        self.cache = cache
        self._fingerprints: Optional[tuple] = None

    def safe_voltage_mv(
        self,
        profile: BenchmarkProfile,
        nthreads: int,
        allocation: Allocation,
        freq_hz: int,
    ) -> int:
        """Characterized safe Vmin of the configuration, stepped up.

        This is what the campaign of Section III.A would report: the true
        Vmin rounded up to the 10 mV sweep step. Results are memoized in
        the characterization cache — the energy sweeps of Figs. 7/11/12
        revisit the same configurations many times.
        """
        return self.safe_voltages_mv(
            profile, [(nthreads, allocation, freq_hz)]
        )[0]

    def safe_voltages_mv(
        self,
        profile: BenchmarkProfile,
        configs: Sequence[Tuple[int, Allocation, int]],
    ) -> List[int]:
        """Batched :meth:`safe_voltage_mv` over (threads, alloc, freq).

        Cache keys and stored values are identical to the scalar method's
        per configuration; only the cache-missing configurations hit the
        Vmin model, through one batched kernel evaluation.
        """
        if self._fingerprints is None:
            self._fingerprints = (
                spec_fingerprint(self.spec),
                model_fingerprint(self.vmin_model),
            )
        spec_fp, model_fp = self._fingerprints
        cache = self.cache if self.cache is not None else get_default_cache()
        results: List[Optional[int]] = [None] * len(configs)
        pending: List[Tuple[int, str, int, Tuple[int, ...]]] = []
        for i, (nthreads, allocation, freq_hz) in enumerate(configs):
            cores = cores_for(self.spec, nthreads, allocation)
            freq = self.spec.nearest_frequency(freq_hz)
            key = make_key(
                kind="safe_voltage",
                spec=spec_fp,
                model=model_fp,
                freq_class=self.spec.frequency_class(freq).value,
                cores=sorted(cores),
                pmd_occupancy=occupancy_of(self.spec, cores),
                workload=profile.name,
                workload_delta_mv=profile.vmin_delta_mv,
                seed=0,
                step_mv=CAMPAIGN_STEP_MV,
            )
            cached = cache.get(key)
            if cached is not None:
                results[i] = int(cached)
                continue
            pending.append((i, key, freq, cores))
        if pending:
            true_vmins = safe_vmin_grid(
                self.vmin_model,
                [freq for _, _, freq, _ in pending],
                [cores for _, _, _, cores in pending],
                profile.vmin_delta_mv,
            )
            for k, (i, key, freq, cores) in enumerate(pending):
                true_vmin = float(true_vmins[k])
                stepped = int(
                    -(-true_vmin // CAMPAIGN_STEP_MV) * CAMPAIGN_STEP_MV
                )
                voltage = min(stepped, self.spec.nominal_voltage_mv)
                cache.put(key, voltage)
                results[i] = voltage
        return results

    def measure(
        self,
        profile: BenchmarkProfile,
        nthreads: int,
        allocation: Allocation,
        freq_hz: Optional[int] = None,
        voltage: str = "safe",
    ) -> RunMeasurement:
        """Measure one configuration on an otherwise idle machine."""
        return self.measure_batch(
            profile, [(nthreads, allocation, freq_hz)], voltage=voltage
        )[0]

    def measure_batch(
        self,
        profile: BenchmarkProfile,
        configs: Sequence[Tuple[int, Allocation, Optional[int]]],
        voltage: str = "safe",
    ) -> List[RunMeasurement]:
        """Measure many configurations of one benchmark in one sweep.

        ``configs`` holds ``(nthreads, allocation, freq_hz)`` tuples
        (``freq_hz=None`` means fmax). Safe voltages resolve through the
        batched characterization lookup and all power evaluations run as
        one :func:`~repro.kernels.power.chip_power_grid` call; every
        measurement is bit-identical to the scalar per-point path.

        ``voltage`` is ``"safe"``, ``"nominal"``, or any policy registry
        key — the analytic sweep has no event loop to run a live policy
        in, so a key resolves to the policy's declared idle-machine rail
        mode (:func:`~repro.policies.registry.rail_mode`).
        """
        if voltage not in ("safe", "nominal"):
            from ..policies.registry import rail_mode

            try:
                voltage = rail_mode(voltage)
            except ConfigurationError:
                raise ConfigurationError(
                    f"unknown voltage mode {voltage!r}: expected 'safe', "
                    "'nominal' or a policy registry key with an "
                    "idle-machine rail mode"
                ) from None
        prepared = []
        for nthreads, allocation, freq_hz in configs:
            freq = self.spec.nearest_frequency(
                freq_hz if freq_hz is not None else self.spec.fmax_hz
            )
            cores = cores_for(self.spec, nthreads, allocation)
            pmds = sorted({self.spec.pmd_of_core(c) for c in cores})
            # A thread shares its PMD when any PMD holds two of the job's
            # threads (clustered runs, or spreaded runs past n_pmds
            # threads).
            shares = any(
                sum(1 for c in cores if self.spec.pmd_of_core(c) == p) > 1
                for p in pmds
            )
            demand = bandwidth_demand_gbs(profile, self.spec, freq)
            demands = [demand] * nthreads
            crowd = contention_factor(self.spec, demands)
            exec_state = execution_state(
                profile,
                self.spec,
                freq,
                nthreads=nthreads,
                shares_pmd=shares,
                contention=crowd,
            )
            prepared.append(
                (
                    nthreads,
                    allocation,
                    freq,
                    cores,
                    exec_state,
                    bandwidth_utilization(self.spec, demands),
                )
            )
        if voltage == "nominal":
            voltages: List[int] = [
                self.spec.nominal_voltage_mv for _ in prepared
            ]
        else:
            voltages = self.safe_voltages_mv(
                profile,
                [
                    (nthreads, allocation, freq)
                    for nthreads, allocation, freq, _, _, _ in prepared
                ],
            )
        # The characterization protocol sets the *chip-wide* frequency
        # for a run (Section II.B); idle PMDs stay at the test clock and
        # only benefit from automatic clock gating in the power model.
        power_grid = chip_power_grid(
            self.power_model,
            voltages,
            [freq for _, _, freq, _, _, _ in prepared],
            [state.effective_activity for _, _, _, _, state, _ in prepared],
            [cores for _, _, _, cores, _, _ in prepared],
            [mem for _, _, _, _, _, mem in prepared],
        )
        measurements: List[RunMeasurement] = []
        for i, (nthreads, allocation, freq, cores, exec_state, _) in enumerate(
            prepared
        ):
            power = float(power_grid.total_w[i])
            duration = exec_state.duration_s
            energy = power * duration
            normalized = energy if profile.parallel else energy / nthreads
            measurements.append(
                RunMeasurement(
                    benchmark=profile.name,
                    nthreads=nthreads,
                    allocation=allocation,
                    freq_hz=freq,
                    voltage_mv=voltages[i],
                    duration_s=duration,
                    energy_j=energy,
                    normalized_energy_j=normalized,
                )
            )
        return measurements

    def thread_grid(self) -> Dict[str, int]:
        """The paper's max/half/quarter thread options (Section II.B)."""
        return {
            "max": self.spec.n_cores,
            "half": self.spec.n_cores // 2,
            "quarter": self.spec.n_cores // 4,
        }

    def frequency_grid(self) -> Dict[str, int]:
        """The per-chip frequency set the paper reports (Section II.B).

        X-Gene 2: 2.4, 1.2 and 0.9 GHz (the three distinct Vmin
        behaviours); X-Gene 3: 3.0 and 1.5 GHz.
        """
        grid = {"max": self.spec.fmax_hz, "half": self.spec.half_frequency_hz}
        if self.spec.clock_division_below_half:
            below = [
                f
                for f in self.spec.frequency_steps()
                if f < self.spec.half_frequency_hz
            ]
            if below:
                grid["divide"] = max(below)
        return grid
