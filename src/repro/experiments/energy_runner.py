"""Analytic single-job measurement: one benchmark at one operating point.

The paper's Section V measurements (Figs. 7, 11, 12) run one benchmark at
a time on an otherwise idle machine, at a chosen thread count, core
allocation, frequency and voltage, and record execution time and energy.
On an idle machine the fluid model is closed-form, so these measurements
need no event simulation: duration comes straight from the performance
model and power from one evaluation of the power model.

Voltage modes:

* ``nominal`` — the stock rail (how Fig. 7's allocation comparison runs);
* ``safe`` — the configuration's characterized safe Vmin, quantized to
  the campaign's 10 mV step (how the Figs. 11/12 energy study runs:
  every V/f combination is taken at its own safe Vmin).

SPEC-style replicated runs report a per-instance normalized energy next
to the raw one (Section II.B's fairness rule).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..allocation import Allocation, cores_for
from ..errors import ConfigurationError
from ..perf.contention import (
    bandwidth_utilization,
    contention_factor,
)
from ..perf.model import bandwidth_demand_gbs, execution_state
from ..platform.chip import ChipState
from ..platform.specs import ChipSpec
from ..power.energy import ed2p
from ..power.model import PowerModel
from ..vmin.cache import (
    VminCache,
    get_default_cache,
    make_key,
    model_fingerprint,
    occupancy_of,
    spec_fingerprint,
)
from ..vmin.model import VminModel
from ..workloads.profiles import BenchmarkProfile

#: Voltage-sweep step of the characterization campaigns, mV.
CAMPAIGN_STEP_MV = 10


@dataclass(frozen=True)
class RunMeasurement:
    """Time/energy measurement of one benchmark configuration."""

    benchmark: str
    nthreads: int
    allocation: Allocation
    freq_hz: int
    voltage_mv: int
    duration_s: float
    energy_j: float
    #: Energy normalized per instance for replicated (SPEC) runs;
    #: equals ``energy_j`` for parallel programs.
    normalized_energy_j: float

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        return self.energy_j / self.duration_s

    @property
    def ed2p(self) -> float:
        """ED2P on the normalized energy (the paper's Fig. 12 metric)."""
        return ed2p(self.normalized_energy_j, self.duration_s)


class EnergyRunner:
    """Measures benchmarks on an idle machine at fixed operating points."""

    def __init__(
        self,
        spec: ChipSpec,
        power_model: Optional[PowerModel] = None,
        vmin_model: Optional[VminModel] = None,
        cache: Optional[VminCache] = None,
    ):
        self.spec = spec
        self.power_model = power_model or PowerModel(spec)
        self.vmin_model = vmin_model or VminModel(spec)
        #: Explicit characterization cache, or ``None`` for the process
        #: default (see :mod:`repro.vmin.cache`).
        self.cache = cache
        self._fingerprints: Optional[tuple] = None

    def safe_voltage_mv(
        self,
        profile: BenchmarkProfile,
        nthreads: int,
        allocation: Allocation,
        freq_hz: int,
    ) -> int:
        """Characterized safe Vmin of the configuration, stepped up.

        This is what the campaign of Section III.A would report: the true
        Vmin rounded up to the 10 mV sweep step. Results are memoized in
        the characterization cache — the energy sweeps of Figs. 7/11/12
        revisit the same configurations many times.
        """
        cores = cores_for(self.spec, nthreads, allocation)
        if self._fingerprints is None:
            self._fingerprints = (
                spec_fingerprint(self.spec),
                model_fingerprint(self.vmin_model),
            )
        spec_fp, model_fp = self._fingerprints
        cache = self.cache if self.cache is not None else get_default_cache()
        freq = self.spec.nearest_frequency(freq_hz)
        key = make_key(
            kind="safe_voltage",
            spec=spec_fp,
            model=model_fp,
            freq_class=self.spec.frequency_class(freq).value,
            cores=sorted(cores),
            pmd_occupancy=occupancy_of(self.spec, cores),
            workload=profile.name,
            workload_delta_mv=profile.vmin_delta_mv,
            seed=0,
            step_mv=CAMPAIGN_STEP_MV,
        )
        cached = cache.get(key)
        if cached is not None:
            return int(cached)
        true_vmin = self.vmin_model.safe_vmin_mv(
            freq_hz, cores, profile.vmin_delta_mv
        )
        stepped = int(-(-true_vmin // CAMPAIGN_STEP_MV) * CAMPAIGN_STEP_MV)
        voltage = min(stepped, self.spec.nominal_voltage_mv)
        cache.put(key, voltage)
        return voltage

    def measure(
        self,
        profile: BenchmarkProfile,
        nthreads: int,
        allocation: Allocation,
        freq_hz: Optional[int] = None,
        voltage: str = "safe",
    ) -> RunMeasurement:
        """Measure one configuration on an otherwise idle machine."""
        if voltage not in ("safe", "nominal"):
            raise ConfigurationError(f"unknown voltage mode {voltage!r}")
        freq = self.spec.nearest_frequency(
            freq_hz if freq_hz is not None else self.spec.fmax_hz
        )
        cores = cores_for(self.spec, nthreads, allocation)
        pmds = sorted({self.spec.pmd_of_core(c) for c in cores})
        # A thread shares its PMD when any PMD holds two of the job's
        # threads (clustered runs, or spreaded runs past n_pmds threads).
        shares = any(
            sum(1 for c in cores if self.spec.pmd_of_core(c) == p) > 1
            for p in pmds
        )
        demand = bandwidth_demand_gbs(profile, self.spec, freq)
        demands = [demand] * nthreads
        crowd = contention_factor(self.spec, demands)
        exec_state = execution_state(
            profile,
            self.spec,
            freq,
            nthreads=nthreads,
            shares_pmd=shares,
            contention=crowd,
        )
        if voltage == "nominal":
            voltage_mv = self.spec.nominal_voltage_mv
        else:
            voltage_mv = self.safe_voltage_mv(
                profile, nthreads, allocation, freq
            )
        # The characterization protocol sets the *chip-wide* frequency for
        # a run (Section II.B); idle PMDs stay at the test clock and only
        # benefit from automatic clock gating in the power model.
        freqs = (freq,) * self.spec.n_pmds
        state = ChipState(
            spec=self.spec,
            voltage_mv=voltage_mv,
            pmd_frequencies_hz=freqs,
            active_cores=frozenset(cores),
        )
        activity = {c: exec_state.effective_activity for c in cores}
        power = self.power_model.chip_power(
            state, activity, bandwidth_utilization(self.spec, demands)
        ).total_w
        duration = exec_state.duration_s
        energy = power * duration
        normalized = energy if profile.parallel else energy / nthreads
        return RunMeasurement(
            benchmark=profile.name,
            nthreads=nthreads,
            allocation=allocation,
            freq_hz=freq,
            voltage_mv=voltage_mv,
            duration_s=duration,
            energy_j=energy,
            normalized_energy_j=normalized,
        )

    def thread_grid(self) -> Dict[str, int]:
        """The paper's max/half/quarter thread options (Section II.B)."""
        return {
            "max": self.spec.n_cores,
            "half": self.spec.n_cores // 2,
            "quarter": self.spec.n_cores // 4,
        }

    def frequency_grid(self) -> Dict[str, int]:
        """The per-chip frequency set the paper reports (Section II.B).

        X-Gene 2: 2.4, 1.2 and 0.9 GHz (the three distinct Vmin
        behaviours); X-Gene 3: 3.0 and 1.5 GHz.
        """
        grid = {"max": self.spec.fmax_hz, "half": self.spec.half_frequency_hz}
        if self.spec.clock_division_below_half:
            below = [
                f
                for f in self.spec.frequency_steps()
                if f < self.spec.half_frequency_hz
            ]
            if below:
                grid["divide"] = max(below)
        return grid
