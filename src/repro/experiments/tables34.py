"""Tables III and IV — the four-configuration evaluation on both chips.

One generated 1-hour server workload per machine, replayed under
Baseline, Safe-Vmin, Placement and Optimal. Reported per configuration:
completion time, average power, energy, energy savings, ED2P and ED2P
savings, as in the paper's Tables III (X-Gene 2) and IV (X-Gene 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..analysis.tables import format_table
from ..core.configurations import (
    CONFIG_NAMES,
    EvaluationResult,
    run_evaluation,
)
from ..workloads.generator import Workload

#: Paper Table III / Table IV reference values, by platform registry key.
PAPER_RESULTS: Dict[str, Dict[str, Dict[str, float]]] = {
    "xgene2": {
        "baseline": {"time_s": 3707, "power_w": 6.90, "energy_j": 25578.30},
        "safe_vmin": {"energy_savings_pct": 11.6, "ed2p_savings_pct": 11.6},
        "placement": {"energy_savings_pct": 18.3, "ed2p_savings_pct": 12.8},
        "optimal": {"energy_savings_pct": 25.2, "ed2p_savings_pct": 20.1},
    },
    "xgene3": {
        "baseline": {"time_s": 3748, "power_w": 36.49, "energy_j": 136773.26},
        "safe_vmin": {"energy_savings_pct": 10.9, "ed2p_savings_pct": 10.9},
        "placement": {"energy_savings_pct": 13.4, "ed2p_savings_pct": 8.9},
        "optimal": {"energy_savings_pct": 22.3, "ed2p_savings_pct": 18.2},
    },
}

#: Paper table numeral per platform registry key.
_TABLE_NUMBERS = {"xgene2": "III", "xgene3": "IV"}


@dataclass
class TableResult:
    """One regenerated evaluation table."""

    evaluation: EvaluationResult

    @property
    def platform(self) -> str:
        """Platform name of the run."""
        return self.evaluation.platform

    def platform_key(self) -> str:
        """Registry key of the run's platform ('' when unregistered)."""
        from ..platform.registry import try_get_platform

        model = try_get_platform(self.platform)
        return model.key if model is not None else ""

    def paper_reference(self) -> Dict[str, Dict[str, float]]:
        """The paper's values for this platform (empty for non-paper
        chips: the paper only evaluated Tables III and IV)."""
        return PAPER_RESULTS.get(self.platform_key(), {})

    def format(self) -> str:
        """Render the table with paper savings alongside."""
        paper = self.paper_reference()
        rows = []
        for row in self.evaluation.rows():
            paper_savings = paper.get(row.config, {}).get(
                "energy_savings_pct"
            )
            rows.append(
                (
                    row.config,
                    round(row.time_s, 0),
                    round(row.average_power_w, 2),
                    round(row.energy_j, 1),
                    f"{row.energy_savings_pct:.1f}%",
                    f"{paper_savings:.1f}%" if paper_savings else "-",
                    f"{row.ed2p:.3e}",
                    f"{row.ed2p_savings_pct:.1f}%",
                )
            )
        number = _TABLE_NUMBERS.get(self.platform_key())
        title = (
            f"Table {number} - evaluation results ({self.platform})"
            if number
            else f"Evaluation results ({self.platform})"
        )
        return format_table(
            (
                "config",
                "time(s)",
                "power(W)",
                "energy(J)",
                "E save",
                "paper",
                "ED2P",
                "ED2P save",
            ),
            rows,
            title=title,
        )


def run(
    platform: str = "xgene2",
    duration_s: float = 3600.0,
    seed: int = 0,
    workload: Optional[Workload] = None,
    policy: Optional[str] = None,
) -> TableResult:
    """Regenerate Table III (xgene2) or Table IV (xgene3).

    A ``policy`` registry key appends that policy as an extra
    comparison row under the paper's four configurations.
    """
    configs = CONFIG_NAMES
    if policy is not None and policy not in CONFIG_NAMES:
        configs = (*CONFIG_NAMES, policy)
    return TableResult(
        run_evaluation(
            platform,
            duration_s=duration_s,
            seed=seed,
            workload=workload,
            configs=configs,
        )
    )


def run_table3(
    duration_s: float = 3600.0, seed: int = 0
) -> TableResult:
    """Table III: X-Gene 2."""
    return run("xgene2", duration_s=duration_s, seed=seed)


def run_table4(
    duration_s: float = 3600.0, seed: int = 0
) -> TableResult:
    """Table IV: X-Gene 3."""
    return run("xgene3", duration_s=duration_s, seed=seed)


def render_table3(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Table III (the paper fixes it to X-Gene 2)."""
    return run(
        "xgene2", duration_s=duration_s, seed=seed, policy=policy
    ).format()


def render_table4(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Table IV (the paper fixes it to X-Gene 3)."""
    return run(
        "xgene3", duration_s=duration_s, seed=seed, policy=policy
    ).format()


def main() -> None:
    """Print both tables via the orchestrator."""
    from .orchestrator import run_main

    run_main("table3")
    run_main("table4")


if __name__ == "__main__":
    main()
