"""Parallel experiment orchestrator with deterministic output merging.

The ~19 regenerators in this package are independent programs that were
historically run strictly sequentially. This module schedules them over
a process pool instead:

* the **registry** (:mod:`repro.experiments.registry`) declares every
  experiment with its paper artefact, dependencies and a cost hint;
* scheduling is **topological** — independent figures run concurrently,
  dependent ones (the report) wait for their inputs — with costly
  experiments launched first to minimize the makespan;
* results are **merged deterministically**: experiment output is
  assembled in the requested order regardless of completion order, so
  ``--jobs 4`` output is byte-identical to ``--jobs 1`` output;
* every worker shares the characterization cache
  (:mod:`repro.vmin.cache`): in-memory within a process, and through
  the on-disk store across processes when a ``cache_dir`` is given, so
  repeated safe-Vmin campaigns across figures are not re-simulated.

The CLI front-end is ``repro run-all --jobs N --cache-dir PATH``; the
per-module ``main()`` entry points also route through
:func:`run_main`.
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .. import telemetry
from ..analysis.tables import format_table
from ..errors import ConfigurationError
from ..telemetry import names as metric_names
from ..telemetry.metrics import Snapshot
from ..vmin.cache import (
    CacheStats,
    ensure_default_cache,
    get_default_cache,
)
from .registry import (
    REGISTRY,
    ExperimentEntry,
    experiment_names,
    get_entry,
    topological_order,
)


@dataclass(frozen=True)
class ExperimentOutcome:
    """Result of one orchestrated experiment execution."""

    name: str
    artefact: str
    output: str
    elapsed_s: float
    cache: CacheStats
    #: Telemetry snapshot of this experiment's execution, present only
    #: when the batch ran with ``collect_telemetry=True``.
    metrics: Optional[Snapshot] = None

    @property
    def cache_hit_rate(self) -> float:
        """Characterization cache hit rate during this experiment."""
        return self.cache.hit_rate


@dataclass
class RunSummary:
    """Outcome of one orchestrated batch, in deterministic merge order."""

    jobs: int
    elapsed_s: float
    outcomes: List[ExperimentOutcome] = field(default_factory=list)
    #: Run-level telemetry snapshot (orchestrator counters and the run
    #: span), present only when ``collect_telemetry=True``.
    metrics: Optional[Snapshot] = None

    def outcome(self, name: str) -> ExperimentOutcome:
        """Outcome of one experiment by name."""
        for item in self.outcomes:
            if item.name == name:
                return item
        raise ConfigurationError(f"no outcome for experiment {name!r}")

    def merged_output(self) -> str:
        """Experiment output in requested order (parallel-invariant).

        This is exactly what the sequential CLI prints: a ``== name ==``
        header, the experiment text and a blank line, per experiment.
        """
        return "".join(
            f"== {item.name} ==\n{item.output}\n\n" for item in self.outcomes
        )

    @property
    def cache_totals(self) -> CacheStats:
        """Characterization cache counters summed over all experiments."""
        total = CacheStats()
        for item in self.outcomes:
            total.hits += item.cache.hits
            total.misses += item.cache.misses
            total.stores += item.cache.stores
            total.evictions += item.cache.evictions
            total.disk_hits += item.cache.disk_hits
            total.corrupt_discarded += item.cache.corrupt_discarded
        return total

    def format_table(self) -> str:
        """Per-experiment timing and cache-hit summary table."""
        rows = [
            (
                item.name,
                f"{item.elapsed_s:.2f}",
                item.cache.hits,
                item.cache.misses,
                f"{100.0 * item.cache.hit_rate:.0f}%",
            )
            for item in self.outcomes
        ]
        totals = self.cache_totals
        rows.append(
            (
                "total",
                f"{self.elapsed_s:.2f}",
                totals.hits,
                totals.misses,
                f"{100.0 * totals.hit_rate:.0f}%",
            )
        )
        table = format_table(
            ("experiment", "wall s", "cache hits", "misses", "hit rate"),
            rows,
            title=f"orchestrator summary ({self.jobs} job(s))",
        )
        return (
            f"{table}\n"
            f"speedup vs serial sum: "
            f"{self.serial_time_s / self.elapsed_s:.2f}x"
            if self.elapsed_s > 0
            else table
        )

    @property
    def serial_time_s(self) -> float:
        """Sum of per-experiment wall times (the sequential cost)."""
        return sum(item.elapsed_s for item in self.outcomes)


def _execute(
    name: str,
    platform: Optional[str],
    duration_s: float,
    seed: int,
    cache_dir: Optional[str],
    collect_telemetry: bool = False,
    policy: Optional[str] = None,
) -> ExperimentOutcome:
    """Run one experiment in the current process (pool worker body)."""
    ensure_default_cache(cache_dir)
    entry = get_entry(name)
    module = importlib.import_module(entry.module_path)
    renderer = getattr(module, entry.render_name)
    kwargs = {"platform": platform, "duration_s": duration_s, "seed": seed}
    if policy is not None:
        # Passed only when requested, so renderer doubles (tests, older
        # entry points) keep working and the default path is untouched.
        kwargs["policy"] = policy
    cache = get_default_cache()
    before = cache.stats.snapshot()
    metrics: Optional[Snapshot] = None
    started = time.perf_counter()
    if collect_telemetry:
        # Fresh registry per experiment, so the snapshot attributes
        # every metric to exactly one experiment even when several run
        # in the same worker process.
        with telemetry.session() as registry:
            with telemetry.span(metric_names.ORCH_EXPERIMENT_SPAN):
                output = renderer(**kwargs)
            cache.publish_telemetry()
            metrics = registry.snapshot()
    else:
        output = renderer(**kwargs)
    elapsed = time.perf_counter() - started
    return ExperimentOutcome(
        name=entry.name,
        artefact=entry.artefact,
        output=output,
        elapsed_s=elapsed,
        cache=cache.stats.delta(before),
        metrics=metrics,
    )


def render_experiment(
    name: str,
    platform: Optional[str] = None,
    duration_s: float = 600.0,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    policy: Optional[str] = None,
) -> str:
    """Render one experiment's text through the orchestrator."""
    return _execute(
        name, platform, duration_s, seed, cache_dir, policy=policy
    ).output


def run_experiments(
    names: Optional[Sequence[str]] = None,
    jobs: int = 1,
    platform: Optional[str] = None,
    duration_s: float = 600.0,
    seed: int = 0,
    cache_dir: Optional[str] = None,
    collect_telemetry: bool = False,
    policy: Optional[str] = None,
) -> RunSummary:
    """Run a batch of experiments, optionally across worker processes.

    ``names`` defaults to the full registry in canonical order; the
    merge order of :meth:`RunSummary.merged_output` always follows the
    requested order, independent of scheduling. ``jobs=1`` runs
    everything in-process; higher values fan independent experiments
    out over a process pool while dependents wait for their inputs.

    With ``collect_telemetry=True`` every experiment carries a metric
    snapshot (:attr:`ExperimentOutcome.metrics`) and the summary carries
    the orchestrator-level snapshot (:attr:`RunSummary.metrics`) —
    queue depth and busy-worker samples, the completed-experiment
    counter and the run wall-time span.
    """
    if jobs < 1:
        raise ConfigurationError("jobs must be >= 1")
    requested = list(
        dict.fromkeys(names if names is not None else experiment_names())
    )
    schedule = topological_order(requested)
    registry_index = {entry.name: i for i, entry in enumerate(REGISTRY)}
    started = time.perf_counter()
    run_metrics: Optional[Snapshot] = None
    if collect_telemetry:
        with telemetry.session() as registry:
            with telemetry.span(metric_names.ORCH_RUN_SPAN):
                outcomes = _run_schedule(
                    schedule, jobs, platform, duration_s, seed, cache_dir,
                    registry_index, True, policy,
                )
            run_metrics = registry.snapshot()
    else:
        outcomes = _run_schedule(
            schedule, jobs, platform, duration_s, seed, cache_dir,
            registry_index, False, policy,
        )
    return RunSummary(
        jobs=jobs,
        elapsed_s=time.perf_counter() - started,
        outcomes=[outcomes[name] for name in requested],
        metrics=run_metrics,
    )


def _run_schedule(
    schedule: List[ExperimentEntry],
    jobs: int,
    platform: Optional[str],
    duration_s: float,
    seed: int,
    cache_dir: Optional[str],
    registry_index: Dict[str, int],
    collect_telemetry: bool,
    policy: Optional[str] = None,
) -> Dict[str, ExperimentOutcome]:
    """Dispatch ``schedule`` serially or over the pool."""
    if jobs == 1 or len(schedule) == 1:
        outcomes: Dict[str, ExperimentOutcome] = {}
        for i, entry in enumerate(schedule):
            telemetry.observe(
                metric_names.ORCH_QUEUE_DEPTH, len(schedule) - i
            )
            outcomes[entry.name] = _execute(
                entry.name, platform, duration_s, seed, cache_dir,
                collect_telemetry, policy,
            )
            telemetry.inc(metric_names.ORCH_EXPERIMENTS_COMPLETED)
        return outcomes
    return _run_pool(
        schedule, jobs, platform, duration_s, seed, cache_dir,
        registry_index, collect_telemetry, policy,
    )


def _run_pool(
    schedule: List[ExperimentEntry],
    jobs: int,
    platform: Optional[str],
    duration_s: float,
    seed: int,
    cache_dir: Optional[str],
    registry_index: Dict[str, int],
    collect_telemetry: bool = False,
    policy: Optional[str] = None,
) -> Dict[str, ExperimentOutcome]:
    """Topological fan-out of ``schedule`` over a process pool."""
    chosen = {entry.name for entry in schedule}
    entry_of = {entry.name: entry for entry in schedule}
    waiting = {
        entry.name: {dep for dep in entry.depends if dep in chosen}
        for entry in schedule
    }
    outcomes: Dict[str, ExperimentOutcome] = {}
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        running: Dict[object, str] = {}
        while waiting or running:
            # Launch every dependency-free experiment, costliest first,
            # so long-running ones do not straggle at the end.
            ready = sorted(
                (name for name, deps in waiting.items() if not deps),
                key=lambda n: (-entry_of[n].cost, registry_index[n]),
            )
            for name in ready:
                del waiting[name]
                future = pool.submit(
                    _execute, name, platform, duration_s, seed, cache_dir,
                    collect_telemetry, policy,
                )
                running[future] = name
            # Scheduler-health samples; completion-order dependent, so
            # they are histogram shapes, never part of any fingerprint
            # comparison between differently-scheduled runs.
            telemetry.observe(metric_names.ORCH_QUEUE_DEPTH, len(waiting))
            telemetry.observe(metric_names.ORCH_INFLIGHT, len(running))
            done, _ = wait(set(running), return_when=FIRST_COMPLETED)
            for future in done:
                name = running.pop(future)
                outcomes[name] = future.result()
                telemetry.inc(metric_names.ORCH_EXPERIMENTS_COMPLETED)
                for deps in waiting.values():
                    deps.discard(name)
    return outcomes


def run_main(name: str) -> int:
    """Module ``main()`` entry point: render one experiment and print it."""
    print(render_experiment(name))
    return 0
