"""Figure 5 — cumulative probability of failure below the safe Vmin.

For each frequency / core-allocation / thread-scaling option, the
25-benchmark-average pfail is reported at every voltage step from the
nominal level down to complete failure. Two observations reproduce:

* max-threads and spreaded-half-threads curves are virtually identical
  (same utilized PMDs, same droop class);
* clustered-half-threads shifts left (lower Vmin, lower pfail at a given
  voltage) despite the same clock frequency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..kernels.faults import pfail_grid
from ..kernels.vmin import evaluate_grid
from ..platform.specs import get_spec
from ..vmin.characterize import VminCampaign
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set


@dataclass(frozen=True)
class PfailCurve:
    """Average pfail-vs-voltage curve of one configuration."""

    label: str
    nthreads: int
    allocation: Allocation
    freq_hz: int
    #: voltage (mV) -> mean pfail over the benchmark set.
    points: Tuple[Tuple[int, float], ...]

    def pfail_at(self, voltage_mv: int) -> float:
        """Mean pfail at one voltage (exact match required)."""
        for volt, pfail in self.points:
            if volt == voltage_mv:
                return pfail
        raise KeyError(voltage_mv)

    def safe_vmin_mv(self) -> int:
        """Lowest voltage with pfail == 0 (the last safe step)."""
        safe = [volt for volt, pfail in self.points if pfail <= 0.0]
        if not safe:
            raise ValueError(f"{self.label}: no safe step in curve")
        return min(safe)


@dataclass
class Fig5Result:
    """All pfail curves of one platform."""

    platform: str
    curves: List[PfailCurve] = field(default_factory=list)

    def curve(self, label: str) -> PfailCurve:
        """Curve by label, e.g. ``16T(spreaded)``."""
        for curve in self.curves:
            if curve.label == label:
                return curve
        raise KeyError(label)

    def format(self) -> str:
        """Render all curves as voltage/pfail columns."""
        rows = []
        for curve in self.curves:
            for volt, pfail in curve.points:
                if pfail > 0 or volt == curve.safe_vmin_mv():
                    rows.append((curve.label, volt, round(pfail, 4)))
        return format_table(
            ("configuration", "voltage(mV)", "pfail"),
            rows,
            title=f"Figure 5 - probability of failure ({self.platform})",
        )


def default_configs(spec) -> List[Tuple[int, Allocation]]:
    """The paper's Fig. 5 configurations for a chip."""
    full = spec.n_cores
    half = spec.n_cores // 2
    return [
        (full, Allocation.CLUSTERED),
        (half, Allocation.SPREADED),
        (half, Allocation.CLUSTERED),
        (half // 2, Allocation.SPREADED),
        (half // 2, Allocation.CLUSTERED),
    ]


def run(
    platform: str = "xgene3",
    freq_hz: Optional[int] = None,
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    step_mv: int = 10,
    silicon_seed: int = 0,
) -> Fig5Result:
    """Compute the 25-benchmark-average pfail curves."""
    spec = get_spec(platform)
    freq = spec.nearest_frequency(freq_hz if freq_hz else spec.fmax_hz)
    pool = list(benchmarks) if benchmarks else characterization_set()
    campaign = VminCampaign(spec, step_mv=step_mv, seed=silicon_seed)
    result = Fig5Result(platform=spec.name)
    voltages = list(
        range(spec.nominal_voltage_mv, spec.min_voltage_mv - 1, -step_mv)
    )
    volt_axis = np.asarray(voltages, dtype=np.int64)
    for nthreads, allocation in default_configs(spec):
        # One (benchmark x voltage) kernel sweep per configuration; the
        # benchmark-axis accumulation stays sequential so the averages
        # match the scalar per-profile summation bit for bit.
        grid_points = [
            campaign.point(
                profile.name,
                nthreads,
                allocation,
                freq,
                workload_delta_mv=profile.vmin_delta_mv,
            )
            for profile in pool
        ]
        grid = evaluate_grid(
            campaign.vmin_model,
            [p.freq_hz for p in grid_points],
            [p.cores for p in grid_points],
            [p.workload_delta_mv for p in grid_points],
        )
        pfails = pfail_grid(
            campaign.fault_model,
            volt_axis[None, :],
            grid.total_mv[:, None],
            grid.droop_class[:, None],
        )
        sums = np.zeros(len(voltages), dtype=np.float64)
        for row in range(pfails.shape[0]):
            sums = sums + pfails[row]
        points = tuple(
            (volt, float(sums[i] / len(pool)))
            for i, volt in enumerate(voltages)
        )
        label = (
            f"{nthreads}T"
            if nthreads == spec.n_cores
            else f"{nthreads}T({allocation.value})"
        )
        result.curves.append(
            PfailCurve(
                label=label,
                nthreads=nthreads,
                allocation=allocation,
                freq_hz=freq,
                points=points,
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 5 pfail curves for one platform."""
    return run(platform or "xgene3").format()


def main() -> None:
    """Print Fig. 5 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig5")


if __name__ == "__main__":
    main()
