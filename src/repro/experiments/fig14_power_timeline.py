"""Figure 14 — average power over a 1-hour run, Baseline vs Optimal.

One generated server workload replayed under the Baseline and Optimal
configurations on X-Gene 3; the figure is the per-second power trace of
both runs. The reproduction criteria: the Optimal trace sits visibly
below the Baseline trace through the busy phases, with the same shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..analysis.tables import format_table
from ..core.configurations import run_evaluation
from ..sim.tracing import TimelineTrace
from ..workloads.generator import Workload


@dataclass
class Fig14Result:
    """Power traces of the Baseline and Optimal (or policy) runs."""

    platform: str
    workload: Workload
    baseline_trace: TimelineTrace
    optimal_trace: TimelineTrace
    #: Configuration name / policy key of the non-baseline run.
    config: str = "optimal"

    def average_power(self) -> Tuple[float, float]:
        """(baseline, optimal) average sampled power."""
        return (
            self.baseline_trace.average_power_w(),
            self.optimal_trace.average_power_w(),
        )

    def reduction_pct(self) -> float:
        """Average-power reduction of Optimal vs Baseline."""
        base, opt = self.average_power()
        return 100.0 * (base - opt) / base

    def series(self, bucket_s: int = 60) -> List[Tuple[int, float, float]]:
        """(minute, baseline W, optimal W) bucket means for rendering."""
        rows = []
        base = self.baseline_trace.power_series()
        opt = self.optimal_trace.power_series()
        for start in range(0, min(len(base), len(opt)), bucket_s):
            chunk_b = base[start:start + bucket_s]
            chunk_o = opt[start:start + bucket_s]
            rows.append(
                (
                    start // bucket_s,
                    sum(chunk_b) / len(chunk_b),
                    sum(chunk_o) / len(chunk_o),
                )
            )
        return rows

    def format(self) -> str:
        """Render per-minute power means."""
        return format_table(
            ("minute", "baseline(W)", f"{self.config}(W)"),
            [
                (minute, round(b, 2), round(o, 2))
                for minute, b, o in self.series()
            ],
            title=f"Figure 14 - average power timeline ({self.platform})",
        )


def run(
    platform: str = "xgene3",
    duration_s: float = 3600.0,
    seed: int = 0,
    workload: Optional[Workload] = None,
    config: str = "optimal",
) -> Fig14Result:
    """Replay one workload under Baseline and ``config``, keeping traces.

    ``config`` is a paper configuration name or any policy registry key
    (the paper's figure compares against Optimal).
    """
    evaluation = run_evaluation(
        platform,
        duration_s=duration_s,
        seed=seed,
        configs=("baseline", config),
        workload=workload,
    )
    return Fig14Result(
        platform=evaluation.platform,
        workload=evaluation.workload,
        baseline_trace=evaluation.results["baseline"].trace,
        optimal_trace=evaluation.results[config].trace,
        config=config,
    )


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 14 power timeline with average powers.

    A ``policy`` key swaps the non-baseline trace to that policy
    (default: the paper's Baseline-vs-Optimal comparison).
    """
    result = run(
        platform or "xgene3",
        duration_s=duration_s,
        seed=seed,
        config=policy or "optimal",
    )
    base, opt = result.average_power()
    return (
        f"{result.format()}\n"
        f"\naverage power: baseline {base:.2f} W, "
        f"{result.config} {opt:.2f} W"
    )


def main() -> None:
    """Print Fig. 14 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig14")


if __name__ == "__main__":
    main()
