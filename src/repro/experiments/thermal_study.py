"""Thermal-margin study (environment extension).

The paper characterizes its machines at one operating temperature;
data-centre inlets and load swings move the junction tens of degrees.
This study runs the Optimal daemon with the thermal model enabled across
ambient temperatures and asks:

* how hot does the chip get, and how much extra leakage does that cost?
* does a policy table characterized at the calibration temperature
  still keep the rail safe when the junction runs hotter — and if not,
  how much thermal guard closes the gap?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis.tables import format_table
from ..policies.daemon import OnlineMonitoringDaemon
from ..core.policy import VminPolicyTable
from ..platform.chip import Chip
from ..platform.specs import get_spec
from ..platform.thermal import (
    VMIN_TEMP_SENSITIVITY_MV_PER_C,
    ThermalModel,
)
from ..sim.system import ServerSystem
from ..workloads.generator import ServerWorkloadGenerator


@dataclass(frozen=True)
class ThermalRow:
    """One ambient-temperature operating point."""

    ambient_c: float
    peak_junction_c: float
    mean_junction_c: float
    energy_j: float
    violations: int
    #: Thermal guard (mV) that would cover the observed peak.
    guard_needed_mv: float


@dataclass
class ThermalStudyResult:
    """The ambient sweep."""

    platform: str
    calibration_c: float
    rows: List[ThermalRow] = field(default_factory=list)

    def energy_increase_pct(self) -> float:
        """Energy growth from the coolest to the hottest ambient."""
        first, last = self.rows[0], self.rows[-1]
        return 100.0 * (last.energy_j - first.energy_j) / first.energy_j

    def first_unsafe_ambient_c(self) -> Optional[float]:
        """Coolest ambient at which the unguarded table violated."""
        for row in self.rows:
            if row.violations > 0:
                return row.ambient_c
        return None

    def format(self) -> str:
        """Render the sweep."""
        return format_table(
            (
                "ambient(C)",
                "peak Tj(C)",
                "mean Tj(C)",
                "energy(J)",
                "violations",
                "guard needed(mV)",
            ),
            [
                (
                    r.ambient_c,
                    round(r.peak_junction_c, 1),
                    round(r.mean_junction_c, 1),
                    round(r.energy_j, 1),
                    r.violations,
                    round(r.guard_needed_mv, 1),
                )
                for r in self.rows
            ],
            title=(
                f"Thermal-margin study ({self.platform}, table "
                f"characterized at {self.calibration_c:.0f} C)"
            ),
        )


def run(
    platform: str = "xgene3",
    ambients_c: Sequence[float] = (15.0, 25.0, 45.0, 65.0, 75.0, 85.0),
    duration_s: float = 900.0,
    seed: int = 9,
) -> ThermalStudyResult:
    """Sweep ambient temperature under the Optimal daemon."""
    spec = get_spec(platform)
    policy = VminPolicyTable.from_characterization(spec)
    workload = ServerWorkloadGenerator(
        max_cores=spec.n_cores, seed=seed
    ).generate(duration_s)
    thermal_defaults = ThermalModel(spec)
    result = ThermalStudyResult(
        platform=spec.name,
        calibration_c=thermal_defaults.params.calibration_c,
    )
    for ambient in ambients_c:
        thermal = ThermalModel(spec, ambient_c=ambient)
        chip = Chip(spec)
        daemon = OnlineMonitoringDaemon(spec, policy=policy)
        system = ServerSystem(
            chip, workload, daemon, thermal_model=thermal
        )
        outcome = system.run()
        temps = [t for _, t in system.temperature_series] or [ambient]
        peak = max(temps)
        result.rows.append(
            ThermalRow(
                ambient_c=ambient,
                peak_junction_c=peak,
                mean_junction_c=sum(temps) / len(temps),
                energy_j=outcome.energy_j,
                violations=len(outcome.violations),
                guard_needed_mv=max(
                    0.0,
                    VMIN_TEMP_SENSITIVITY_MV_PER_C
                    * (peak - result.calibration_c),
                ),
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the thermal sweep."""
    return run(platform or "xgene3", duration_s=duration_s).format()


def main() -> None:
    """Print the thermal sweep via the orchestrator."""
    from .orchestrator import run_main

    run_main("thermal")


if __name__ == "__main__":
    main()
