"""One-shot reproduction report: every experiment, paper vs measured.

``repro report`` (or ``python -m repro.experiments.report``) runs the
full regenerator suite at a configurable workload length and emits a
Markdown report in the style of EXPERIMENTS.md, with fresh numbers. Use
``duration_s=3600`` for the paper-scale evaluation rows.
"""

from __future__ import annotations

import io
from typing import List

from ..platform.specs import get_spec
from ..units import ghz, hz_to_ghz
from . import (
    fig3_vmin_characterization as fig3,
    fig4_core_variation as fig4,
    fig5_pfail as fig5,
    fig7_allocation_energy as fig7,
    fig8_contention as fig8,
    fig9_l3c_rates as fig9,
    fig10_factors as fig10,
    fig11_energy as fig11,
    fig12_ed2p as fig12,
    table2,
    tables34,
)


def _chip(key: str) -> str:
    """Display name of a registry platform, for rendered headings."""
    return get_spec(key).name


def _md_table(out: io.StringIO, headers: List[str], rows) -> None:
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(v) for v in row) + " |\n")
    out.write("\n")


def generate(
    duration_s: float = 600.0,
    seed: int = 42,
    include_characterization: bool = True,
) -> str:
    """Run the suite and return the Markdown report."""
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write(
        f"Evaluation workloads: {duration_s:.0f} s, seed {seed}. "
        f"Paper values in brackets where published.\n\n"
    )

    if include_characterization:
        _characterization_section(out)
    _energy_section(out)
    _evaluation_section(out, duration_s, seed)
    return out.getvalue()


def _characterization_section(out: io.StringIO) -> None:
    out.write("## Characterization (Figs. 3-5, 10; Table II)\n\n")
    r3 = fig3.run("xgene3")
    rows = []
    for nthreads in (32, 16, 8):
        for freq in (ghz(3.0), ghz(1.5)):
            values = [
                row.safe_vmin_mv
                for row in r3.rows
                if row.nthreads == nthreads and row.freq_hz == freq
            ]
            rows.append(
                (
                    f"{nthreads}T @ {hz_to_ghz(freq):.1f} GHz",
                    f"{min(values)}-{max(values)} mV",
                    f"{max(values) - min(values)} mV",
                )
            )
    _md_table(
        out, [f"{_chip('xgene3')} config", "safe Vmin", "spread"], rows
    )

    r4 = fig4.run("xgene2")
    out.write(
        f"Single/two-core regions ({_chip('xgene2')}): core-to-core spread "
        f"{r4.core_to_core_spread_mv():.0f} mV [~30], workload spread "
        f"{r4.workload_spread_mv():.0f} mV [~40], most robust "
        f"PMD{r4.most_robust_pmd()} [PMD2].\n\n"
    )

    r5 = fig5.run("xgene3")
    _md_table(
        out,
        ["pfail curve", "safe Vmin"],
        [(c.label, f"{c.safe_vmin_mv()} mV") for c in r5.curves],
    )

    factors = fig10.run("xgene2").factors
    _md_table(
        out,
        ["Vmin factor", "measured", "paper"],
        [
            ("workload", f"{100 * factors['workload']:.1f} %", "~1 %"),
            (
                "core allocation",
                f"{100 * factors['core_allocation']:.1f} %",
                "~4 %",
            ),
            (
                "clock skipping",
                f"{100 * factors['clock_skipping']:.1f} %",
                "~3 %",
            ),
            (
                "clock division",
                f"{100 * factors['clock_division']:.1f} %",
                "~12 %",
            ),
        ],
    )

    t2 = table2.run("xgene3")
    _md_table(
        out,
        ["droop bin", "PMDs", "Vmin@3GHz", "paper", "Vmin@1.5GHz", "paper"],
        [
            (
                f"[{r.droop_bin_mv[0]},{r.droop_bin_mv[1]}) mV",
                f"<= {r.max_utilized_pmds}",
                f"{r.vmin_high_mv} mV",
                f"{r.paper_high_mv} mV" if r.paper_high_mv else "-",
                f"{r.vmin_skip_mv} mV",
                f"{r.paper_skip_mv} mV" if r.paper_skip_mv else "-",
            )
            for r in t2.rows
        ],
    )


def _energy_section(out: io.StringIO) -> None:
    out.write("## Energy and performance (Figs. 7-9, 11, 12)\n\n")
    r7 = fig7.run("xgene2")
    low, high = r7.span()
    out.write(
        f"Fig. 7 allocation-energy span: {low:.1f} % .. {high:+.1f} % "
        f"[-9.6 % .. +14.2 %].\n\n"
    )
    r8 = fig8.run("xgene3")
    _md_table(
        out,
        ["Fig. 8 benchmark", "T1/TN"],
        [
            (name, f"{r8.ratio_of(name):.2f}")
            for name in ("namd", "EP", "milc", "FT", "CG")
        ],
    )
    r9 = fig9.run("xgene3")
    out.write(
        f"Fig. 9 memory-intensive set ({len(r9.memory_intensive_set())} "
        f"programs above the 3K threshold): "
        f"{', '.join(r9.memory_intensive_set())}; classes stable across "
        f"thread counts: {r9.classes_stable()}.\n\n"
    )
    r11 = fig11.run("xgene2")
    r12 = fig12.run("xgene2")
    _md_table(
        out,
        [
            f"benchmark (8T, {_chip('xgene2')})",
            "E @2.4GHz",
            "E @1.2GHz",
            "E @0.9GHz",
            "best ED2P",
        ],
        [
            (
                name,
                f"{r11.energy_of(name, 8, ghz(2.4)):.0f} J",
                f"{r11.energy_of(name, 8, ghz(1.2)):.0f} J",
                f"{r11.energy_of(name, 8, ghz(0.9)):.0f} J",
                f"{hz_to_ghz(r12.best_frequency(name, 8)):.1f} GHz",
            )
            for name in ("namd", "EP", "milc", "CG", "FT")
        ],
    )


def _evaluation_section(
    out: io.StringIO, duration_s: float, seed: int
) -> None:
    out.write("## Evaluation (Tables III/IV)\n\n")
    for platform, paper in (
        ("xgene2", {"safe_vmin": 11.6, "placement": 18.3, "optimal": 25.2}),
        ("xgene3", {"safe_vmin": 10.9, "placement": 13.4, "optimal": 22.3}),
    ):
        result = tables34.run(platform, duration_s=duration_s, seed=seed)
        rows = []
        for row in result.evaluation.rows():
            reference = paper.get(row.config)
            rows.append(
                (
                    row.config,
                    f"{row.time_s:.0f} s",
                    f"{row.average_power_w:.2f} W",
                    f"{row.energy_savings_pct:.1f} %"
                    + (f" [{reference:.1f} %]" if reference else ""),
                    f"{row.ed2p_savings_pct:.1f} %",
                    row.violations,
                )
            )
        out.write(f"### {result.platform}\n\n")
        _md_table(
            out,
            ["config", "time", "power", "energy saved", "ED2P saved",
             "violations"],
            rows,
        )


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the full reproduction report (both platforms)."""
    return generate(duration_s=duration_s, seed=seed)


def main() -> None:
    """Print a quick report via the orchestrator."""
    from .orchestrator import run_main

    run_main("report")


if __name__ == "__main__":
    main()
