"""Table I — basic parameters of X-Gene 2 and X-Gene 3."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..analysis.tables import format_table
from ..platform.specs import ChipSpec, get_spec
from ..units import fmt_freq


@dataclass(frozen=True)
class Table1Result:
    """Both platform specs, side by side."""

    xgene2: ChipSpec
    xgene3: ChipSpec

    def rows(self) -> List[Tuple[str, str, str]]:
        """Parameter rows in the paper's order."""
        s2, s3 = self.xgene2, self.xgene3

        def mib(value: int) -> str:
            return f"{value // (1024 * 1024)}MB"

        def kib(value: int) -> str:
            return f"{value // 1024}KB"

        return [
            ("CPU", f"{s2.n_cores} cores", f"{s3.n_cores} cores"),
            ("Core clock", fmt_freq(s2.fmax_hz), fmt_freq(s3.fmax_hz)),
            (
                "L1 Instr. Cache",
                f"{kib(s2.caches.l1i_bytes)} per core",
                f"{kib(s3.caches.l1i_bytes)} per core",
            ),
            (
                "L1 Data Cache",
                f"{kib(s2.caches.l1d_bytes)} per core",
                f"{kib(s3.caches.l1d_bytes)} per core",
            ),
            (
                "L2 cache",
                f"{kib(s2.caches.l2_bytes_per_pmd)} per PMD",
                f"{kib(s3.caches.l2_bytes_per_pmd)} per PMD",
            ),
            (
                "L3 cache",
                mib(s2.caches.l3_bytes),
                mib(s3.caches.l3_bytes),
            ),
            (
                "Technology",
                f"{s2.technology_nm} nm (bulk CMOS)",
                f"{s3.technology_nm} nm (FinFET)",
            ),
            ("TDP", f"{s2.tdp_w:.0f} W", f"{s3.tdp_w:.0f} W"),
            (
                "Nominal Voltage",
                f"{s2.nominal_voltage_mv} mV",
                f"{s3.nominal_voltage_mv} mV",
            ),
        ]

    def format(self) -> str:
        """Render the table."""
        return format_table(
            ("Parameter", self.xgene2.name, self.xgene3.name),
            self.rows(),
            title="Table I - basic parameters",
        )


def run() -> Table1Result:
    """Collect both platform specs."""
    return Table1Result(xgene2=get_spec("xgene2"), xgene3=get_spec("xgene3"))


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render Table I (platform-independent: always both chips)."""
    return run().format()


def main() -> None:
    """Print Table I via the orchestrator."""
    from .orchestrator import run_main

    run_main("table1")


if __name__ == "__main__":
    main()
