"""Figure 6 — voltage-droop detections per magnitude bin (X-Gene 3, 3 GHz).

Reproduces the embedded-oscilloscope measurement: for every program and
core-allocation option, the droop detections per million cycles in the
[55, 65) mV and [45, 55) mV magnitude bins. The headline pattern:

* 32T and 16T-spreaded (16 PMDs busy) populate the [55, 65) bin;
  16T-clustered (8 PMDs) shows almost zero detections there;
* 16T-clustered and 8T-spreaded (8 PMDs) populate the [45, 55) bin;
  8T-clustered (4 PMDs) shows almost zero detections there.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..allocation import Allocation, utilized_pmd_count
from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..units import hz_to_ghz
from ..vmin.droop import DroopModel
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set

#: The two magnitude bins Fig. 6 plots, in mV.
FIG6_BINS: Tuple[Tuple[int, int], ...] = ((55, 65), (45, 55))


@dataclass(frozen=True)
class Fig6Row:
    """Droop detections of one program in one configuration."""

    benchmark: str
    label: str
    utilized_pmds: int
    bin_mv: Tuple[int, int]
    detections_per_mcycles: float


@dataclass
class Fig6Result:
    """All Fig. 6 droop-rate measurements."""

    platform: str
    freq_hz: int
    rows: List[Fig6Row] = field(default_factory=list)

    def rates(
        self, label: str, bin_mv: Tuple[int, int]
    ) -> Dict[str, float]:
        """benchmark -> detections/1M cycles for one config and bin."""
        return {
            r.benchmark: r.detections_per_mcycles
            for r in self.rows
            if r.label == label and r.bin_mv == bin_mv
        }

    def format(self) -> str:
        """Render both bins."""
        return format_table(
            ("bin(mV)", "configuration", "PMDs", "benchmark", "droops/1Mcyc"),
            [
                (
                    f"[{r.bin_mv[0]},{r.bin_mv[1]})",
                    r.label,
                    r.utilized_pmds,
                    r.benchmark,
                    round(r.detections_per_mcycles, 2),
                )
                for r in self.rows
            ],
            title=(
                f"Figure 6 - voltage droop detections "
                f"({self.platform} @ {hz_to_ghz(self.freq_hz):.1f}GHz)"
            ),
        )


def default_configs(spec) -> List[Tuple[int, Allocation, str]]:
    """The five configurations Fig. 6 compares."""
    full = spec.n_cores
    half = full // 2
    quarter = full // 4
    return [
        (full, Allocation.CLUSTERED, f"{full}T"),
        (half, Allocation.SPREADED, f"{half}T(spreaded)"),
        (half, Allocation.CLUSTERED, f"{half}T(clustered)"),
        (quarter, Allocation.SPREADED, f"{quarter}T(spreaded)"),
        (quarter, Allocation.CLUSTERED, f"{quarter}T(clustered)"),
    ]


def run(
    platform: str = "xgene3",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    silicon_seed: int = 0,
) -> Fig6Result:
    """Generate the Fig. 6 droop-rate measurements."""
    spec = get_spec(platform)
    pool = list(benchmarks) if benchmarks else characterization_set()
    model = DroopModel(spec, seed=silicon_seed)
    result = Fig6Result(platform=spec.name, freq_hz=spec.fmax_hz)
    for nthreads, allocation, label in default_configs(spec):
        pmds = utilized_pmd_count(spec, nthreads, allocation)
        for profile in pool:
            rates = model.rates_per_mcycles(
                pmds,
                spec.frequency_class(spec.fmax_hz),
                activity=profile.droop_activity,
                workload_name=profile.name,
            )
            for bin_mv in FIG6_BINS:
                result.rows.append(
                    Fig6Row(
                        benchmark=profile.name,
                        label=label,
                        utilized_pmds=pmds,
                        bin_mv=bin_mv,
                        detections_per_mcycles=rates[bin_mv],
                    )
                )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 6 droop histogram for one platform."""
    return run(platform or "xgene3").format()


def main() -> None:
    """Print Fig. 6 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig6")


if __name__ == "__main__":
    main()
