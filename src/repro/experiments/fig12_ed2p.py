"""Figure 12 — energy-delay-squared product across configurations.

Same grid as Fig. 11, but on the ED2P metric that the daemon's policies
optimise. The reproduction criteria:

* for the CPU-intensive benchmarks (namd, EP) the *highest* frequency has
  the best (lowest) ED2P at every thread count;
* for the memory-intensive benchmarks (milc, CG, FT) the relation
  inverts: lower frequency means better ED2P.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..allocation import Allocation
from ..analysis.tables import format_table
from ..platform.specs import get_spec
from ..units import fmt_freq
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import figure11_set
from .energy_runner import EnergyRunner, RunMeasurement


@dataclass(frozen=True)
class Fig12Cell:
    """One (benchmark, threads, frequency) ED2P measurement."""

    benchmark: str
    nthreads: int
    freq_hz: int
    measurement: RunMeasurement

    @property
    def ed2p(self) -> float:
        """ED2P of the configuration."""
        return self.measurement.ed2p


@dataclass
class Fig12Result:
    """The full Fig. 12 grid of one platform."""

    platform: str
    cells: List[Fig12Cell] = field(default_factory=list)

    def ed2p_of(self, benchmark: str, nthreads: int, freq_hz: int) -> float:
        """ED2P of one grid cell."""
        for cell in self.cells:
            if (
                cell.benchmark == benchmark
                and cell.nthreads == nthreads
                and cell.freq_hz == freq_hz
            ):
                return cell.ed2p
        raise KeyError((benchmark, nthreads, freq_hz))

    def best_frequency(self, benchmark: str, nthreads: int) -> int:
        """Frequency with the best (lowest) ED2P."""
        candidates = [
            c
            for c in self.cells
            if c.benchmark == benchmark and c.nthreads == nthreads
        ]
        return min(candidates, key=lambda c: c.ed2p).freq_hz

    def format(self) -> str:
        """Render the grid."""
        return format_table(
            ("benchmark", "threads", "freq", "ED2P(J*s^2)"),
            [
                (
                    c.benchmark,
                    c.nthreads,
                    fmt_freq(c.freq_hz),
                    c.ed2p,
                )
                for c in self.cells
            ],
            title=f"Figure 12 - ED2P ({self.platform})",
        )


def run(
    platform: str = "xgene2",
    benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    voltage: str = "safe",
) -> Fig12Result:
    """Measure the Fig. 12 grid for one platform."""
    spec = get_spec(platform)
    runner = EnergyRunner(spec)
    pool = list(benchmarks) if benchmarks else figure11_set()
    result = Fig12Result(platform=spec.name)
    for profile in pool:
        # Every (threads, frequency) cell of one benchmark in one
        # batched sweep; cell order matches the original scalar loops.
        configs = []
        for nthreads in runner.thread_grid().values():
            allocation = (
                Allocation.CLUSTERED
                if nthreads == spec.n_cores
                else Allocation.SPREADED
            )
            for freq_hz in runner.frequency_grid().values():
                configs.append((nthreads, allocation, freq_hz))
        for measurement in runner.measure_batch(
            profile, configs, voltage=voltage
        ):
            result.cells.append(
                Fig12Cell(
                    benchmark=profile.name,
                    nthreads=measurement.nthreads,
                    freq_hz=measurement.freq_hz,
                    measurement=measurement,
                )
            )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the Fig. 12 ED2P sweep for one platform.

    A ``policy`` key reruns the sweep at that policy's idle-machine
    rail mode (default: the safe-Vmin sweep the paper reports).
    """
    return run(platform or "xgene2", voltage=policy or "safe").format()


def main() -> None:
    """Print Fig. 12 via the orchestrator."""
    from .orchestrator import run_main

    run_main("fig12")


if __name__ == "__main__":
    main()
