"""Chip-to-chip variation study (extension of the paper's Section III).

The paper reports the variability of its two specific chips; this study
draws a population of silicon instances (different ``silicon_seed``
values) and asks the questions a fleet operator would:

* how does the safe Vmin of key configurations spread across chips?
* is a policy table characterized **on the deployed chip** always safe?
* what happens when a table characterized on one chip is deployed on
  another — the shortcut the paper's per-chip methodology avoids?

The last question quantifies why the paper characterizes each machine
individually: static core variation differs per die, so a foreign table
can sit below a sensitive chip's true Vmin in the low-PMD classes where
variation is not yet attenuated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from ..allocation import Allocation, cores_for
from ..analysis.tables import format_table
from ..core.policy import VminPolicyTable
from ..platform.chip import Chip
from ..platform.specs import ChipSpec, get_spec
from ..sim.system import ServerSystem
from ..policies.daemon import OnlineMonitoringDaemon
from ..vmin.model import VminModel
from ..workloads.generator import ServerWorkloadGenerator
from ..workloads.suites import characterization_set


@dataclass(frozen=True)
class ChipRecord:
    """Per-silicon-instance measurements."""

    silicon_seed: int
    #: Worst-case single-core safe Vmin at fmax, mV.
    single_core_vmin_mv: float
    #: Full-chip safe Vmin at fmax, mV.
    full_chip_vmin_mv: float
    #: Violations when running the daemon with this chip's own table.
    own_table_violations: int
    #: Violations when running with the golden die's table (the most
    #: robust chip of the population — the worst possible donor).
    foreign_table_violations: int


@dataclass
class VariationStudyResult:
    """Across-population summary."""

    platform: str
    records: List[ChipRecord] = field(default_factory=list)

    def single_core_spread_mv(self) -> float:
        """Population spread of the worst single-core Vmin."""
        values = [r.single_core_vmin_mv for r in self.records]
        return max(values) - min(values)

    def full_chip_spread_mv(self) -> float:
        """Population spread of the full-chip Vmin.

        Should be far smaller than the single-core spread: the paper's
        attenuation argument applies across chips too.
        """
        values = [r.full_chip_vmin_mv for r in self.records]
        return max(values) - min(values)

    def own_table_always_safe(self) -> bool:
        """True when per-chip characterization never violates."""
        return all(r.own_table_violations == 0 for r in self.records)

    def foreign_table_unsafe_chips(self) -> int:
        """Chips on which the reference chip's table undervolts."""
        return sum(
            1 for r in self.records if r.foreign_table_violations > 0
        )

    def format(self) -> str:
        """Render the per-chip table."""
        return format_table(
            (
                "seed",
                "1-core Vmin(mV)",
                "full-chip Vmin(mV)",
                "own-table viol",
                "foreign-table viol",
            ),
            [
                (
                    r.silicon_seed,
                    round(r.single_core_vmin_mv, 1),
                    round(r.full_chip_vmin_mv, 1),
                    r.own_table_violations,
                    r.foreign_table_violations,
                )
                for r in self.records
            ],
            title=(
                f"Chip-to-chip variation study ({self.platform}, "
                f"{len(self.records)} dies)"
            ),
        )


def _worst_single_core_vmin(spec: ChipSpec, model: VminModel) -> float:
    worst = 0.0
    for core in range(spec.n_cores):
        for profile in characterization_set():
            worst = max(
                worst,
                model.safe_vmin_mv(
                    spec.fmax_hz, (core,), profile.vmin_delta_mv
                ),
            )
    return worst


def _daemon_violations(
    spec: ChipSpec,
    silicon_seed: int,
    policy: VminPolicyTable,
    duration_s: float,
    workload_seed: int,
) -> int:
    workload = ServerWorkloadGenerator(
        max_cores=spec.n_cores, seed=workload_seed
    ).generate(duration_s)
    chip = Chip(spec, silicon_seed=silicon_seed)
    daemon = OnlineMonitoringDaemon(spec, policy=policy)
    result = ServerSystem(chip, workload, daemon).run()
    return len(result.violations)


def run(
    platform: str = "xgene2",
    seeds: Sequence[int] = tuple(range(8)),
    duration_s: float = 1800.0,
    workload_seed: int = 3,
) -> VariationStudyResult:
    """Run the study over a population of silicon instances."""
    spec = get_spec(platform)
    models = {seed: VminModel(spec, silicon_seed=seed) for seed in seeds}
    # The "golden die" trap: characterize once on the most robust chip
    # of the population and deploy that table everywhere.
    golden_seed = min(
        seeds, key=lambda s: _worst_single_core_vmin(spec, models[s])
    )
    golden_policy = VminPolicyTable.from_characterization(
        spec, vmin_model=models[golden_seed]
    )
    result = VariationStudyResult(platform=spec.name)
    for seed in seeds:
        model = models[seed]
        own_policy = VminPolicyTable.from_characterization(
            spec, vmin_model=model
        )
        worst_profile = max(
            characterization_set(), key=lambda p: p.vmin_delta_mv
        )
        full_chip = model.safe_vmin_mv(
            spec.fmax_hz,
            cores_for(spec, spec.n_cores, Allocation.CLUSTERED),
            worst_profile.vmin_delta_mv,
        )
        result.records.append(
            ChipRecord(
                silicon_seed=seed,
                single_core_vmin_mv=_worst_single_core_vmin(spec, model),
                full_chip_vmin_mv=full_chip,
                own_table_violations=_daemon_violations(
                    spec, seed, own_policy, duration_s, workload_seed
                ),
                foreign_table_violations=_daemon_violations(
                    spec, seed, golden_policy, duration_s,
                    workload_seed,
                ),
            )
        )
    return result


def render(
    platform: str | None = None,
    duration_s: float = 600.0,
    seed: int = 0,
    policy: str | None = None,
) -> str:
    """Render the chip-to-chip variation study."""
    result = run(platform or "xgene2", duration_s=duration_s, seeds=range(4))
    return (
        f"{result.format()}\n"
        f"\nfull-chip spread {result.full_chip_spread_mv():.0f} mV; "
        f"golden-die table unsafe on "
        f"{result.foreign_table_unsafe_chips()} dies"
    )


def main() -> None:
    """Print the variation study via the orchestrator."""
    from .orchestrator import run_main

    run_main("variation")


if __name__ == "__main__":
    main()
