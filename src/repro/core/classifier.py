"""PMU-based workload classification (Section IV.B).

The daemon classifies every non-system process by its L3-cache access
rate: more than 3 K accesses per million cycles means the process is
bound by the lower memory hierarchy (memory-intensive); anything below is
CPU-intensive. The rate is measured from two reads of one PMU counter
about one million cycles apart (300-500 ms of wall time, depending on the
process's progress).

A small hysteresis band keeps borderline programs (astar, wrf, ...) from
flapping between classes on measurement jitter; the threshold itself is
the paper's 3 K value and is swept by the threshold ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..errors import ConfigurationError
from ..sim.process import WorkloadClass

#: The paper's classification threshold (Fig. 9): L3C accesses / 1M cycles.
DEFAULT_THRESHOLD = 3000.0


@dataclass(frozen=True)
class ClassificationSample:
    """One classification decision, for logs and tests."""

    rate_per_mcycles: float
    previous: WorkloadClass
    decided: WorkloadClass

    @property
    def changed(self) -> bool:
        """True when the class flipped."""
        return (
            self.previous is not WorkloadClass.UNKNOWN
            and self.decided is not self.previous
        )


class L3RateClassifier:
    """Threshold classifier with hysteresis over the L3C rate."""

    def __init__(
        self,
        threshold: float = DEFAULT_THRESHOLD,
        hysteresis: float = 0.05,
    ):
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigurationError("hysteresis must be in [0, 1)")
        self.threshold = threshold
        self.hysteresis = hysteresis

    @property
    def upper_bound(self) -> float:
        """Rate above which a non-memory process becomes memory-intensive."""
        return self.threshold * (1.0 + self.hysteresis)

    @property
    def lower_bound(self) -> float:
        """Rate below which a memory process becomes CPU-intensive."""
        return self.threshold * (1.0 - self.hysteresis)

    def classify(
        self,
        rate_per_mcycles: float,
        previous: WorkloadClass = WorkloadClass.UNKNOWN,
    ) -> ClassificationSample:
        """Decide a process class from one measured L3C rate."""
        if rate_per_mcycles < 0:
            raise ConfigurationError("rate must be non-negative")
        if previous is WorkloadClass.MEMORY_INTENSIVE:
            decided = (
                WorkloadClass.MEMORY_INTENSIVE
                if rate_per_mcycles > self.lower_bound
                else WorkloadClass.CPU_INTENSIVE
            )
        elif previous is WorkloadClass.CPU_INTENSIVE:
            decided = (
                WorkloadClass.MEMORY_INTENSIVE
                if rate_per_mcycles > self.upper_bound
                else WorkloadClass.CPU_INTENSIVE
            )
        else:
            decided = (
                WorkloadClass.MEMORY_INTENSIVE
                if rate_per_mcycles > self.threshold
                else WorkloadClass.CPU_INTENSIVE
            )
        return ClassificationSample(
            rate_per_mcycles=rate_per_mcycles,
            previous=previous,
            decided=decided,
        )
