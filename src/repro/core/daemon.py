"""The online monitoring daemon (Section VI.A, Fig. 13).

This is the paper's primary contribution: a lightweight userspace daemon
that (a) watches every running process's L3C access rate through PMU
counters and classifies it as CPU- or memory-intensive, and (b) guides
placement, per-PMD clocks and the shared rail voltage accordingly.

The daemon is implemented as a :class:`~repro.sim.system.Controller`, so
it plugs into the simulated server exactly where a real daemon plugs into
Linux: it reacts to process arrivals and exits (full replacement — the
only points where utilized PMDs may change) and to classification flips
(clock/voltage retune only), and runs its monitor pass periodically
(300-500 ms wall time per one-million-cycle window).

Every actuation follows the fail-safe protocol: the rail goes *up* to a
level safe for both the old and new configurations before anything else
moves, and settles down only after the reconfiguration completed. The
daemon never predicts Vmin — it only replays the characterization table.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .. import telemetry
from ..platform.specs import ChipSpec
from ..telemetry import names as metric_names
from ..sim.governor import OndemandGovernor
from ..sim.process import SimProcess
from ..sim.system import Controller
from .classifier import L3RateClassifier
from .monitoring import CounterReader, MonitoringDaemon
from .placement import PlacementEngine
from .policy import VminPolicyTable

#: Default monitor period, seconds (Section VI.A: 300-500 ms).
DEFAULT_MONITOR_PERIOD_S = 0.4


class OnlineMonitoringDaemon(Controller):
    """Monitoring + placement daemon driving one simulated server.

    ``control_voltage=True`` gives the paper's *Optimal* configuration;
    ``control_voltage=False`` gives *Placement* (frequency and core
    allocation only, rail pinned at nominal).
    """

    def __init__(
        self,
        spec: ChipSpec,
        control_voltage: bool = True,
        policy: Optional[VminPolicyTable] = None,
        engine: Optional[PlacementEngine] = None,
        monitor: Optional[MonitoringDaemon] = None,
        classifier: Optional[L3RateClassifier] = None,
        reader: Optional[CounterReader] = None,
        monitor_period_s: float = DEFAULT_MONITOR_PERIOD_S,
    ):
        super().__init__()
        self.spec = spec
        self.control_voltage = control_voltage
        self.policy = policy or VminPolicyTable.from_characterization(spec)
        self.engine = engine or PlacementEngine(
            spec, policy=self.policy, control_voltage=control_voltage
        )
        self.monitor = monitor or MonitoringDaemon(
            classifier=classifier, reader=reader
        )
        self.monitor_period_s = monitor_period_s
        self.replans = 0
        self.retunes = 0

    # -- controller hooks ---------------------------------------------------------

    def on_start(self) -> None:
        """Park the idle machine: clock floors, lowest safe rail level."""
        self._replan()

    def place(self, process: SimProcess) -> Optional[Tuple[int, ...]]:
        """Fail-safe pre-invocation step: raise the rail, then let the
        default scheduler drop the process anywhere free — the immediate
        replan in :meth:`on_process_started` moves it to its proper slot.
        """
        self.engine.raise_for_arrival(self.system, process.nthreads)
        telemetry.inc(metric_names.DAEMON_PLACEMENTS)
        return None

    def on_process_started(self, process: SimProcess) -> None:
        """Full replacement: arrivals may change the utilized PMDs."""
        self._replan()

    def on_process_finished(self, process: SimProcess) -> None:
        """Full replacement: exits may change the utilized PMDs."""
        self.monitor.forget(process)
        self._replan()

    def on_tick(self) -> None:
        """Monitor pass; on classification flips, retune V/F in place.

        Fig. 13's case (b): utilized PMDs cannot change here, so threads
        stay put and only clocks and the rail move.
        """
        changes = self.monitor.sample(self.system)
        if changes:
            plan = self.engine.retune(self.system.running_processes())
            self.engine.apply(self.system, plan)
            self.retunes += 1
            telemetry.inc(metric_names.DAEMON_RETUNES)

    # -- internals ------------------------------------------------------------------

    def _replan(self) -> None:
        plan = self.engine.plan(self.system.running_processes())
        self.engine.apply(self.system, plan)
        self.replans += 1
        telemetry.inc(metric_names.DAEMON_REPLANS)


class SafeVminController(Controller):
    """The evaluation's *Safe Vmin* configuration (Section VI.B).

    Default scheduler and ``ondemand`` governor, but the rail follows the
    characterized safe Vmin of the current utilized-PMD count and top
    clock instead of sitting at nominal — isolating the value of the
    exposed voltage guardband alone.
    """

    def __init__(
        self,
        spec: ChipSpec,
        policy: Optional[VminPolicyTable] = None,
        governor: Optional[OndemandGovernor] = None,
    ):
        super().__init__()
        self.spec = spec
        self.policy = policy or VminPolicyTable.from_characterization(spec)
        self.governor = governor or OndemandGovernor()

    def on_start(self) -> None:
        """Park the clocks and settle the rail for the idle machine."""
        self.governor.apply(self.system.chip, self.system.now)
        self._settle_voltage()

    def place(self, process: SimProcess) -> Optional[Tuple[int, ...]]:
        """Fail-safe pre-invocation raise, then default placement."""
        state = self.system.chip.state()
        worst_pmds = min(
            self.spec.n_pmds, len(state.active_pmds) + process.nthreads
        )
        required = self.policy.safe_voltage_mv(worst_pmds, self.spec.fmax_hz)
        if required > self.system.chip.voltage_mv:
            self.system.set_voltage(required)
        return None

    def on_process_started(self, process: SimProcess) -> None:
        """Governor reacts, then the rail settles to the new safe level."""
        self.governor.apply(self.system.chip, self.system.now)
        self._settle_voltage()

    def on_process_finished(self, process: SimProcess) -> None:
        """Governor reacts, then the rail settles to the new safe level."""
        self.governor.apply(self.system.chip, self.system.now)
        self._settle_voltage()

    def _settle_voltage(self) -> None:
        state = self.system.chip.state()
        required = self.policy.safe_voltage_mv(
            max(1, len(state.active_pmds)), state.max_active_frequency()
        )
        self.system.set_voltage(required)
