"""The monitoring half of the online daemon (Section VI.A).

The monitor is a watchdog that periodically reads per-process performance
counters (through the paper's zero-overhead kernel-module path, or a
noisy perf-like path for the measurement ablation), computes each
process's L3C access rate over a window of at least one million cycles,
and (re)classifies the process. It also reports the currently utilized
PMDs, which determine the droop class the placement half must respect.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import ConfigurationError
from ..sim.process import SimProcess, WorkloadClass
from ..telemetry import names as metric_names
from .classifier import ClassificationSample, L3RateClassifier

if TYPE_CHECKING:  # pragma: no cover - typing only (import cycle guard)
    from ..policies.surfaces import Observation

#: Minimum cycle window between two classification reads (Section VI.A:
#: the daemon counts L3C accesses during one million cycles).
MIN_WINDOW_CYCLES = 1_000_000

#: Reads (cycles, l3_accesses) of a process; replaceable for noise models.
CounterReader = Callable[[SimProcess], Tuple[float, float]]


def kernel_module_reader(process: SimProcess) -> Tuple[float, float]:
    """Exact counter read (the paper's kernel-module path)."""
    return process.counters.cycles, process.counters.l3_accesses


class PerfLikeReader:
    """Counter reads with ±``noise`` relative error (perf/PAPI path).

    Section VI.A motivates the kernel module with the ±3 % overhead of
    perf-style tooling; this reader exists so the measurement-noise
    ablation can quantify the misclassifications that noise causes near
    the 3 K threshold.
    """

    def __init__(self, noise: float = 0.03, seed: int = 0):
        if not 0.0 <= noise < 1.0:
            raise ConfigurationError("noise must be in [0, 1)")
        self._noise = noise
        self._rng = random.Random(seed)

    def __call__(self, process: SimProcess) -> Tuple[float, float]:
        def jitter(value: float) -> float:
            return value * (
                1.0 + self._rng.uniform(-self._noise, self._noise)
            )

        return (
            jitter(process.counters.cycles),
            jitter(process.counters.l3_accesses),
        )


@dataclass(frozen=True)
class ClassChange:
    """One process whose class flipped during a monitor pass."""

    process: SimProcess
    sample: ClassificationSample


class MonitoringDaemon:
    """Watchdog half of the daemon: classify processes, track PMDs."""

    def __init__(
        self,
        classifier: Optional[L3RateClassifier] = None,
        reader: Optional[CounterReader] = None,
        min_window_cycles: float = MIN_WINDOW_CYCLES,
    ):
        if min_window_cycles <= 0:
            raise ConfigurationError("window must be positive")
        self.classifier = classifier or L3RateClassifier()
        self.reader: CounterReader = reader or kernel_module_reader
        self.min_window_cycles = min_window_cycles
        #: pid -> counters at the last classification read.
        self._snapshots: Dict[int, Tuple[float, float]] = {}
        self.samples_taken = 0

    def forget(self, process: SimProcess) -> None:
        """Drop state for a finished process."""
        self._snapshots.pop(process.pid, None)

    def sample(self, system: "Observation") -> List[ClassChange]:
        """One monitor pass: classify every running process.

        ``system`` is anything exposing ``running_processes()`` — a live
        :class:`~repro.policies.surfaces.Observation` in the policy
        dispatch path, or the server system itself in tests/tools.

        A process is (re)classified only once its cycle counter advanced
        by at least the window since the previous read — the hardware
        protocol of two counter reads one million cycles apart.
        Returns the processes whose class changed.
        """
        changes: List[ClassChange] = []
        for process in system.running_processes():
            cycles, accesses = self.reader(process)
            previous = self._snapshots.get(process.pid)
            if previous is None:
                self._snapshots[process.pid] = (cycles, accesses)
                continue
            dcycles = cycles - previous[0]
            if dcycles < self.min_window_cycles * process.nthreads:
                continue
            daccesses = max(0.0, accesses - previous[1])
            rate = 1e6 * daccesses / dcycles
            self._snapshots[process.pid] = (cycles, accesses)
            self.samples_taken += 1
            telemetry.inc(metric_names.DAEMON_CLASSIFICATIONS)
            sample = self.classifier.classify(rate, process.observed_class)
            if sample.decided is not process.observed_class:
                was_known = (
                    process.observed_class is not WorkloadClass.UNKNOWN
                )
                process.observed_class = sample.decided
                if was_known or sample.decided is not WorkloadClass.CPU_INTENSIVE:
                    changes.append(ClassChange(process, sample))
                    telemetry.inc(metric_names.DAEMON_CLASS_FLIPS)
                elif sample.decided is WorkloadClass.CPU_INTENSIVE:
                    # UNKNOWN -> CPU is not a behavioural change: new
                    # processes are already treated as CPU-intensive
                    # (the fail-safe default of Fig. 13).
                    continue
        return changes

    def utilized_pmds(self, system: "Observation") -> int:
        """Number of PMDs with at least one running thread."""
        return len(system.chip.utilized_pmds)
