"""The daemon's safe-Vmin knowledge: a Table II-style policy table.

The paper deliberately avoids predictive Vmin models ("the prediction
schemes ... are error-prone and can lead to system failures") and instead
drives the rail from a *measured* table: for each droop-magnitude class
(utilized-PMD count) and frequency class, the worst safe Vmin observed
across the whole characterization campaign. The daemon then always moves
the rail through these conservative levels with the fail-safe protocol of
Fig. 13.

:class:`VminPolicyTable` builds that table the same way — by taking the
worst case over thread counts, allocations and benchmarks of the
characterization set against the (simulated) silicon — and answers the
single question the daemon asks: *given these utilized PMDs and this top
frequency, what is the lowest safe rail setting?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..allocation import Allocation, cores_for
from ..errors import ConfigurationError
from ..kernels.vmin import safe_vmin_matrix
from ..platform.specs import ChipSpec, FrequencyClass
from ..vmin.cache import (
    get_default_cache,
    make_key,
    model_fingerprint,
    spec_fingerprint,
)
from ..vmin.droop import droop_bin_index, droop_ladder
from ..vmin.model import VminModel
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set

#: Extra margin above the measured worst case, in mV (one regulator step).
DEFAULT_GUARD_MV = 5


@dataclass(frozen=True)
class PolicyEntry:
    """One row of the daemon's policy table."""

    freq_class: FrequencyClass
    droop_class: int
    vmin_mv: int


class VminPolicyTable:
    """Measured worst-case safe Vmin per (frequency class, droop class)."""

    def __init__(
        self,
        spec: ChipSpec,
        entries: Dict[Tuple[FrequencyClass, int], int],
        guard_mv: int = DEFAULT_GUARD_MV,
    ):
        if guard_mv < 0:
            raise ConfigurationError("guard_mv must be non-negative")
        self.spec = spec
        self.guard_mv = guard_mv
        self._entries = dict(entries)
        self._n_classes = len(droop_ladder(spec))
        for freq_class in self._required_freq_classes(spec):
            for droop_class in range(self._n_classes):
                if (freq_class, droop_class) not in self._entries:
                    raise ConfigurationError(
                        f"policy table missing entry "
                        f"({freq_class.value}, {droop_class})"
                    )

    @staticmethod
    def _required_freq_classes(spec: ChipSpec) -> Tuple[FrequencyClass, ...]:
        classes = [FrequencyClass.HIGH, FrequencyClass.SKIP]
        if spec.clock_division_below_half:
            classes.append(FrequencyClass.DIVIDE)
        return tuple(classes)

    # -- construction -------------------------------------------------------------

    @classmethod
    def from_characterization(
        cls,
        spec: ChipSpec,
        vmin_model: Optional[VminModel] = None,
        benchmarks: Optional[Iterable[BenchmarkProfile]] = None,
        step_mv: int = 10,
        guard_mv: int = DEFAULT_GUARD_MV,
    ) -> "VminPolicyTable":
        """Build the table from a worst-case characterization sweep.

        Every (thread count, allocation) pair mapping to a droop class is
        evaluated for every benchmark of the characterization set; the
        table keeps the worst measured Vmin per class, rounded up to the
        campaign's voltage step — exactly the data reduction behind the
        paper's Table II.
        """
        if step_mv <= 0:
            raise ConfigurationError("step_mv must be positive")
        model = vmin_model or VminModel(spec)
        pool = list(benchmarks) if benchmarks else characterization_set()
        if not pool:
            raise ConfigurationError("benchmark pool is empty")
        # The sweep is a characterization campaign: memoize the reduced
        # table in the content-addressed cache (see repro.vmin.cache).
        cache = get_default_cache()
        key = make_key(
            kind="policy_table",
            spec=spec_fingerprint(spec),
            model=model_fingerprint(model),
            pool=sorted(
                (profile.name, profile.vmin_delta_mv) for profile in pool
            ),
            seed=0,
            step_mv=step_mv,
        )
        cached = cache.get(key)
        if cached is not None:
            entries = {
                (FrequencyClass(tag.split(":")[0]), int(tag.split(":")[1])):
                int(vmin)
                for tag, vmin in cached.items()
            }
            return cls(spec, entries, guard_mv=guard_mv)
        configs = cls._class_configs(spec)
        # One batched (core set x workload delta) grid per representative
        # frequency replaces the scalar triple loop; the per-class worst
        # case is a slice reduction over the same values.
        class_slices: Dict[int, Tuple[int, int]] = {}
        all_sets: List[Tuple[int, ...]] = []
        for droop_class in sorted(configs):
            start = len(all_sets)
            all_sets.extend(configs[droop_class])
            class_slices[droop_class] = (start, len(all_sets))
        deltas = [profile.vmin_delta_mv for profile in pool]
        entries: Dict[Tuple[FrequencyClass, int], int] = {}
        for freq_class, freq_hz in cls._freq_class_reps(spec):
            matrix = safe_vmin_matrix(model, freq_hz, all_sets, deltas)
            floor = 0
            for droop_class in sorted(configs):
                lo, hi = class_slices[droop_class]
                worst = max(0.0, float(matrix[lo:hi].max()))
                stepped = int(-(-worst // step_mv) * step_mv)  # ceil to step
                # Enforce monotonicity across droop classes: few-thread
                # configurations in a mild class can measure *above* a
                # heavier class (full single-core variation vs the
                # attenuated multicore one), but the fail-safe
                # transition logic needs "more PMDs => never lower".
                floor = max(floor, stepped)
                entries[(freq_class, droop_class)] = min(
                    floor, spec.nominal_voltage_mv
                )
        cache.put(
            key,
            {
                f"{freq_class.value}:{droop_class}": vmin
                for (freq_class, droop_class), vmin in entries.items()
            },
        )
        return cls(spec, entries, guard_mv=guard_mv)

    @staticmethod
    def _freq_class_reps(
        spec: ChipSpec,
    ) -> List[Tuple[FrequencyClass, int]]:
        """One representative frequency per Vmin-relevant class."""
        reps: Dict[FrequencyClass, int] = {}
        for freq in spec.frequency_steps():
            fclass = spec.frequency_class(freq)
            # Keep the highest frequency of each class: worst case.
            reps[fclass] = max(reps.get(fclass, 0), freq)
        return sorted(reps.items(), key=lambda item: item[1], reverse=True)

    @staticmethod
    def _class_configs(
        spec: ChipSpec,
    ) -> Dict[int, List[Tuple[int, ...]]]:
        """Core sets per droop class, over thread counts and allocations."""
        configs: Dict[int, List[Tuple[int, ...]]] = {}
        for nthreads in range(1, spec.n_cores + 1):
            for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
                cores = cores_for(spec, nthreads, allocation)
                pmds = {spec.pmd_of_core(c) for c in cores}
                droop_class = droop_bin_index(spec, len(pmds))
                configs.setdefault(droop_class, []).append(cores)
        return configs

    # -- queries -------------------------------------------------------------------

    def entry(
        self, freq_class: FrequencyClass, droop_class: int
    ) -> PolicyEntry:
        """Raw table entry (without the guard margin)."""
        key = (freq_class, droop_class)
        if key not in self._entries:
            # Chips without the division path fold DIVIDE into SKIP.
            key = (FrequencyClass.SKIP, droop_class)
        if key not in self._entries:
            raise ConfigurationError(
                f"no policy entry for {freq_class.value}/{droop_class}"
            )
        return PolicyEntry(
            freq_class=key[0],
            droop_class=droop_class,
            vmin_mv=self._entries[key],
        )

    def safe_voltage_mv(self, utilized_pmds: int, freq_hz: int) -> int:
        """Lowest rail setting the daemon may use for a configuration.

        ``utilized_pmds`` counts PMDs with at least one running thread;
        ``freq_hz`` is the highest clock among them. The guard margin is
        included; results never exceed the nominal voltage.
        """
        droop_class = droop_bin_index(self.spec, max(1, utilized_pmds))
        freq_class = self.spec.frequency_class(
            self.spec.nearest_frequency(freq_hz)
        )
        level = self.entry(freq_class, droop_class).vmin_mv + self.guard_mv
        return min(level, self.spec.nominal_voltage_mv)

    def rows(self) -> List[PolicyEntry]:
        """All entries, for rendering Table II."""
        return [
            PolicyEntry(fc, dc, vmin)
            for (fc, dc), vmin in sorted(
                self._entries.items(),
                key=lambda item: (item[0][1], item[0][0].value),
            )
        ]
