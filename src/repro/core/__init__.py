"""The paper's core machinery: monitoring, placement and the Vmin policy.

Classification (monitoring), placement planning, the safe-Vmin policy
table and the four evaluation configurations (Baseline / Safe-Vmin /
Placement / Optimal). The control policies themselves — the daemon, the
Safe-Vmin trim, the governors and power cappers — live in
:mod:`repro.policies`.
"""

from .classifier import (
    DEFAULT_THRESHOLD,
    ClassificationSample,
    L3RateClassifier,
)
from .configurations import (
    CONFIG_NAMES,
    CONFIG_POLICY_KEYS,
    ConfigurationRow,
    EvaluationResult,
    make_policy,
    run_configuration,
    run_evaluation,
)
from .monitoring import (
    MIN_WINDOW_CYCLES,
    ClassChange,
    MonitoringDaemon,
    PerfLikeReader,
    kernel_module_reader,
)
from .placement import (
    PlacementEngine,
    PlacementPlan,
    default_memory_frequency_hz,
)
from .policy import DEFAULT_GUARD_MV, PolicyEntry, VminPolicyTable

__all__ = [
    "CONFIG_NAMES",
    "CONFIG_POLICY_KEYS",
    "ClassChange",
    "ClassificationSample",
    "ConfigurationRow",
    "DEFAULT_GUARD_MV",
    "DEFAULT_THRESHOLD",
    "EvaluationResult",
    "L3RateClassifier",
    "MIN_WINDOW_CYCLES",
    "MonitoringDaemon",
    "PerfLikeReader",
    "PlacementEngine",
    "PlacementPlan",
    "PolicyEntry",
    "VminPolicyTable",
    "default_memory_frequency_hz",
    "kernel_module_reader",
    "make_policy",
    "run_configuration",
    "run_evaluation",
]
