"""The paper's primary contribution: the online monitoring daemon.

Classification (monitoring), placement, V/F policy and the four
evaluation configurations (Baseline / Safe-Vmin / Placement / Optimal).
"""

from .classifier import (
    DEFAULT_THRESHOLD,
    ClassificationSample,
    L3RateClassifier,
)
from .configurations import (
    CONFIG_NAMES,
    ConfigurationRow,
    EvaluationResult,
    make_controller,
    run_configuration,
    run_evaluation,
)
from .daemon import (
    DEFAULT_MONITOR_PERIOD_S,
    OnlineMonitoringDaemon,
    SafeVminController,
)
from .monitoring import (
    MIN_WINDOW_CYCLES,
    ClassChange,
    MonitoringDaemon,
    PerfLikeReader,
    kernel_module_reader,
)
from .powercap import CappedDaemonController, PowerCapController
from .placement import (
    PlacementEngine,
    PlacementPlan,
    default_memory_frequency_hz,
)
from .policy import DEFAULT_GUARD_MV, PolicyEntry, VminPolicyTable

__all__ = [
    "CONFIG_NAMES",
    "ClassChange",
    "CappedDaemonController",
    "ClassificationSample",
    "ConfigurationRow",
    "DEFAULT_GUARD_MV",
    "DEFAULT_MONITOR_PERIOD_S",
    "DEFAULT_THRESHOLD",
    "EvaluationResult",
    "L3RateClassifier",
    "MIN_WINDOW_CYCLES",
    "MonitoringDaemon",
    "OnlineMonitoringDaemon",
    "PerfLikeReader",
    "PowerCapController",
    "PlacementEngine",
    "PlacementPlan",
    "PolicyEntry",
    "SafeVminController",
    "VminPolicyTable",
    "default_memory_frequency_hz",
    "kernel_module_reader",
    "make_controller",
    "run_configuration",
    "run_evaluation",
]
