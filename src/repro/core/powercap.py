"""DVFS-based power capping (paper Section I's power-management context).

The paper motivates its work with the rise of power capping: "the ability
to cap peak power consumption has recently gained strong interest ...
power capping is realized through power-performance knobs such as DVFS,
pipeline throttling or memory throttling" (citing RAPL and
warehouse-scale provisioning). This module provides that substrate: a
controller that watches the platform's energy meter the way RAPL watches
its energy counters and throttles the clocks to keep average power under
a budget.

Two variants:

* :class:`PowerCapController` — capping on an otherwise stock machine
  (ondemand base policy, nominal voltage);
* :class:`CappedDaemonController` — the paper's Optimal daemon with a
  power cap layered on top: the daemon picks placement/V/F, the capper
  clamps a maximum frequency that the placement engine then respects.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..platform.specs import ChipSpec
from ..sim.governor import OndemandGovernor
from ..sim.process import SimProcess
from ..sim.system import Controller
from .daemon import OnlineMonitoringDaemon
from .placement import PlacementEngine
from .policy import VminPolicyTable


class _WindowPowerMeter:
    """Average power over the last control window, read like RAPL."""

    def __init__(self) -> None:
        self._last_energy_j = 0.0
        self._last_time_s = 0.0

    def read(self, system) -> Optional[float]:
        """Average power since the previous read; None on a zero window."""
        energy = system.meter.energy_j
        now = system.now
        dt = now - self._last_time_s
        if dt <= 0:
            return None
        power = (energy - self._last_energy_j) / dt
        self._last_energy_j = energy
        self._last_time_s = now
        return power


class PowerCapController(Controller):
    """Keep average power under a budget by clamping the clock ceiling.

    Every control window the measured window-average power is compared
    against the cap: above it, the ceiling steps down one frequency step
    (and every busy PMD is clamped); comfortably below it, the ceiling
    steps back up. This is the classic RAPL-style outer loop realized
    purely through DVFS.
    """

    def __init__(
        self,
        spec: ChipSpec,
        cap_w: float,
        window_s: float = 0.5,
        release_margin: float = 0.9,
    ):
        super().__init__()
        if cap_w <= 0:
            raise ConfigurationError("power cap must be positive")
        if not 0.0 < release_margin < 1.0:
            raise ConfigurationError("release margin must be in (0, 1)")
        self.spec = spec
        self.cap_w = cap_w
        self.release_margin = release_margin
        self.monitor_period_s = window_s
        self.governor = OndemandGovernor()
        self._meter = _WindowPowerMeter()
        self._steps: List[int] = list(spec.frequency_steps())
        self._ceiling_index = len(self._steps) - 1
        self.throttle_events = 0
        self.release_events = 0

    @property
    def ceiling_hz(self) -> int:
        """Current maximum clock the capper allows."""
        return self._steps[self._ceiling_index]

    def on_start(self) -> None:
        """Start at the governor's defaults."""
        self.governor.apply(self.system.chip, self.system.now)
        self._apply_ceiling()

    def on_process_started(self, process: SimProcess) -> None:
        """Re-run the base governor, then clamp."""
        self.governor.apply(self.system.chip, self.system.now)
        self._apply_ceiling()

    def on_process_finished(self, process: SimProcess) -> None:
        """Re-run the base governor, then clamp."""
        self.governor.apply(self.system.chip, self.system.now)
        self._apply_ceiling()

    def on_tick(self) -> None:
        """RAPL-style control step on the window-average power."""
        power = self._meter.read(self.system)
        if power is None:
            return
        if power > self.cap_w and self._ceiling_index > 0:
            self._ceiling_index -= 1
            self.throttle_events += 1
            self._apply_ceiling()
        elif (
            power < self.cap_w * self.release_margin
            and self._ceiling_index < len(self._steps) - 1
        ):
            self._ceiling_index += 1
            self.release_events += 1
            self._apply_ceiling()

    def _apply_ceiling(self) -> None:
        chip = self.system.chip
        ceiling = self.ceiling_hz
        for pmd in range(self.spec.n_pmds):
            if chip.cppc.frequency_of(pmd) > ceiling:
                self.system.set_pmd_frequency(pmd, ceiling)


class CappedDaemonController(OnlineMonitoringDaemon):
    """The paper's Optimal daemon under a power budget.

    The capper's ceiling becomes the placement engine's CPU clock, so
    CPU-intensive PMDs run as fast as the budget allows while the
    memory-intensive PMDs keep their (already lower) energy clock, and
    the rail keeps tracking the safe Vmin of whatever is configured.
    """

    def __init__(
        self,
        spec: ChipSpec,
        cap_w: float,
        policy: Optional[VminPolicyTable] = None,
        window_s: float = 0.5,
        release_margin: float = 0.9,
    ):
        super().__init__(spec, control_voltage=True, policy=policy,
                         monitor_period_s=window_s)
        if cap_w <= 0:
            raise ConfigurationError("power cap must be positive")
        self.cap_w = cap_w
        self.release_margin = release_margin
        self._meter = _WindowPowerMeter()
        self._steps: List[int] = [
            f for f in spec.frequency_steps() if f >= self.engine.mem_freq_hz
        ]
        self._ceiling_index = len(self._steps) - 1
        self.throttle_events = 0
        self.release_events = 0

    @property
    def ceiling_hz(self) -> int:
        """Current maximum clock the capper allows."""
        return self._steps[self._ceiling_index]

    def on_tick(self) -> None:
        """Daemon monitoring plus the capping control step."""
        super().on_tick()
        power = self._meter.read(self.system)
        if power is None:
            return
        changed = False
        if power > self.cap_w and self._ceiling_index > 0:
            self._ceiling_index -= 1
            self.throttle_events += 1
            changed = True
        elif (
            power < self.cap_w * self.release_margin
            and self._ceiling_index < len(self._steps) - 1
        ):
            self._ceiling_index += 1
            self.release_events += 1
            changed = True
        if changed:
            self._rebuild_engine()
            plan = self.engine.retune(self.system.running_processes())
            self.engine.apply(self.system, plan)

    def _rebuild_engine(self) -> None:
        self.engine = PlacementEngine(
            self.spec,
            policy=self.policy,
            control_voltage=self.control_voltage,
            cpu_freq_hz=self.ceiling_hz,
            mem_freq_hz=min(self.engine.mem_freq_hz, self.ceiling_hz),
        )
