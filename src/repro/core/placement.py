"""The placement half of the online daemon (Section VI.A, Fig. 13).

Given the monitor's classification of every running process, the
placement engine decides:

* **where threads run** — CPU-intensive (and still-unclassified)
  processes are *clustered* onto as few PMDs as possible, which lowers
  the droop class and therefore the rail voltage, and costs them nothing
  because they barely touch the shared L2/L3 path; memory-intensive
  processes are *spreaded* over the remaining PMDs, each with its own L2
  (the Fig. 7 trade-off);
* **each PMD's clock** — PMDs hosting CPU-intensive work run at fmax
  (performance constraint), PMDs hosting only memory-intensive work run
  at the chip's *energy frequency* (the clock-division point 0.9 GHz on
  X-Gene 2, the half clock 1.5 GHz on X-Gene 3 — Section V), idle PMDs
  park at the floor;
* **the rail voltage** — the policy table's worst-case safe Vmin for the
  utilized-PMD count and top clock, applied with the fail-safe ordering:
  *raise voltage first, reconfigure, then settle down* — never the other
  way around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from ..allocation import Allocation, pick_free_cores
from ..errors import PlacementError
from ..platform.chip import ChipState
from ..platform.specs import ChipSpec
from ..policies.actuation import apply_action
from ..policies.surfaces import Action
from ..sim.process import SimProcess, WorkloadClass
from ..sim.system import ServerSystem
from .policy import VminPolicyTable


def default_memory_frequency_hz(spec: ChipSpec) -> int:
    """The chip's best energy-efficiency clock for memory-bound work.

    On chips with the clock-division path (X-Gene 2) this is the largest
    setting *below* half of fmax — 0.9 GHz, where the ~12 % Vmin drop
    lives (Section II.B). On chips without it (X-Gene 3), sub-half
    settings share the half clock's Vmin but run slower, so the half
    clock itself (1.5 GHz) is optimal.
    """
    half = spec.half_frequency_hz
    if spec.clock_division_below_half:
        below = [f for f in spec.frequency_steps() if f < half]
        if below:
            return max(below)
    return half


@dataclass
class PlacementPlan:
    """Target configuration computed by one planning pass."""

    #: pid -> target cores, covering every running process.
    assignments: Dict[int, Tuple[int, ...]] = field(default_factory=dict)
    #: pmd id -> target clock, covering every PMD.
    pmd_freqs_hz: Dict[int, int] = field(default_factory=dict)
    #: Target rail voltage; ``None`` when the engine does not control it.
    voltage_mv: Optional[int] = None
    utilized_pmds: int = 0
    max_active_freq_hz: int = 0


class PlacementEngine:
    """Computes and applies placement plans with the fail-safe protocol."""

    def __init__(
        self,
        spec: ChipSpec,
        policy: Optional[VminPolicyTable] = None,
        control_voltage: bool = True,
        cpu_freq_hz: Optional[int] = None,
        mem_freq_hz: Optional[int] = None,
        idle_freq_hz: Optional[int] = None,
    ):
        self.spec = spec
        self.policy = policy or VminPolicyTable.from_characterization(spec)
        self.control_voltage = control_voltage
        self.cpu_freq_hz = spec.nearest_frequency(
            cpu_freq_hz if cpu_freq_hz is not None else spec.fmax_hz
        )
        self.mem_freq_hz = spec.nearest_frequency(
            mem_freq_hz
            if mem_freq_hz is not None
            else default_memory_frequency_hz(spec)
        )
        self.idle_freq_hz = spec.nearest_frequency(
            idle_freq_hz if idle_freq_hz is not None else spec.fmin_hz
        )

    # -- planning ---------------------------------------------------------------

    def plan(self, processes: Sequence[SimProcess]) -> PlacementPlan:
        """Compute the target configuration for the given running set.

        CPU-intensive and unclassified processes are packed first
        (clustered), memory-intensive ones are spread over what remains.
        Raises :class:`PlacementError` when the processes need more cores
        than the chip has (the generator's guarantee makes this a bug).
        """
        total_threads = sum(p.nthreads for p in processes)
        if total_threads > self.spec.n_cores:
            raise PlacementError(
                f"{total_threads} threads exceed {self.spec.n_cores} cores"
            )
        cpu_group = [
            p for p in processes
            if p.observed_class is not WorkloadClass.MEMORY_INTENSIVE
        ]
        mem_group = [
            p for p in processes
            if p.observed_class is WorkloadClass.MEMORY_INTENSIVE
        ]
        free = list(range(self.spec.n_cores))
        plan = PlacementPlan()
        for process in sorted(
            cpu_group, key=lambda p: (-p.nthreads, p.pid)
        ):
            cores = pick_free_cores(
                self.spec, free, process.nthreads, Allocation.CLUSTERED
            )
            plan.assignments[process.pid] = cores
            free = [c for c in free if c not in cores]
        for process in sorted(
            mem_group, key=lambda p: (-p.nthreads, p.pid)
        ):
            cores = pick_free_cores(
                self.spec, free, process.nthreads, Allocation.SPREADED
            )
            plan.assignments[process.pid] = cores
            free = [c for c in free if c not in cores]
        self._fill_frequencies(plan, processes)
        self._fill_voltage(plan)
        return plan

    def retune(
        self, processes: Sequence[SimProcess]
    ) -> PlacementPlan:
        """Recompute clocks and voltage for the *current* assignment.

        Used on classification changes (Fig. 13's case (b)): utilized
        PMDs cannot change then, so threads stay put and only frequencies
        and the rail move.
        """
        plan = PlacementPlan()
        for process in processes:
            plan.assignments[process.pid] = tuple(process.cores)
        self._fill_frequencies(plan, processes)
        self._fill_voltage(plan)
        return plan

    def _fill_frequencies(
        self, plan: PlacementPlan, processes: Sequence[SimProcess]
    ) -> None:
        class_of: Dict[int, WorkloadClass] = {
            p.pid: p.observed_class for p in processes
        }
        pmd_kind: Dict[int, str] = {}
        for pid, cores in plan.assignments.items():
            kind = (
                "mem"
                if class_of[pid] is WorkloadClass.MEMORY_INTENSIVE
                else "cpu"
            )
            for core in cores:
                pmd = self.spec.pmd_of_core(core)
                # A PMD hosting any CPU-intensive thread must run at the
                # CPU clock; never slow a CPU-bound process down.
                if pmd_kind.get(pmd) != "cpu":
                    pmd_kind[pmd] = kind
        utilized = 0
        max_freq = 0
        for pmd in range(self.spec.n_pmds):
            kind = pmd_kind.get(pmd)
            if kind == "cpu":
                freq = self.cpu_freq_hz
            elif kind == "mem":
                freq = self.mem_freq_hz
            else:
                freq = self.idle_freq_hz
            plan.pmd_freqs_hz[pmd] = freq
            if kind is not None:
                utilized += 1
                max_freq = max(max_freq, freq)
        plan.utilized_pmds = utilized
        plan.max_active_freq_hz = max_freq or self.idle_freq_hz

    def _fill_voltage(self, plan: PlacementPlan) -> None:
        if not self.control_voltage:
            plan.voltage_mv = None
            return
        plan.voltage_mv = self.policy.safe_voltage_mv(
            plan.utilized_pmds, plan.max_active_freq_hz
        )

    # -- application (fail-safe ordering, Fig. 13) ---------------------------------

    def _transitional_mv(self, state: ChipState, plan: PlacementPlan) -> int:
        required = self.policy.safe_voltage_mv(
            max(len(state.active_pmds), plan.utilized_pmds),
            max(state.max_active_frequency(), plan.max_active_freq_hz),
        )
        return max(required, plan.voltage_mv or 0)

    def transitional_voltage_mv(
        self, system: ServerSystem, plan: PlacementPlan
    ) -> int:
        """Rail level that is safe before, during and after the change.

        The worst case over the old and new configurations: the policy
        table is monotone in both the droop class and the frequency
        class, so evaluating at (max PMDs, max clock) bounds every
        intermediate state of the transition.
        """
        return self._transitional_mv(system.chip.state(), plan)

    def action_for(self, plan: PlacementPlan, state: ChipState) -> Action:
        """Express a plan as one fail-safe-ordered control action.

        ``state`` is the chip state the transition starts from (used for
        the transitional raise level). The action carries the *full*
        assignment map; the actuation layer diffs it against the live
        running set, so planning needs no knowledge of which threads
        actually move.
        """
        raise_mv: Optional[int] = None
        if self.control_voltage and plan.voltage_mv is not None:
            raise_mv = self._transitional_mv(state, plan)
        return Action(
            raise_voltage_mv=raise_mv,
            migrations=dict(plan.assignments),
            pmd_freqs_hz=dict(plan.pmd_freqs_hz),
            voltage_mv=plan.voltage_mv if self.control_voltage else None,
        )

    def apply(self, system: ServerSystem, plan: PlacementPlan) -> None:
        """Apply a plan with the raise-voltage-first fail-safe protocol."""
        apply_action(system, self.action_for(plan, system.chip.state()))

    def arrival_raise_mv(
        self, state: ChipState, nthreads: int
    ) -> Optional[int]:
        """Fail-safe rail level before a new process is invoked (Fig. 13).

        The new process will add at most ``nthreads`` cores' worth of
        PMDs; the returned level bounds the worst configuration the
        arrival could create (``None`` when the engine does not control
        the rail). The raise actuation only ever moves the rail up, so
        callers may request the level unconditionally.
        """
        if not self.control_voltage:
            return None
        worst_pmds = min(
            self.spec.n_pmds, len(state.active_pmds) + nthreads
        )
        return self.policy.safe_voltage_mv(
            worst_pmds,
            max(state.max_active_frequency(), self.cpu_freq_hz),
        )

    def raise_for_arrival(self, system: ServerSystem, nthreads: int) -> None:
        """Actuate :meth:`arrival_raise_mv` against the live system."""
        required = self.arrival_raise_mv(system.chip.state(), nthreads)
        if required is not None:
            apply_action(system, Action(raise_voltage_mv=required))
