"""The four evaluation configurations of Section VI.B.

* **baseline** — default machine: spread scheduler, ``ondemand``
  governor, nominal voltage;
* **safe_vmin** — baseline plus the rail trimmed to the characterized
  safe Vmin of the moment (guardband exposure only);
* **placement** — the daemon drives core allocation and per-PMD clocks,
  rail pinned at nominal (placement value only);
* **optimal** — the full daemon: placement, clocks and voltage.

The names are aliases into the policy registry
(:mod:`repro.policies.registry`); any registry key is accepted wherever
a configuration name is, so ``run_configuration(..., "ed2p")`` works the
same way the four paper configurations do.

:func:`run_evaluation` replays one generated workload under all four and
summarises them the way the paper's Tables III and IV do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..platform.chip import Chip
from ..platform.specs import ChipSpec, get_spec
from ..policies.registry import resolve_policy
from ..policies.surfaces import Policy
from ..power.energy import penalty_percent, savings_percent
from ..sim.system import ServerSystem, SystemResult
from ..workloads.generator import ServerWorkloadGenerator, Workload
from .policy import VminPolicyTable

#: Configuration names in the paper's table order.
CONFIG_NAMES: Tuple[str, ...] = (
    "baseline", "safe_vmin", "placement", "optimal"
)

#: Paper configuration name -> policy registry key.
CONFIG_POLICY_KEYS: Dict[str, str] = {
    "baseline": "baseline-ondemand",
    "safe_vmin": "safe-vmin",
    "placement": "daemon-placement",
    "optimal": "daemon",
}


def make_policy(
    spec: ChipSpec,
    config: str,
    policy: Optional[VminPolicyTable] = None,
) -> Policy:
    """Resolve the policy implementing one named configuration.

    ``config`` is a paper configuration name (``baseline`` /
    ``safe_vmin`` / ``placement`` / ``optimal``) or any policy registry
    key. ``policy`` optionally shares a prebuilt safe-Vmin table.
    """
    key = CONFIG_POLICY_KEYS.get(config, config)
    return resolve_policy(key, spec, table=policy)


def run_configuration(
    platform: str,
    workload: Workload,
    config: str,
    silicon_seed: int = 0,
    policy: Optional[VminPolicyTable] = None,
    trace_period_s: Optional[float] = 1.0,
    fault_policy: str = "record",
) -> SystemResult:
    """Replay one workload under one configuration on a fresh chip."""
    spec = get_spec(platform)
    chip = Chip(spec, silicon_seed=silicon_seed)
    system = ServerSystem(
        chip,
        workload,
        policy=make_policy(spec, config, policy=policy),
        trace_period_s=trace_period_s,
        fault_policy=fault_policy,
    )
    return system.run()


@dataclass(frozen=True)
class ConfigurationRow:
    """One column of Tables III/IV."""

    config: str
    time_s: float
    average_power_w: float
    energy_j: float
    energy_savings_pct: float
    ed2p: float
    ed2p_savings_pct: float
    time_penalty_pct: float
    violations: int


@dataclass
class EvaluationResult:
    """All four configurations on one workload (one paper table)."""

    platform: str
    workload: Workload
    results: Dict[str, SystemResult]

    def row(self, config: str) -> ConfigurationRow:
        """Summary row for one configuration, relative to the baseline."""
        if config not in self.results:
            raise ConfigurationError(f"no result for {config!r}")
        base = self.results["baseline"]
        res = self.results[config]
        return ConfigurationRow(
            config=config,
            time_s=res.makespan_s,
            average_power_w=res.average_power_w,
            energy_j=res.energy_j,
            energy_savings_pct=savings_percent(base.energy_j, res.energy_j),
            ed2p=res.ed2p,
            ed2p_savings_pct=savings_percent(base.ed2p, res.ed2p),
            time_penalty_pct=penalty_percent(
                base.makespan_s, res.makespan_s
            ),
            violations=len(res.violations),
        )

    def rows(self) -> List[ConfigurationRow]:
        """All rows: the paper's column order, then extra policy keys."""
        ordered = [c for c in CONFIG_NAMES if c in self.results]
        ordered += [c for c in self.results if c not in CONFIG_NAMES]
        return [self.row(c) for c in ordered]


def run_evaluation(
    platform: str,
    duration_s: float = 3600.0,
    seed: int = 0,
    silicon_seed: int = 0,
    configs: Sequence[str] = CONFIG_NAMES,
    trace_period_s: Optional[float] = 1.0,
    workload: Optional[Workload] = None,
) -> EvaluationResult:
    """Generate one workload and replay it under several configurations.

    This regenerates the paper's Tables III (X-Gene 2) and IV (X-Gene 3):
    one random server workload per machine, executed under every
    configuration with identical job arrivals.
    """
    spec = get_spec(platform)
    if workload is None:
        generator = ServerWorkloadGenerator(max_cores=spec.n_cores, seed=seed)
        workload = generator.generate(duration_s)
    if "baseline" not in configs:
        raise ConfigurationError(
            "the evaluation needs the baseline for relative savings"
        )
    policy = VminPolicyTable.from_characterization(spec)
    results = {
        config: run_configuration(
            platform,
            workload,
            config,
            silicon_seed=silicon_seed,
            policy=policy,
            trace_period_s=trace_period_s,
        )
        for config in configs
    }
    return EvaluationResult(
        platform=spec.name, workload=workload, results=results
    )
