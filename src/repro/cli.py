"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro list
    repro table1
    repro fig7 --platform xgene2
    repro table3 --duration 600 --seed 7
    repro all --duration 600

Each experiment prints the same rows/series the paper reports.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .experiments import (
    fig13_flow,
    fig3_vmin_characterization,
    fig4_core_variation,
    fig5_pfail,
    fig6_droops,
    fig7_allocation_energy,
    fig8_contention,
    fig9_l3c_rates,
    fig10_factors,
    fig11_energy,
    fig12_ed2p,
    fig14_power_timeline,
    fig15_load_timeline,
    report,
    table1,
    table2,
    tables34,
    thermal_study,
    variation_study,
)


def _show_table1(args: argparse.Namespace) -> None:
    print(table1.run().format())


def _show_fig3(args: argparse.Namespace) -> None:
    print(fig3_vmin_characterization.run(args.platform).format())


def _show_fig4(args: argparse.Namespace) -> None:
    result = fig4_core_variation.run(args.platform)
    print(result.format())
    print(f"\ncore-to-core spread: {result.core_to_core_spread_mv():.0f} mV")
    print(f"workload spread:     {result.workload_spread_mv():.0f} mV")
    print(f"most robust PMD:     PMD{result.most_robust_pmd()}")


def _show_fig5(args: argparse.Namespace) -> None:
    print(fig5_pfail.run(args.platform).format())


def _show_fig6(args: argparse.Namespace) -> None:
    print(fig6_droops.run(args.platform).format())


def _show_fig7(args: argparse.Namespace) -> None:
    result = fig7_allocation_energy.run(args.platform)
    print(result.format())
    low, high = result.span()
    print(f"\nspan: {low:.1f}% .. {high:+.1f}% (paper: -9.6% .. +14.2%)")


def _show_fig8(args: argparse.Namespace) -> None:
    print(fig8_contention.run(args.platform).format())


def _show_fig9(args: argparse.Namespace) -> None:
    result = fig9_l3c_rates.run(args.platform)
    print(result.format())
    print("\nmemory-intensive:", ", ".join(result.memory_intensive_set()))


def _show_fig10(args: argparse.Namespace) -> None:
    print(fig10_factors.run(args.platform).format())


def _show_fig11(args: argparse.Namespace) -> None:
    print(fig11_energy.run(args.platform).format())


def _show_fig12(args: argparse.Namespace) -> None:
    print(fig12_ed2p.run(args.platform).format())


def _show_table2(args: argparse.Namespace) -> None:
    print(table2.run(args.platform).format())


def _show_fig13(args: argparse.Namespace) -> None:
    result = fig13_flow.run(args.platform)
    print(result.format())
    print(f"\nviolations: {result.violations}")


def _show_fig14(args: argparse.Namespace) -> None:
    result = fig14_power_timeline.run(
        args.platform, duration_s=args.duration, seed=args.seed
    )
    print(result.format())
    base, opt = result.average_power()
    print(
        f"\naverage power: baseline {base:.2f} W, optimal {opt:.2f} W"
    )


def _show_fig15(args: argparse.Namespace) -> None:
    result = fig15_load_timeline.run(
        args.platform, duration_s=args.duration, seed=args.seed
    )
    print(result.format())


def _show_table3(args: argparse.Namespace) -> None:
    print(
        tables34.run(
            "xgene2", duration_s=args.duration, seed=args.seed
        ).format()
    )


def _show_report(args: argparse.Namespace) -> None:
    print(report.generate(duration_s=args.duration, seed=args.seed))


def _show_thermal(args: argparse.Namespace) -> None:
    result = thermal_study.run(args.platform, duration_s=args.duration)
    print(result.format())


def _show_variation(args: argparse.Namespace) -> None:
    result = variation_study.run(
        args.platform, duration_s=args.duration, seeds=range(4)
    )
    print(result.format())
    print(
        f"\nfull-chip spread {result.full_chip_spread_mv():.0f} mV; "
        f"golden-die table unsafe on "
        f"{result.foreign_table_unsafe_chips()} dies"
    )


def _show_table4(args: argparse.Namespace) -> None:
    print(
        tables34.run(
            "xgene3", duration_s=args.duration, seed=args.seed
        ).format()
    )


COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    "table1": _show_table1,
    "fig3": _show_fig3,
    "fig4": _show_fig4,
    "fig5": _show_fig5,
    "fig6": _show_fig6,
    "fig7": _show_fig7,
    "fig8": _show_fig8,
    "fig9": _show_fig9,
    "fig10": _show_fig10,
    "fig11": _show_fig11,
    "fig12": _show_fig12,
    "table2": _show_table2,
    "fig13": _show_fig13,
    "fig14": _show_fig14,
    "fig15": _show_fig15,
    "table3": _show_table3,
    "table4": _show_table4,
    "variation": _show_variation,
    "thermal": _show_thermal,
    "report": _show_report,
}

#: Default platform per experiment, where the paper fixes one.
DEFAULT_PLATFORM: Dict[str, str] = {
    "fig3": "xgene2",
    "fig4": "xgene2",
    "fig5": "xgene3",
    "fig6": "xgene3",
    "fig7": "xgene2",
    "fig8": "xgene3",
    "fig9": "xgene3",
    "fig10": "xgene2",
    "fig11": "xgene2",
    "fig12": "xgene2",
    "table2": "xgene3",
    "fig13": "xgene2",
    "fig14": "xgene3",
    "fig15": "xgene3",
    "variation": "xgene2",
    "thermal": "xgene3",
}


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the HPCA'19 DVFS paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "list"],
        help="experiment to regenerate ('list' shows the catalogue)",
    )
    parser.add_argument(
        "--platform",
        choices=("xgene2", "xgene3"),
        default=None,
        help="platform override (default: the paper's platform)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="workload duration in seconds for evaluation runs",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for name in sorted(COMMANDS):
            print(name)
        return 0
    names = sorted(COMMANDS) if args.experiment == "all" else [
        args.experiment
    ]
    for name in names:
        if args.platform is None:
            args.platform = DEFAULT_PLATFORM.get(name, "xgene2")
        print(f"== {name} ==")
        COMMANDS[name](args)
        print()
        if args.experiment == "all":
            args.platform = None
    return 0


if __name__ == "__main__":
    sys.exit(main())
