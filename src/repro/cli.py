"""Command-line interface: regenerate any paper table or figure.

Usage::

    repro list
    repro table1
    repro fig7 --platform xgene2
    repro table3 --duration 600 --seed 7
    repro all --duration 600
    repro run-all --jobs 4 --cache-dir ~/.cache/repro-vmin
    repro run-all --summary-json manifest.json
    repro run-all --platform xgene3-xl
    repro run-all --policy ed2p --platform xgene3-xl
    repro telemetry check manifest.json --min-hit-rate 0.5
    repro platform list
    repro platform validate
    repro policy list
    repro policy compare ed2p daemon --platform xgene2

Each experiment prints the same rows/series the paper reports.
``run-all`` fans the whole registry out over a process pool with
memoized Vmin characterization: experiment output goes to stdout (in
canonical registry order, byte-identical for any ``--jobs`` value) and
the per-experiment timing/cache-hit summary table goes to stderr.
``--summary-json PATH`` additionally collects telemetry and writes the
run manifest there; the ``repro telemetry`` subcommand family
(``dump``/``summarize``/``diff``/``check``) inspects and gates those
manifests (see :mod:`repro.telemetry.cli`). The ``repro platform``
family (``list``/``show``/``validate``) inspects the declarative
platform registry (see :mod:`repro.platform.cli`); ``--platform``
accepts any registered key, including platforms defined purely as spec
files. The ``repro policy`` family (``list``/``show``/``compare``)
inspects the policy registry (see :mod:`repro.policies.cli`);
``--policy`` threads a registry key through every policy-aware
experiment (the default, ``None``, reproduces the paper byte-for-byte).
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .errors import ConfigurationError
from .experiments import orchestrator
from .experiments.registry import REGISTRY, experiment_names


def _make_command(name: str) -> Callable[[argparse.Namespace], None]:
    def show(args: argparse.Namespace) -> None:
        print(
            orchestrator.render_experiment(
                name,
                platform=args.platform,
                duration_s=args.duration,
                seed=args.seed,
                cache_dir=args.cache_dir,
                policy=args.policy,
            )
        )

    return show


#: One CLI command per registry entry (kept for back-compatibility with
#: the pre-orchestrator interface).
COMMANDS: Dict[str, Callable[[argparse.Namespace], None]] = {
    entry.name: _make_command(entry.name) for entry in REGISTRY
}

#: Default platform per experiment, where the paper fixes one.
DEFAULT_PLATFORM: Dict[str, str] = {
    entry.name: entry.default_platform
    for entry in REGISTRY
    if entry.default_platform is not None
}


def _platform_choices() -> List[str]:
    """Every resolvable platform: registry keys plus legacy factories."""
    from .platform.registry import platform_keys
    from .platform.specs import PLATFORMS

    return sorted(set(platform_keys()) | set(PLATFORMS))


def _policy_choices() -> List[str]:
    """Every resolvable policy: registry keys plus the paper aliases."""
    from .core.configurations import CONFIG_POLICY_KEYS
    from .policies.registry import policy_keys

    return sorted(set(policy_keys()) | set(CONFIG_POLICY_KEYS))


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of the HPCA'19 DVFS paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(COMMANDS) + ["all", "list", "run-all"],
        help="experiment to regenerate ('list' shows the catalogue, "
        "'run-all' batches the registry through the orchestrator)",
    )
    parser.add_argument(
        "--platform",
        choices=_platform_choices(),
        default=None,
        help="platform override (default: the paper's platform)",
    )
    parser.add_argument(
        "--policy",
        choices=_policy_choices(),
        default=None,
        help="policy registry key threaded through the policy-aware "
        "experiments (default: the paper's own configurations)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="workload duration in seconds for evaluation runs",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    parser.add_argument(
        "--jobs",
        type=_positive_int,
        default=1,
        metavar="N",
        help="worker processes for 'run-all' (default: 1)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="PATH",
        help="on-disk Vmin characterization cache shared across "
        "processes and invocations (default: in-memory only)",
    )
    parser.add_argument(
        "--summary-json",
        default=None,
        metavar="PATH",
        help="for 'run-all'/'all': collect telemetry and write the run "
        "manifest (schema-validated JSON) to PATH",
    )
    return parser


def _run_all(args: argparse.Namespace, names: List[str]) -> int:
    """Orchestrated batch: output on stdout, summary table on stderr."""
    summary_json = getattr(args, "summary_json", None)
    summary = orchestrator.run_experiments(
        names=names,
        jobs=args.jobs,
        platform=args.platform,
        duration_s=args.duration,
        seed=args.seed,
        cache_dir=args.cache_dir,
        collect_telemetry=summary_json is not None,
        policy=args.policy,
    )
    sys.stdout.write(summary.merged_output())
    sys.stdout.flush()
    print(summary.format_table(), file=sys.stderr)
    if summary_json is not None:
        from . import telemetry

        manifest = telemetry.build_manifest(
            summary,
            platform=args.platform,
            duration_s=args.duration,
            seed=args.seed,
            cache_dir=args.cache_dir,
        )
        errors = telemetry.validate_manifest(manifest)
        if errors:  # pragma: no cover - guards schema drift
            for error in errors:
                print(f"repro: manifest invalid: {error}", file=sys.stderr)
            return 1
        telemetry.write_manifest(manifest, summary_json)
        print(f"run manifest written to {summary_json}", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "telemetry":
        # Manifest tooling has its own subcommand tree; dispatch before
        # the experiment parser so its choices stay experiment-shaped.
        from .telemetry.cli import telemetry_main

        return telemetry_main(argv[1:])
    if argv and argv[0] == "platform":
        # Registry tooling, same pattern as the telemetry family.
        from .platform.cli import platform_main

        return platform_main(argv[1:])
    if argv and argv[0] == "policy":
        # Control-plane registry tooling, same pattern.
        from .policies.cli import policy_main

        return policy_main(argv[1:])
    args = build_parser().parse_args(argv)
    try:
        if args.experiment == "list":
            for name in sorted(COMMANDS):
                print(name)
            return 0
        if args.experiment == "run-all":
            return _run_all(args, list(experiment_names()))
        if args.experiment == "all":
            # Historical interface: sequential batch in alphabetical
            # order.
            return _run_all(args, sorted(COMMANDS))
        print(f"== {args.experiment} ==")
        COMMANDS[args.experiment](args)
        print()
        return 0
    except ConfigurationError as exc:
        print(f"repro: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
