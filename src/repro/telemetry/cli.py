"""``repro telemetry`` — inspect and gate run manifests.

Subcommands::

    repro telemetry dump PATH          # canonical JSON (timing-stripped
                                       # deterministic subset on request)
    repro telemetry summarize PATH     # terse human summary
    repro telemetry diff LEFT RIGHT    # field-level differences
    repro telemetry check PATH         # schema + policy gate (CI)

``check`` is the machine entry point: it validates the manifest against
its versioned schema and optionally enforces policy floors such as
``--min-hit-rate``, exiting non-zero on any violation so CI jobs can
gate on structured data instead of scraping logs.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .manifest import (
    canonical_json,
    diff_manifests,
    hit_rate_of,
    load_manifest,
    strip_timing_fields,
    summarize_manifest,
    validate_manifest,
)


def build_telemetry_parser() -> argparse.ArgumentParser:
    """The ``repro telemetry`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro telemetry",
        description="Inspect and gate run manifests "
        "(written by 'repro run-all --summary-json PATH').",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    dump = sub.add_parser(
        "dump", help="print a manifest as canonical JSON"
    )
    dump.add_argument("manifest", help="manifest file path")
    dump.add_argument(
        "--strip-timing",
        action="store_true",
        help="drop wall-clock fields (the deterministic subset)",
    )

    summarize = sub.add_parser(
        "summarize", help="terse human summary of a manifest"
    )
    summarize.add_argument("manifest", help="manifest file path")

    diff = sub.add_parser(
        "diff", help="field-level differences between two manifests"
    )
    diff.add_argument("left", help="baseline manifest path")
    diff.add_argument("right", help="candidate manifest path")
    diff.add_argument(
        "--include-timing",
        action="store_true",
        help="also compare wall-clock fields (differ on every run)",
    )

    check = sub.add_parser(
        "check", help="validate schema and enforce policy floors"
    )
    check.add_argument("manifest", help="manifest file path")
    check.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        metavar="RATE",
        help="fail unless the total cache hit rate is >= RATE (0..1)",
    )
    check.add_argument(
        "--expect-experiments",
        type=int,
        default=None,
        metavar="N",
        help="fail unless the manifest covers exactly N experiments",
    )
    return parser


def _cmd_dump(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    if args.strip_timing:
        manifest = strip_timing_fields(manifest)
    print(canonical_json(manifest))
    return 0


def _cmd_summarize(args: argparse.Namespace) -> int:
    print(summarize_manifest(load_manifest(args.manifest)))
    return 0


def _cmd_diff(args: argparse.Namespace) -> int:
    lines = diff_manifests(
        load_manifest(args.left),
        load_manifest(args.right),
        ignore_timing=not args.include_timing,
    )
    for line in lines:
        print(line)
    if lines:
        print(f"{len(lines)} difference(s)", file=sys.stderr)
        return 1
    print("manifests identical", file=sys.stderr)
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    manifest = load_manifest(args.manifest)
    problems = [
        f"schema: {error}" for error in validate_manifest(manifest)
    ]
    if not problems:
        if args.min_hit_rate is not None:
            rate = hit_rate_of(manifest)
            if rate < args.min_hit_rate:
                problems.append(
                    f"policy: cache hit rate {rate:.3f} below "
                    f"required minimum {args.min_hit_rate:.3f}"
                )
        if args.expect_experiments is not None:
            count = manifest.get("totals", {}).get("experiments")
            if count != args.expect_experiments:
                problems.append(
                    f"policy: manifest covers {count} experiment(s), "
                    f"expected {args.expect_experiments}"
                )
    if problems:
        for problem in problems:
            print(f"check failed: {problem}", file=sys.stderr)
        return 1
    print(f"{args.manifest}: manifest OK", file=sys.stderr)
    return 0


_DISPATCH = {
    "dump": _cmd_dump,
    "summarize": _cmd_summarize,
    "diff": _cmd_diff,
    "check": _cmd_check,
}


def telemetry_main(argv: Optional[List[str]] = None) -> int:
    """Entry point for the ``repro telemetry`` subcommand family."""
    args = build_telemetry_parser().parse_args(argv)
    try:
        return _DISPATCH[args.command](args)
    except (OSError, ValueError) as exc:
        print(f"repro telemetry: error: {exc}", file=sys.stderr)
        return 2
