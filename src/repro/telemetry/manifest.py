"""Run manifests: measurement provenance of one orchestrated batch.

Every ``repro run-all --summary-json PATH`` emits one **manifest** — a
versioned JSON document recording where the results came from (git
revision, interpreter, platform), what was asked for (config +
fingerprint), what happened (per-experiment timings, output digests,
cache counters, metric snapshots) and the aggregate totals CI gates on.

Two invariants make manifests machine-checkable:

* the document validates against a **versioned schema**
  (:func:`validate_manifest`, stdlib-only checker — no jsonschema
  dependency);
* the **fingerprint** is computed over the deterministic subset only:
  timing fields (``elapsed_s``, span trees, …) and the environment
  block are stripped first, so two same-seed runs produce the same
  fingerprint even though their wall-clock numbers differ.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import subprocess
import sys
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple

from .metrics import Snapshot, merge_snapshots

#: Current manifest schema version (bump on structural change).
MANIFEST_SCHEMA_VERSION = 1

#: Document type tag, so a manifest is self-describing on disk.
MANIFEST_KIND = "repro.run_manifest"

#: Keys holding wall-clock-derived values, stripped before
#: fingerprinting and before determinism comparisons. ``spans`` drops
#: the whole span subtree of a metric snapshot.
TIMING_KEYS = frozenset(
    {"elapsed_s", "serial_time_s", "total_s", "max_s", "spans"}
)

#: Top-level keys excluded from the fingerprint besides timing: the
#: fingerprint itself and the host-specific provenance block.
FINGERPRINT_EXCLUDED_TOP_KEYS = frozenset({"fingerprint", "environment"})


def canonical_json(payload: Any) -> str:
    """Canonical (sorted, compact) JSON for hashing and byte-compares."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def strip_timing_fields(payload: Any) -> Any:
    """Recursive copy of ``payload`` without any timing-valued keys."""
    if isinstance(payload, dict):
        return {
            key: strip_timing_fields(value)
            for key, value in payload.items()
            if key not in TIMING_KEYS
        }
    if isinstance(payload, list):
        return [strip_timing_fields(item) for item in payload]
    return payload


def manifest_fingerprint(manifest: Mapping[str, Any]) -> str:
    """Digest over the deterministic subset of a manifest.

    Same seed + same config + same code ⇒ same fingerprint, regardless
    of how long the run took or which host ran it.
    """
    payload = {
        key: value
        for key, value in manifest.items()
        if key not in FINGERPRINT_EXCLUDED_TOP_KEYS
    }
    return hashlib.sha256(
        canonical_json(strip_timing_fields(payload)).encode("utf-8")
    ).hexdigest()


def _git_rev() -> str:
    """Current git revision; ``REPRO_GIT_REV`` overrides (CI), else
    best-effort ``git rev-parse`` with ``"unknown"`` as the fallback."""
    override = os.environ.get("REPRO_GIT_REV")
    if override:
        return override
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip() or "unknown"


def _cache_dict(stats: Any) -> Dict[str, Any]:
    """JSON form of a :class:`repro.vmin.cache.CacheStats`."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "stores": stats.stores,
        "evictions": stats.evictions,
        "disk_hits": stats.disk_hits,
        "corrupt_discarded": stats.corrupt_discarded,
        "hit_rate": stats.hit_rate,
    }


def build_manifest(
    summary: Any,
    *,
    platform: Optional[str],
    duration_s: float,
    seed: int,
    cache_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Assemble the manifest of one orchestrated :class:`RunSummary`.

    ``summary`` is duck-typed (``jobs``, ``elapsed_s``, ``outcomes``
    with ``name``/``artefact``/``output``/``elapsed_s``/``cache`` and
    optional ``metrics``, plus ``cache_totals``/``serial_time_s`` and an
    optional run-level ``metrics`` snapshot) so this module stays free
    of intra-package imports.
    """
    experiments: List[Dict[str, Any]] = []
    per_experiment_metrics: List[Snapshot] = []
    for outcome in summary.outcomes:
        metrics = getattr(outcome, "metrics", None)
        if metrics is not None:
            per_experiment_metrics.append(metrics)
        output = outcome.output.encode("utf-8")
        experiments.append(
            {
                "name": outcome.name,
                "artefact": outcome.artefact,
                "elapsed_s": outcome.elapsed_s,
                "output_sha256": hashlib.sha256(output).hexdigest(),
                "output_bytes": len(output),
                "cache": _cache_dict(outcome.cache),
                "metrics": metrics,
            }
        )
    run_metrics = getattr(summary, "metrics", None)
    merged = merge_snapshots(
        per_experiment_metrics + ([run_metrics] if run_metrics else [])
    )
    totals = summary.cache_totals
    config = {
        "platform": platform,
        "duration_s": float(duration_s),
        "seed": int(seed),
        "jobs": int(summary.jobs),
        "disk_cache": cache_dir is not None,
        "experiments": [outcome.name for outcome in summary.outcomes],
    }
    manifest: Dict[str, Any] = {
        "schema_version": MANIFEST_SCHEMA_VERSION,
        "kind": MANIFEST_KIND,
        "environment": {
            "git_rev": _git_rev(),
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "machine": _platform.machine(),
        },
        "config": config,
        "config_fingerprint": hashlib.sha256(
            canonical_json(config).encode("utf-8")
        ).hexdigest(),
        "experiments": experiments,
        "totals": {
            "experiments": len(experiments),
            "elapsed_s": summary.elapsed_s,
            "serial_time_s": summary.serial_time_s,
            "cache": _cache_dict(totals),
        },
        "metrics": merged,
    }
    manifest["fingerprint"] = manifest_fingerprint(manifest)
    return manifest


# -- schema validation ---------------------------------------------------------

#: Cache-counter block shared by experiments and totals.
_CACHE_SPEC: Dict[str, Any] = {
    "hits": int,
    "misses": int,
    "stores": int,
    "evictions": int,
    "disk_hits": int,
    "corrupt_discarded": int,
    "hit_rate": float,
}

_SCHEMAS: Dict[int, Dict[str, Any]] = {
    1: {
        "schema_version": int,
        "kind": str,
        "environment": {
            "git_rev": str,
            "python": str,
            "platform": str,
            "machine": str,
        },
        "config": {
            "platform": (str, type(None)),
            "duration_s": float,
            "seed": int,
            "jobs": int,
            "disk_cache": bool,
            "experiments": [str],
        },
        "config_fingerprint": str,
        "experiments": [
            {
                "name": str,
                "artefact": str,
                "elapsed_s": float,
                "output_sha256": str,
                "output_bytes": int,
                "cache": _CACHE_SPEC,
                "metrics": (dict, type(None)),
            }
        ],
        "totals": {
            "experiments": int,
            "elapsed_s": float,
            "serial_time_s": float,
            "cache": _CACHE_SPEC,
        },
        "metrics": dict,
        "fingerprint": str,
    }
}


def _check(value: Any, spec: Any, path: str, errors: List[str]) -> None:
    """Recursive structural check of ``value`` against ``spec``.

    Specs are plain literals: a ``dict`` requires exactly its keys (no
    extras, none missing) and recurses; a one-element ``list`` requires
    a list of conforming items; a type or tuple of types requires an
    instance (``float`` accepts ``int``; ``bool`` never satisfies an
    ``int``/``float`` spec).
    """
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            errors.append(f"{path}: expected object, got {type(value).__name__}")
            return
        for key in spec:
            if key not in value:
                errors.append(f"{path}.{key}: missing required key")
        for key in value:
            if key not in spec:
                errors.append(f"{path}.{key}: unexpected key")
        for key, sub in spec.items():
            if key in value:
                _check(value[key], sub, f"{path}.{key}", errors)
        return
    if isinstance(spec, list):
        if not isinstance(value, list):
            errors.append(f"{path}: expected array, got {type(value).__name__}")
            return
        for index, item in enumerate(value):
            _check(item, spec[0], f"{path}[{index}]", errors)
        return
    types: Tuple[type, ...] = spec if isinstance(spec, tuple) else (spec,)
    if float in types and bool not in types:
        types = types + (int,)
    if isinstance(value, bool) and bool not in types:
        errors.append(f"{path}: expected {_spec_name(spec)}, got bool")
        return
    if not isinstance(value, types):
        errors.append(
            f"{path}: expected {_spec_name(spec)}, "
            f"got {type(value).__name__}"
        )


def _spec_name(spec: Any) -> str:
    if isinstance(spec, tuple):
        return "|".join(t.__name__ for t in spec)
    return spec.__name__


def validate_manifest(payload: Any) -> List[str]:
    """Schema errors of ``payload`` (empty list ⇔ valid manifest)."""
    if not isinstance(payload, dict):
        return [f"$: expected object, got {type(payload).__name__}"]
    version = payload.get("schema_version")
    if not isinstance(version, int) or isinstance(version, bool):
        return ["$.schema_version: missing or not an integer"]
    schema = _SCHEMAS.get(version)
    if schema is None:
        known = ", ".join(str(v) for v in sorted(_SCHEMAS))
        return [
            f"$.schema_version: unknown version {version} (known: {known})"
        ]
    errors: List[str] = []
    _check(payload, schema, "$", errors)
    if not errors and payload["kind"] != MANIFEST_KIND:
        errors.append(
            f"$.kind: expected {MANIFEST_KIND!r}, got {payload['kind']!r}"
        )
    return errors


# -- diff / summarize ----------------------------------------------------------


def _flatten(payload: Any, path: str, into: Dict[str, Any]) -> None:
    if isinstance(payload, dict):
        for key in sorted(payload):
            _flatten(payload[key], f"{path}.{key}", into)
    elif isinstance(payload, list):
        for index, item in enumerate(payload):
            _flatten(item, f"{path}[{index}]", into)
    else:
        into[path] = payload


def diff_manifests(
    left: Mapping[str, Any],
    right: Mapping[str, Any],
    ignore_timing: bool = True,
) -> List[str]:
    """Human-readable differences between two manifests.

    With ``ignore_timing`` (the default) wall-clock fields are stripped
    first, so two same-seed runs diff empty — the property the
    determinism suite pins.
    """
    a: Dict[str, Any] = {}
    b: Dict[str, Any] = {}
    left_p = strip_timing_fields(dict(left)) if ignore_timing else dict(left)
    right_p = (
        strip_timing_fields(dict(right)) if ignore_timing else dict(right)
    )
    _flatten(left_p, "$", a)
    _flatten(right_p, "$", b)
    lines: List[str] = []
    for path in sorted(set(a) | set(b)):
        if path not in b:
            lines.append(f"- {path} = {a[path]!r}")
        elif path not in a:
            lines.append(f"+ {path} = {b[path]!r}")
        elif a[path] != b[path]:
            lines.append(f"~ {path}: {a[path]!r} -> {b[path]!r}")
    return lines


def summarize_manifest(manifest: Mapping[str, Any]) -> str:
    """Terse human summary (the ``repro telemetry summarize`` output)."""
    config = manifest.get("config", {})
    totals = manifest.get("totals", {})
    cache = totals.get("cache", {})
    lines = [
        f"run manifest (schema v{manifest.get('schema_version')})",
        f"  fingerprint : {manifest.get('fingerprint', '')[:16]}",
        f"  git rev     : {manifest.get('environment', {}).get('git_rev')}",
        f"  config      : platform={config.get('platform')} "
        f"seed={config.get('seed')} duration_s={config.get('duration_s')} "
        f"jobs={config.get('jobs')} disk_cache={config.get('disk_cache')}",
        f"  experiments : {totals.get('experiments')} in "
        f"{totals.get('elapsed_s', 0.0):.2f}s wall "
        f"({totals.get('serial_time_s', 0.0):.2f}s serial)",
        f"  cache       : {cache.get('hits', 0)} hits / "
        f"{cache.get('misses', 0)} misses "
        f"({100.0 * cache.get('hit_rate', 0.0):.0f}% hit rate)",
    ]
    for entry in manifest.get("experiments", []):
        entry_cache = entry.get("cache", {})
        lines.append(
            f"    {entry.get('name', '?'):<10} "
            f"{entry.get('elapsed_s', 0.0):7.2f}s  "
            f"cache {entry_cache.get('hits', 0)}/"
            f"{entry_cache.get('hits', 0) + entry_cache.get('misses', 0)}  "
            f"sha {entry.get('output_sha256', '')[:12]}"
        )
    return "\n".join(lines)


def load_manifest(path: str) -> Dict[str, Any]:
    """Read and JSON-parse a manifest file (no validation)."""
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise ValueError(f"{path}: manifest root must be a JSON object")
    return payload


def write_manifest(manifest: Mapping[str, Any], path: str) -> None:
    """Write a manifest as stable, diff-friendly JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2, sort_keys=True)
        handle.write("\n")


def hit_rate_of(manifest: Mapping[str, Any]) -> float:
    """Total characterization-cache hit rate recorded in a manifest."""
    rate = manifest.get("totals", {}).get("cache", {}).get("hit_rate", 0.0)
    return float(rate)


def iter_experiment_names(
    manifest: Mapping[str, Any]
) -> Iterable[str]:
    """Names of the experiments a manifest covers, in merge order."""
    for entry in manifest.get("experiments", []):
        yield str(entry.get("name"))
