"""Process-local metric registry with a no-op fast path.

The registry is **disabled by default**: every module-level helper
checks one boolean before touching any state, so instrumented hot paths
(cache lookups, kernel batch evaluation, the simulator event loop) pay
a single attribute load + branch when telemetry is off. Enabling is
explicit — the orchestrator does it around a manifest-collecting run,
tests do it through :func:`session`.

Four metric kinds:

* **counters** — monotonically increasing integers (events seen);
* **gauges** — last-written floats (bytes on disk, queue length);
* **histograms** — deterministic aggregate of a value distribution
  (count / sum / min / max), e.g. kernel batch sizes;
* **spans** — nested wall-clock timings. Spans are the *only* kind
  allowed to carry nondeterministic values; manifest fingerprints drop
  them (see :mod:`repro.telemetry.manifest`).

Metric names must be the ``dot.scoped`` literals declared in
:mod:`repro.telemetry.names` (enforced statically by reprolint RL006).
Everything here is stdlib-only and imports nothing from the rest of the
package, so any layer may instrument itself without import cycles.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterable, Iterator, List, Optional

from . import names as _names

#: Snapshot payload: plain JSON-representable nested dicts.
Snapshot = Dict[str, Any]

#: Separator joining nested span names into one aggregation path.
SPAN_PATH_SEP = "/"


def declared_names() -> Dict[str, str]:
    """``CONSTANT -> value`` for every name in the central registry."""
    return {
        key: value
        for key, value in sorted(vars(_names).items())
        if key.isupper() and isinstance(value, str)
    }


class _Histogram:
    """Deterministic aggregate of observed values."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }


class _SpanStats:
    """Aggregated wall-clock timings of one span path."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, elapsed_s: float) -> None:
        self.count += 1
        self.total_s += elapsed_s
        if elapsed_s > self.max_s:
            self.max_s = elapsed_s

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "max_s": self.max_s,
        }


class MetricsRegistry:
    """One process-local set of counters/gauges/histograms/spans.

    Instances are cheap; the module-level helpers route to the current
    process default (swappable with :func:`session` /
    :func:`set_registry`). The registry is not thread-safe by design —
    the instrumented layers are single-threaded per process, and the
    orchestrator gives every worker process its own registry.
    """

    __slots__ = ("enabled", "_counters", "_gauges", "_histograms",
                 "_spans", "_span_stack")

    def __init__(self, enabled: bool = False) -> None:
        self.enabled = enabled
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}
        self._histograms: Dict[str, _Histogram] = {}
        self._spans: Dict[str, _SpanStats] = {}
        self._span_stack: List[str] = []

    # -- write API ------------------------------------------------------------

    def inc(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name``."""
        self._counters[name] = self._counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = _Histogram()
        hist.observe(float(value))

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time a block; nested spans aggregate under a ``/`` path."""
        self._span_stack.append(name)
        path = SPAN_PATH_SEP.join(self._span_stack)
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self._span_stack.pop()
            stats = self._spans.get(path)
            if stats is None:
                stats = self._spans[path] = _SpanStats()
            stats.record(elapsed)

    # -- read API -------------------------------------------------------------

    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never written)."""
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of gauge ``name``, or ``None``."""
        return self._gauges.get(name)

    def snapshot(self) -> Snapshot:
        """JSON-representable copy of every metric, sorted by name.

        The ``spans`` subtree is the only nondeterministic part; the
        manifest fingerprint strips it (plus any ``*_s`` timing keys).
        """
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self._histograms.items())
            },
            "spans": {
                path: stats.as_dict()
                for path, stats in sorted(self._spans.items())
            },
        }

    def reset(self) -> None:
        """Drop every recorded metric (the enabled flag is kept)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
        self._spans.clear()
        self._span_stack.clear()


def merge_snapshots(snapshots: Iterable[Snapshot]) -> Snapshot:
    """Aggregate several snapshots into one.

    Counters and histogram aggregates sum (min/max fold), gauges keep
    the largest value seen (the interesting one for sizes/depths), and
    span paths merge their counts and totals. Key order is sorted, so
    merging is order-insensitive apart from gauge ties.
    """
    counters: Dict[str, int] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, float]] = {}
    spans: Dict[str, Dict[str, float]] = {}
    for snap in snapshots:
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(value)
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, float("-inf")), float(value))
        for name, agg in snap.get("histograms", {}).items():
            into = histograms.setdefault(
                name,
                {
                    "count": 0,
                    "sum": 0.0,
                    "min": float("inf"),
                    "max": float("-inf"),
                },
            )
            into["count"] += agg["count"]
            into["sum"] += agg["sum"]
            into["min"] = min(into["min"], agg["min"])
            into["max"] = max(into["max"], agg["max"])
        for path, agg in snap.get("spans", {}).items():
            into = spans.setdefault(
                path, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            into["count"] += agg["count"]
            into["total_s"] += agg["total_s"]
            into["max_s"] = max(into["max_s"], agg["max_s"])
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
        "spans": dict(sorted(spans.items())),
    }


# -- process-default registry and the no-op fast path -------------------------

_registry = MetricsRegistry()


class _NoopSpan:
    """Shared allocation-free context manager for disabled spans."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def get_registry() -> MetricsRegistry:
    """The process-default registry the helpers write into."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-default registry (returns it)."""
    global _registry
    _registry = registry
    return registry


def enabled() -> bool:
    """Whether the process-default registry records anything."""
    return _registry.enabled


def enable() -> MetricsRegistry:
    """Turn recording on for the process-default registry."""
    _registry.enabled = True
    return _registry


def disable() -> MetricsRegistry:
    """Turn recording off (the no-op fast path)."""
    _registry.enabled = False
    return _registry


def inc(name: str, n: int = 1) -> None:
    """Counter increment; free when telemetry is disabled."""
    reg = _registry
    if reg.enabled:
        reg.inc(name, n)


def set_gauge(name: str, value: float) -> None:
    """Gauge write; free when telemetry is disabled."""
    reg = _registry
    if reg.enabled:
        reg.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Histogram observation; free when telemetry is disabled."""
    reg = _registry
    if reg.enabled:
        reg.observe(name, value)


def span(name: str) -> Any:
    """Timing span context manager; shared no-op when disabled."""
    reg = _registry
    if reg.enabled:
        return reg.span(name)
    return _NOOP_SPAN


def snapshot() -> Snapshot:
    """Snapshot of the process-default registry."""
    return _registry.snapshot()


def reset() -> None:
    """Clear the process-default registry's recorded metrics."""
    _registry.reset()


@contextmanager
def session(enabled_: bool = True) -> Iterator[MetricsRegistry]:
    """Swap in a fresh registry for a scoped run, then restore.

    Used by the orchestrator to give each experiment (and each worker
    process) an isolated metric scope whose snapshot lands in the run
    manifest::

        with telemetry.session() as reg:
            render()
        manifest_metrics = reg.snapshot()
    """
    previous = _registry
    fresh = MetricsRegistry(enabled=enabled_)
    set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)
