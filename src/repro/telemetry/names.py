"""Central registry of telemetry metric names.

Every metric the instrumentation emits is declared here, once, as a
``dot.scoped`` string literal. Call sites must reference these
constants — never inline strings and never f-strings — so the full
metric vocabulary is greppable in one module and reprolint rule RL006
can statically verify both sides: this module only declares well-formed
unique names, and the instrumented layers only use them.

Naming scheme: ``<layer>.<subsystem>.<quantity>``, lower case, words
separated by underscores inside a segment. Counters count events,
gauges hold last-written values, histograms aggregate a distribution
(count/sum/min/max) and spans aggregate wall-clock timings — spans are
the only metrics allowed to carry nondeterministic (timing) values.
"""

from __future__ import annotations

# -- simulation engine (repro.sim) --------------------------------------------

SIM_EVENTS_DISPATCHED = "sim.events.dispatched"
SIM_EVENTS_SCHEDULED = "sim.events.scheduled"
SIM_EVENTS_CANCELLED = "sim.events.cancelled"
SIM_EVENT_ARRIVALS = "sim.events.arrivals"
SIM_EVENT_FINISHES = "sim.events.finishes"
SIM_EVENT_PHASES = "sim.events.phases"
SIM_EVENT_TICKS = "sim.events.ticks"
SIM_CONTROLLER_CALLBACKS = "sim.controller.callbacks"
SIM_TRACE_SAMPLES = "sim.trace.samples"
SIM_VOLTAGE_TRANSITIONS = "sim.rail.voltage_transitions"
SIM_FREQUENCY_TRANSITIONS = "sim.rail.frequency_transitions"
SIM_VIOLATIONS = "sim.rail.violations"
SIM_MAKESPAN_S = "sim.run.makespan_sim_s"
SIM_ENERGY_J = "sim.run.energy_j"
SIM_RUNS = "sim.run.completed"
SIM_REFRESH_FULL = "sim.refresh.full"
SIM_REFRESH_INCREMENTAL = "sim.refresh.incremental"
SIM_RESCHEDULE_ELIDED = "sim.reschedule.elided"

# -- online monitoring daemon (repro.core) ------------------------------------

DAEMON_CLASSIFICATIONS = "daemon.monitor.classifications"
DAEMON_CLASS_FLIPS = "daemon.monitor.class_flips"
DAEMON_REPLANS = "daemon.placement.replans"
DAEMON_RETUNES = "daemon.placement.retunes"
DAEMON_PLACEMENTS = "daemon.placement.arrival_raises"

# -- policy control plane (repro.policies) ------------------------------------

POLICY_DECISIONS = "policy.stack.decisions"
POLICY_CLAMPS = "policy.stack.clamps"
POLICY_OVERRIDES = "policy.stack.overrides"

# -- characterization cache (repro.vmin.cache) --------------------------------

VMIN_CACHE_HITS = "vmin.cache.hits"
VMIN_CACHE_MISSES = "vmin.cache.misses"
VMIN_CACHE_STORES = "vmin.cache.stores"
VMIN_CACHE_EVICTIONS = "vmin.cache.evictions"
VMIN_CACHE_DISK_HITS = "vmin.cache.disk_hits"
VMIN_CACHE_CORRUPT = "vmin.cache.corrupt_discarded"
VMIN_CACHE_DISK_BYTES = "vmin.cache.disk_bytes"

# -- batched kernels (repro.kernels / scalar fallbacks) -----------------------

KERNELS_VMIN_BATCH = "kernels.vmin.batch_points"
KERNELS_POWER_BATCH = "kernels.power.batch_points"
KERNELS_FAULTS_BATCH = "kernels.faults.batch_points"
KERNELS_SCALAR_FALLBACKS = "kernels.scalar.fallbacks"

# -- experiment orchestrator (repro.experiments.orchestrator) -----------------

ORCH_EXPERIMENTS_COMPLETED = "orchestrator.experiments.completed"
ORCH_QUEUE_DEPTH = "orchestrator.scheduler.queue_depth"
ORCH_INFLIGHT = "orchestrator.scheduler.inflight"
ORCH_EXPERIMENT_SPAN = "orchestrator.experiment.wall"
ORCH_RUN_SPAN = "orchestrator.run.wall"
