"""repro.telemetry — structured metrics, span tracing, run manifests.

A lightweight, deterministic instrumentation subsystem:

* :mod:`repro.telemetry.metrics` — counters / gauges / histograms /
  nested timing spans behind a process-local registry with a no-op
  fast path (disabled by default);
* :mod:`repro.telemetry.names` — the central registry of ``dot.scoped``
  metric-name literals (reprolint RL006 enforces that call sites use
  these constants);
* :mod:`repro.telemetry.manifest` — versioned run manifests with a
  stdlib schema checker and timing-excluded fingerprints.

The package is stdlib-only and imports nothing from the rest of
``repro``, so every layer (sim, core, vmin, kernels, experiments) can
instrument itself without import cycles. See ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from . import names
from .manifest import (
    MANIFEST_KIND,
    MANIFEST_SCHEMA_VERSION,
    TIMING_KEYS,
    build_manifest,
    diff_manifests,
    hit_rate_of,
    load_manifest,
    manifest_fingerprint,
    strip_timing_fields,
    summarize_manifest,
    validate_manifest,
    write_manifest,
)
from .metrics import (
    MetricsRegistry,
    Snapshot,
    declared_names,
    disable,
    enable,
    enabled,
    get_registry,
    inc,
    merge_snapshots,
    observe,
    reset,
    session,
    set_gauge,
    set_registry,
    snapshot,
    span,
)

__all__ = [
    "MANIFEST_KIND",
    "MANIFEST_SCHEMA_VERSION",
    "MetricsRegistry",
    "Snapshot",
    "TIMING_KEYS",
    "build_manifest",
    "declared_names",
    "diff_manifests",
    "disable",
    "enable",
    "enabled",
    "get_registry",
    "hit_rate_of",
    "inc",
    "load_manifest",
    "manifest_fingerprint",
    "merge_snapshots",
    "names",
    "observe",
    "reset",
    "session",
    "set_gauge",
    "set_registry",
    "snapshot",
    "span",
    "strip_timing_fields",
    "summarize_manifest",
    "validate_manifest",
    "write_manifest",
]
