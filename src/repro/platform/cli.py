"""Platform registry tooling: ``repro platform list|show|validate``.

Usage::

    repro platform list
    repro platform show xgene3-xl
    repro platform validate
    repro platform validate my-chip.toml

``list`` prints the registered platforms one per line; ``show`` dumps a
bundle in its declarative spec-file shape (JSON, round-trippable
through :func:`repro.platform.registry.model_from_dict`); ``validate``
loads spec files — the shipped ones by default, explicit paths
otherwise — and reports every invariant violation instead of stopping
at the first.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ConfigurationError
from ..units import fmt_freq
from .registry import (
    get_platform,
    load_platform_file,
    model_to_dict,
    platform_keys,
    spec_files,
    validate_model,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro platform",
        description="Inspect and validate declarative platform bundles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="registered platforms, one per line")
    show = sub.add_parser(
        "show", help="dump one bundle in spec-file shape (JSON)"
    )
    show.add_argument("key", help="platform key or display name")
    validate = sub.add_parser(
        "validate", help="check spec files against the bundle invariants"
    )
    validate.add_argument(
        "files",
        nargs="*",
        metavar="FILE",
        help="spec files to check (default: the shipped defs/*.toml)",
    )
    return parser


def _cmd_list() -> int:
    for key in platform_keys():
        spec = get_platform(key).spec
        print(
            f"{key:<12} {spec.name}: {spec.n_cores} cores / "
            f"{spec.n_pmds} PMDs @ {fmt_freq(spec.fmax_hz)}, "
            f"{spec.tdp_w:g} W TDP, {spec.technology_nm} nm"
        )
    return 0


def _cmd_show(key: str) -> int:
    model = get_platform(key)
    print(json.dumps(model_to_dict(model), indent=2, sort_keys=True))
    return 0


def _cmd_validate(files: List[str]) -> int:
    paths = [Path(f) for f in files] if files else list(spec_files())
    problems_total = 0
    for path in paths:
        try:
            model = load_platform_file(path)
        except ConfigurationError as exc:
            print(f"{path}: ERROR {exc}")
            problems_total += 1
            continue
        problems = validate_model(model)
        for problem in problems:
            print(f"{path}: {problem}")
        problems_total += len(problems)
        if not problems:
            print(f"{path}: ok ({model.key})")
    return 1 if problems_total else 0


def platform_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro platform`` subcommand family."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args.key)
        return _cmd_validate(args.files)
    except ConfigurationError as exc:
        print(f"repro platform: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(platform_main())
