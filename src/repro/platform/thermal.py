"""First-order thermal model of the package (environment extension).

The paper names *environmental factors* among the static-variation
sources behind voltage guardbands (Section I) and characterizes its
machines at one operating temperature. This model adds the missing
dimension: junction temperature follows an RC response toward the
steady state ``ambient + R_th * power``, leakage grows exponentially
with temperature, and the safe Vmin drifts upward a fraction of a
millivolt per degree.

The model is **off by default** — every paper-calibrated number in this
repository is reported at the calibration temperature — and is switched
on by passing a :class:`ThermalModel` to the system simulator. The
thermal-margin study (`experiments.thermal_study`) uses it to ask how
much extra guard a table characterized at one temperature needs when
the machine runs hot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from .specs import ChipSpec


@dataclass(frozen=True)
class ThermalParams:
    """Package thermal constants of one platform."""

    #: Junction-to-ambient thermal resistance, degC per watt.
    resistance_c_per_w: float
    #: RC time constant of the package + heatsink, seconds.
    time_constant_s: float
    #: Temperature at which power/Vmin tables were calibrated, degC.
    calibration_c: float = 55.0
    #: Default ambient, degC.
    ambient_c: float = 25.0

    def __post_init__(self) -> None:
        if self.resistance_c_per_w <= 0 or self.time_constant_s <= 0:
            raise ConfigurationError("thermal constants must be positive")


#: Programmatic overrides by chip display name. The built-in chips'
#: thermal constants live in their declarative bundles
#: (``platform/defs/*.toml``); this dict only holds parameters
#: registered via :func:`register_thermal_params` and takes precedence
#: over the bundle registry.
THERMAL_PARAMS: Dict[str, ThermalParams] = {}

def register_thermal_params(spec_name: str, params: ThermalParams) -> None:
    """Register the thermal constants of a custom platform."""
    if not spec_name:
        raise ConfigurationError("spec_name must be non-empty")
    THERMAL_PARAMS[spec_name] = params


#: Leakage grows ~2x per 35 degC: exp(k*dT) with k = ln(2)/35.
LEAKAGE_TEMP_COEFF_PER_C = 0.0198

#: Safe-Vmin drift with junction temperature, mV per degC.
VMIN_TEMP_SENSITIVITY_MV_PER_C = 0.35


class ThermalModel:
    """Exponential (RC) junction-temperature tracker."""

    def __init__(
        self,
        spec: ChipSpec,
        params: Optional[ThermalParams] = None,
        ambient_c: Optional[float] = None,
    ):
        if params is None:
            params = THERMAL_PARAMS.get(spec.name)
        if params is None:
            from .registry import model_for_spec

            model = model_for_spec(spec)
            if model is not None:
                params = model.thermal
        if params is None:
            raise ConfigurationError(
                f"no thermal parameters for platform {spec.name!r}"
            )
        self.spec = spec
        self.params = params
        self.ambient_c = (
            ambient_c if ambient_c is not None else params.ambient_c
        )
        self._temperature_c = self.ambient_c

    @property
    def temperature_c(self) -> float:
        """Current junction temperature, degC."""
        return self._temperature_c

    def steady_state_c(self, power_w: float) -> float:
        """Equilibrium temperature at constant power."""
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        return self.ambient_c + self.params.resistance_c_per_w * power_w

    def step(self, power_w: float, dt_s: float) -> float:
        """Advance the temperature over ``dt_s`` at constant power."""
        if dt_s < 0:
            raise ConfigurationError("dt must be non-negative")
        import math

        target = self.steady_state_c(power_w)
        decay = math.exp(-dt_s / self.params.time_constant_s)
        self._temperature_c = target + (self._temperature_c - target) * decay
        return self._temperature_c

    def reset(self, temperature_c: Optional[float] = None) -> None:
        """Reset to ambient (or a given temperature)."""
        self._temperature_c = (
            temperature_c if temperature_c is not None else self.ambient_c
        )

    # -- derived effects ----------------------------------------------------

    def leakage_multiplier(
        self, temperature_c: Optional[float] = None
    ) -> float:
        """Leakage scaling relative to the calibration temperature."""
        import math

        temp = (
            temperature_c
            if temperature_c is not None
            else self._temperature_c
        )
        return math.exp(
            LEAKAGE_TEMP_COEFF_PER_C * (temp - self.params.calibration_c)
        )

    def vmin_shift_mv(self, temperature_c: Optional[float] = None) -> float:
        """Safe-Vmin shift vs the calibration temperature, in mV.

        Positive when hotter than calibration: timing degrades and the
        rail needs more headroom. (Never negative: cold chips keep the
        characterized table — a conservative choice.)
        """
        temp = (
            temperature_c
            if temperature_c is not None
            else self._temperature_c
        )
        return max(
            0.0,
            VMIN_TEMP_SENSITIVITY_MV_PER_C
            * (temp - self.params.calibration_c),
        )
