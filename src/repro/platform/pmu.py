"""Performance Monitoring Unit (PMU) model.

The daemon in the paper observes the chip exclusively through hardware
counters:

* per-core **cycle** and **L3-cache access** counters (the latter derived
  from L2-miss events, Section IV.B) used to classify processes;
* chip-level **voltage-droop detectors** binned by droop magnitude,
  exposed by the embedded oscilloscope of X-Gene 3 (Section IV.A).

The counters here are plain monotonically-increasing registers; the system
simulator advances them as simulated time passes. Two *reader* front-ends
model the measurement-quality point the paper makes in Section VI.A: the
authors wrote a kernel module for near-zero-overhead exact reads instead of
using ``perf``/PAPI, which impose about ±3 % measurement noise.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ConfigurationError
from .specs import ChipSpec

#: Droop magnitude bins used throughout the paper, in mV (Table II, Fig. 6).
DROOP_BINS_MV: Tuple[Tuple[int, int], ...] = (
    (25, 35),
    (35, 45),
    (45, 55),
    (55, 65),
)


@dataclass
class CoreCounters:
    """Raw per-core PMU registers (monotonically increasing)."""

    cycles: float = 0.0
    instructions: float = 0.0
    l3_accesses: float = 0.0

    def advance(
        self, cycles: float, instructions: float, l3_accesses: float
    ) -> None:
        """Accumulate activity; all deltas must be non-negative."""
        if min(cycles, instructions, l3_accesses) < 0:
            raise ConfigurationError("PMU deltas must be non-negative")
        self.cycles += cycles
        self.instructions += instructions
        self.l3_accesses += l3_accesses


class Pmu:
    """Counter banks for one chip: per-core registers plus droop bins."""

    def __init__(self, spec: ChipSpec):
        self.spec = spec
        self.cores: List[CoreCounters] = [
            CoreCounters() for _ in range(spec.n_cores)
        ]
        #: Droop event counts per magnitude bin, chip-wide.
        self.droop_events: Dict[Tuple[int, int], float] = {
            bin_: 0.0 for bin_ in DROOP_BINS_MV
        }

    def core(self, core_id: int) -> CoreCounters:
        """Raw registers of one core."""
        if not 0 <= core_id < self.spec.n_cores:
            raise ConfigurationError(
                f"{self.spec.name}: core {core_id} out of range"
            )
        return self.cores[core_id]

    def record_droops(self, bin_mv: Tuple[int, int], count: float) -> None:
        """Accumulate droop detections in one magnitude bin."""
        if bin_mv not in self.droop_events:
            raise ConfigurationError(f"unknown droop bin {bin_mv}")
        if count < 0:
            raise ConfigurationError("droop count must be non-negative")
        self.droop_events[bin_mv] += count

    def total_cycles(self) -> float:
        """Sum of cycle counters across all cores."""
        return sum(c.cycles for c in self.cores)

    def reset(self) -> None:
        """Zero every register (used between characterization runs)."""
        for core in self.cores:
            core.cycles = core.instructions = core.l3_accesses = 0.0
        for bin_ in self.droop_events:
            self.droop_events[bin_] = 0.0


@dataclass
class CounterSample:
    """One read of a core's registers, as returned by a reader."""

    core_id: int
    cycles: float
    instructions: float
    l3_accesses: float


class KernelModuleReader:
    """Exact, near-zero-overhead counter reads (the paper's kernel module).

    Section VI.A: *"we developed a kernel module able to provide access to
    the performance counters from user-space ... we did not use tools like
    Perf or PAPI because these tools impose an extra overhead in
    measurements (±3 %), while we need very accurate values"*.
    """

    #: Modelled cost of one read, in seconds (two register reads).
    read_cost_s = 2e-7

    def __init__(self, pmu: Pmu):
        self._pmu = pmu

    def read(self, core_id: int) -> CounterSample:
        """Read one core's registers exactly."""
        regs = self._pmu.core(core_id)
        return CounterSample(
            core_id=core_id,
            cycles=regs.cycles,
            instructions=regs.instructions,
            l3_accesses=regs.l3_accesses,
        )


class PerfToolReader:
    """Reads with ±``noise`` relative error, modelling perf/PAPI overhead.

    Used by the measurement-noise ablation to show why the paper's daemon
    needs exact reads near the 3 K/1 M-cycle classification threshold.
    """

    read_cost_s = 5e-5

    def __init__(self, pmu: Pmu, noise: float = 0.03, seed: int = 0):
        if not 0 <= noise < 1:
            raise ConfigurationError(f"noise must be in [0, 1), got {noise}")
        self._pmu = pmu
        self._noise = noise
        self._rng = random.Random(seed)

    def read(self, core_id: int) -> CounterSample:
        """Read one core's registers with multiplicative noise applied."""
        regs = self._pmu.core(core_id)

        def noisy(value: float) -> float:
            return value * (1.0 + self._rng.uniform(-self._noise, self._noise))

        return CounterSample(
            core_id=core_id,
            cycles=noisy(regs.cycles),
            instructions=noisy(regs.instructions),
            l3_accesses=noisy(regs.l3_accesses),
        )


def l3_rate_per_mcycles(
    before: CounterSample, after: CounterSample
) -> Optional[float]:
    """L3 accesses per one million cycles between two samples.

    This is the daemon's classification metric (Section IV.B): one counter
    read, one read again after ~1 M cycles, subtract. Returns ``None``
    when no cycles elapsed (an idle core), since the rate is undefined.
    """
    dcycles = after.cycles - before.cycles
    if dcycles <= 0:
        return None
    daccesses = after.l3_accesses - before.l3_accesses
    return 1e6 * daccesses / dcycles
