"""Runtime chip model: cores, PMDs, shared rail, occupancy tracking.

A :class:`Chip` instance is a *specific piece of silicon*: it combines the
immutable :class:`~repro.platform.specs.ChipSpec` with mutable runtime
state (rail voltage via :class:`~repro.platform.slimpro.SlimPro`, per-PMD
frequencies via :class:`~repro.platform.cppc.CppcController`, PMU counters)
and a ``silicon_seed`` identifying the manufacturing-variation instance
(different seeds model chip-to-chip variation; the default seed reproduces
the specific chips characterized in the paper, e.g. the robust PMD2 of
Figure 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from ..errors import ConfigurationError, SchedulingError
from .cppc import CppcController
from .pmu import Pmu
from .slimpro import SlimPro
from .specs import ChipSpec, FrequencyClass, get_spec


@dataclass(frozen=True)
class ChipState:
    """Immutable snapshot of a chip's operating point.

    Passed to the power, performance, Vmin and droop models so they can
    evaluate a configuration without holding a reference to the live chip.
    """

    spec: ChipSpec
    voltage_mv: int
    pmd_frequencies_hz: Tuple[int, ...]
    active_cores: FrozenSet[int]

    @property
    def active_pmds(self) -> FrozenSet[int]:
        """PMDs with at least one active core (the paper's 'utilized PMDs')."""
        return frozenset(
            self.spec.pmd_of_core(core) for core in self.active_cores
        )

    @property
    def n_active_cores(self) -> int:
        """Number of cores currently running a thread."""
        return len(self.active_cores)

    def frequency_of_core(self, core_id: int) -> int:
        """Effective frequency of the PMD owning ``core_id``."""
        return self.pmd_frequencies_hz[self.spec.pmd_of_core(core_id)]

    def max_active_frequency(self) -> int:
        """Highest frequency among utilized PMDs (fmin when all idle)."""
        pmds = self.active_pmds
        if not pmds:
            return self.spec.fmin_hz
        return max(self.pmd_frequencies_hz[p] for p in pmds)

    def worst_active_frequency_class(self) -> FrequencyClass:
        """Most Vmin-demanding class among utilized PMDs.

        When the chip is fully idle this returns the class of the highest
        *configured* frequency, since the rail must still be safe for
        whatever the clocks are doing.
        """
        pmds = self.active_pmds or frozenset(range(self.spec.n_pmds))
        order = {
            FrequencyClass.DIVIDE: 0,
            FrequencyClass.SKIP: 1,
            FrequencyClass.HIGH: 2,
        }
        classes = [
            self.spec.frequency_class(self.pmd_frequencies_hz[p])
            for p in pmds
        ]
        return max(classes, key=order.__getitem__)


class Chip:
    """A live chip: spec + regulator + clocks + PMU + core occupancy."""

    def __init__(self, spec: ChipSpec, silicon_seed: int = 0):
        self.spec = spec
        self.silicon_seed = silicon_seed
        self.slimpro = SlimPro(
            nominal_mv=spec.nominal_voltage_mv,
            min_mv=spec.min_voltage_mv,
        )
        self.cppc = CppcController(spec)
        self.pmu = Pmu(spec)
        #: core_id -> occupant tag (opaque to the chip; usually a pid).
        self._occupants: Dict[int, object] = {}
        #: Monotonic change counter of the occupancy map. Bumped only
        #: when the core->occupant mapping actually mutates, so callers
        #: (the simulator's incremental refresh) can detect placement
        #: changes without diffing the map.
        self.occupancy_version = 0

    # -- factory -----------------------------------------------------------

    @classmethod
    def from_name(cls, name: str, silicon_seed: int = 0) -> "Chip":
        """Build a chip by platform short name (``xgene2`` / ``xgene3``)."""
        return cls(get_spec(name), silicon_seed=silicon_seed)

    # -- voltage / frequency knobs ------------------------------------------

    @property
    def voltage_mv(self) -> int:
        """Current rail voltage in mV."""
        return self.slimpro.voltage_mv

    def set_voltage(self, voltage_mv: float, time_s: float = 0.0) -> int:
        """Set the shared rail voltage (all cores)."""
        return self.slimpro.set_voltage(voltage_mv, time_s)

    def set_pmd_frequency(
        self, pmd_id: int, freq_hz: float, time_s: float = 0.0
    ) -> int:
        """Set one PMD's clock; returns the snapped setting."""
        return self.cppc.request(pmd_id, freq_hz, time_s)

    def set_all_frequencies(self, freq_hz: float, time_s: float = 0.0) -> int:
        """Set every PMD to the same clock; returns the snapped setting."""
        return self.cppc.request_all(freq_hz, time_s)

    # -- occupancy ----------------------------------------------------------

    def occupy(self, core_id: int, occupant: object) -> None:
        """Mark a core as running a thread of ``occupant``."""
        if not 0 <= core_id < self.spec.n_cores:
            raise ConfigurationError(
                f"{self.spec.name}: core {core_id} out of range"
            )
        current = self._occupants.get(core_id)
        if current is not None and current != occupant:
            raise SchedulingError(
                f"core {core_id} already occupied by {current!r}"
            )
        if current is None:
            self.occupancy_version += 1
        self._occupants[core_id] = occupant

    def release(self, core_id: int) -> None:
        """Mark a core as idle."""
        if self._occupants.pop(core_id, None) is not None:
            self.occupancy_version += 1

    def release_occupant(self, occupant: object) -> None:
        """Release every core held by ``occupant``."""
        released = [
            c for c, o in self._occupants.items() if o == occupant
        ]
        for core_id in released:
            del self._occupants[core_id]
        if released:
            self.occupancy_version += 1

    def occupant_of(self, core_id: int) -> Optional[object]:
        """Occupant tag of a core, or ``None`` when idle."""
        return self._occupants.get(core_id)

    def cores_of_occupant(self, occupant: object) -> Tuple[int, ...]:
        """Cores currently held by ``occupant``, sorted."""
        return tuple(
            sorted(c for c, o in self._occupants.items() if o == occupant)
        )

    @property
    def active_cores(self) -> FrozenSet[int]:
        """Cores currently running a thread."""
        return frozenset(self._occupants)

    @property
    def idle_cores(self) -> Tuple[int, ...]:
        """Cores with no thread, sorted."""
        return tuple(
            c for c in range(self.spec.n_cores) if c not in self._occupants
        )

    @property
    def utilized_pmds(self) -> FrozenSet[int]:
        """PMDs with at least one active core."""
        return frozenset(
            self.spec.pmd_of_core(c) for c in self._occupants
        )

    def pmd_is_fully_idle(self, pmd_id: int) -> bool:
        """True when neither core of the PMD runs a thread."""
        return all(
            c not in self._occupants for c in self.spec.cores_of_pmd(pmd_id)
        )

    # -- snapshots -----------------------------------------------------------

    def state(self) -> ChipState:
        """Immutable snapshot of the current operating point."""
        return ChipState(
            spec=self.spec,
            voltage_mv=self.voltage_mv,
            pmd_frequencies_hz=self.cppc.frequencies(),
            active_cores=self.active_cores,
        )

    def reset(self) -> None:
        """Return to power-on state: nominal voltage, fmax, all cores idle."""
        self._occupants.clear()
        self.occupancy_version += 1
        self.slimpro.reset_to_nominal()
        self.cppc.request_all(self.spec.fmax_hz)
        self.pmu.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Chip {self.spec.name} @ {self.voltage_mv} mV, "
            f"{len(self._occupants)}/{self.spec.n_cores} cores active>"
        )
