"""Declarative platform registry: one bundle per chip, loaded from files.

Historically each layer kept its own chip-name-keyed dict of constants:
base-Vmin tables in ``vmin.model``, variation limits in
``vmin.variation``, power coefficients in ``power.model``, thermal
constants in ``platform.thermal``, memory calibration in ``perf.model``
and characterization grids inside the Fig. 3 experiment. Adding a chip
meant editing six modules and hoping no string comparison fell through
to the wrong default.

A :class:`PlatformModel` packages all of that — the :class:`ChipSpec`,
the ground-truth Vmin base surface, per-core variation parameters, droop
distribution knobs, fault/pfail parameters, power coefficients, thermal
constants and workload calibration hooks — under one stable key
(``xgene2``, ``xgene3``, ``xgene3-xl``). The built-in bundles are
defined *declaratively* in ``platform/defs/*.toml`` and loaded on first
use; a new chip is a new spec file, no code. Consumers resolve their
coefficients from the bundle once, outside any hot loop, and keep their
legacy ``register_*`` override hooks for programmatic customization.

The ``repro platform list|show|validate`` CLI (``platform.cli``) fronts
this module.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from ..errors import ConfigurationError
from ..units import HertzInt, Millivolts, ghz, hz_to_ghz
from . import _toml
from .specs import CacheSpec, ChipSpec, FrequencyClass, _platform_key
from .thermal import ThermalParams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from ..power.model import PowerParams


@dataclass(frozen=True)
class VariationParams:
    """Static per-core Vmin variation envelope of one chip family."""

    #: Largest static core offset of the family's population, mV.
    max_offset_mv: Millivolts = 25.0
    #: Hand-laid per-core offsets reproducing the paper's specific chip
    #: at ``silicon_seed=0`` (X-Gene 2's robust-PMD2 pattern, Fig. 4);
    #: ``None`` means every seed draws from the population.
    paper_offsets_mv: Optional[Tuple[float, ...]] = None


@dataclass(frozen=True)
class DroopParams:
    """Droop-event distribution knobs (rates, not magnitudes)."""

    #: Detections per 1 M cycles in the configuration's ceiling bin.
    base_rate_per_mcycles: float = 40.0
    #: Rate multiplier per bin below the ceiling.
    lower_bin_multiplier: float = 2.5
    #: Residual rate in bins above the ceiling (Fig. 6: "almost zero").
    above_ceiling_rate: float = 0.02
    #: Rate scaling of the SKIP / DIVIDE frequency classes vs HIGH.
    freq_scale_skip: float = 0.55
    freq_scale_divide: float = 0.2


@dataclass(frozen=True)
class FaultParams:
    """Unsafe-region geometry below the safe Vmin (Fig. 5)."""

    #: Unsafe-region width at the mildest droop class, mV.
    max_width_mv: Millivolts = 50.0
    #: Width shrink per droop class (steeper cliff at larger droops), mV.
    width_step_mv: Millivolts = 7.0
    #: Width floor, mV.
    min_width_mv: Millivolts = 20.0


@dataclass(frozen=True)
class PerfCalibration:
    """Workload-model calibration hooks of one chip."""

    #: Memory-path slowdown vs the reference platform (X-Gene 3 = 1.0).
    mem_time_scale: float = 1.0


@dataclass(frozen=True)
class CharacterizationGrid:
    """(thread count, frequency) grid of the Fig. 3 campaign."""

    threads: Tuple[int, ...]
    freqs_hz: Tuple[HertzInt, ...]


@dataclass(frozen=True)
class PlatformModel:
    """Everything the pipeline needs to know about one chip."""

    #: Stable registry key (``xgene2`` / ``xgene3`` / ``xgene3-xl``).
    key: str
    spec: ChipSpec
    #: Ground-truth base Vmin (mV) per frequency class, one value per
    #: droop class ordered mild to severe.
    vmin_base_mv: Dict[FrequencyClass, Tuple[int, ...]]
    variation: VariationParams
    droop: DroopParams
    faults: FaultParams
    power: "PowerParams"
    thermal: ThermalParams
    perf: PerfCalibration
    characterization: CharacterizationGrid


#: Registered bundles by normalized key.
_MODELS: Dict[str, PlatformModel] = {}
#: Normalized chip display name -> normalized registry key.
_BY_SPEC_NAME: Dict[str, str] = {}
_BUILTINS_LOADED = False


def builtin_defs_dir() -> Path:
    """Directory holding the shipped declarative spec files."""
    return Path(__file__).resolve().parent / "defs"


def spec_files() -> Tuple[Path, ...]:
    """All shipped spec files, sorted for deterministic load order."""
    return tuple(sorted(builtin_defs_dir().glob("*.toml")))


def _ensure_builtins() -> None:
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for path in spec_files():
        register_model(load_platform_file(path))


def register_model(model: PlatformModel, validate: bool = True) -> str:
    """Register a platform bundle; returns its normalized key.

    Re-registering a key overwrites it. ``validate=True`` (the default)
    runs :func:`validate_model` first and refuses inconsistent bundles.
    """
    key = _platform_key(model.key)
    if not key:
        raise ConfigurationError("platform key must be non-empty")
    if validate:
        problems = validate_model(model)
        if problems:
            raise ConfigurationError(
                f"platform {model.key!r} failed validation: "
                + "; ".join(problems)
            )
    _MODELS[key] = model
    _BY_SPEC_NAME[_platform_key(model.spec.name)] = key
    return key


def platform_keys() -> Tuple[str, ...]:
    """Display keys of every registered bundle, sorted."""
    _ensure_builtins()
    return tuple(sorted(model.key for model in _MODELS.values()))


def try_get_platform(name: str) -> Optional[PlatformModel]:
    """Bundle for a registry key or chip display name, or ``None``."""
    _ensure_builtins()
    key = _platform_key(name)
    if key in _MODELS:
        return _MODELS[key]
    mapped = _BY_SPEC_NAME.get(key)
    if mapped is not None:
        return _MODELS[mapped]
    return None


def get_platform(name: str) -> PlatformModel:
    """Bundle for a registry key or chip display name."""
    model = try_get_platform(name)
    if model is None:
        raise ConfigurationError(
            f"unknown platform {name!r}; known: {list(platform_keys())}"
        )
    return model


def model_for_spec(spec: ChipSpec) -> Optional[PlatformModel]:
    """Bundle whose chip matches ``spec``'s display name, or ``None``.

    This is the fallback the per-layer models use when no explicit
    parameters (and no legacy ``register_*`` override) are given.
    """
    return try_get_platform(spec.name)


def platform_key_for_spec(spec: ChipSpec) -> str:
    """Registry key of a spec's platform; empty string if unregistered."""
    model = model_for_spec(spec)
    return model.key if model is not None else ""


def default_characterization_grid(spec: ChipSpec) -> CharacterizationGrid:
    """Fallback Fig. 3 grid for platforms without a declared one.

    Thread counts halve from the full chip (at most three rungs);
    frequencies cover the top step plus the half-clock point, which
    spans every frequency class the chip exposes.
    """
    threads: List[int] = []
    count = spec.n_cores
    while count >= 1 and len(threads) < 3:
        threads.append(count)
        count //= 2
    steps = spec.frequency_steps()
    freqs = [steps[-1]]
    if spec.half_frequency_hz in steps:
        freqs.append(spec.half_frequency_hz)
    return CharacterizationGrid(threads=tuple(threads), freqs_hz=tuple(freqs))


# -- declarative (de)serialization --------------------------------------------


def _params_from(cls: Any, section: str, data: Mapping[str, Any]) -> Any:
    try:
        return cls(**data)
    except TypeError as exc:
        raise ConfigurationError(f"[{section}]: {exc}") from None


def _require(data: Mapping[str, Any], section: str) -> Any:
    if section not in data:
        raise ConfigurationError(f"spec is missing the [{section}] table")
    return data[section]


def model_from_dict(data: Mapping[str, Any]) -> PlatformModel:
    """Build a :class:`PlatformModel` from parsed spec-file data."""
    platform = _require(data, "platform")
    key = str(platform.get("key", ""))
    if not key:
        raise ConfigurationError("[platform] needs a non-empty 'key'")

    chip = dict(_require(data, "chip"))
    caches_data = chip.pop("caches", None)
    if caches_data is None:
        raise ConfigurationError("spec is missing the [chip.caches] table")
    caches = _params_from(CacheSpec, "chip.caches", caches_data)
    spec = _params_from(
        ChipSpec, "chip", {**chip, "caches": caches}
    )

    vmin = dict(_require(data, "vmin"))
    base_data = vmin.pop("base_mv", None)
    if base_data is None:
        raise ConfigurationError("spec is missing the [vmin.base_mv] table")
    base: Dict[FrequencyClass, Tuple[int, ...]] = {}
    for class_name, row in base_data.items():
        try:
            freq_class = FrequencyClass(class_name)
        except ValueError:
            raise ConfigurationError(
                f"[vmin.base_mv]: unknown frequency class {class_name!r}"
            ) from None
        base[freq_class] = tuple(int(v) for v in row)

    variation_data = dict(vmin.pop("variation", {}))
    paper = variation_data.pop("paper_offsets_mv", None)
    if paper is not None:
        variation_data["paper_offsets_mv"] = tuple(float(v) for v in paper)
    variation = _params_from(
        VariationParams, "vmin.variation", variation_data
    )
    droop = _params_from(DroopParams, "vmin.droop", vmin.pop("droop", {}))
    faults = _params_from(FaultParams, "vmin.faults", vmin.pop("faults", {}))
    if vmin:
        raise ConfigurationError(
            f"[vmin]: unknown entries {sorted(vmin)}"
        )

    from ..power.model import PowerParams

    power = _params_from(PowerParams, "power", _require(data, "power"))
    thermal = _params_from(ThermalParams, "thermal", _require(data, "thermal"))
    perf = _params_from(PerfCalibration, "perf", data.get("perf", {}))

    char = _require(data, "characterization")
    try:
        grid = CharacterizationGrid(
            threads=tuple(int(t) for t in char["threads"]),
            freqs_hz=tuple(ghz(step) for step in char["freqs_ghz"]),
        )
    except KeyError as exc:
        raise ConfigurationError(
            f"[characterization] needs {exc.args[0]!r}"
        ) from None

    return PlatformModel(
        key=key,
        spec=spec,
        vmin_base_mv=base,
        variation=variation,
        droop=droop,
        faults=faults,
        power=power,
        thermal=thermal,
        perf=perf,
        characterization=grid,
    )


def model_to_dict(model: PlatformModel) -> Dict[str, Any]:
    """Serialize a bundle back to its declarative spec-file shape.

    ``model_from_dict(model_to_dict(m))`` reconstructs an equal bundle —
    the round-trip invariant the registry test suite pins for every
    shipped platform.
    """
    chip = asdict(model.spec)
    variation: Dict[str, Any] = {
        "max_offset_mv": model.variation.max_offset_mv
    }
    if model.variation.paper_offsets_mv is not None:
        variation["paper_offsets_mv"] = list(model.variation.paper_offsets_mv)
    return {
        "platform": {"key": model.key},
        "chip": chip,
        "vmin": {
            "base_mv": {
                freq_class.value: list(row)
                for freq_class, row in sorted(
                    model.vmin_base_mv.items(), key=lambda item: item[0].value
                )
            },
            "variation": variation,
            "droop": asdict(model.droop),
            "faults": asdict(model.faults),
        },
        "power": asdict(model.power),
        "thermal": asdict(model.thermal),
        "perf": asdict(model.perf),
        "characterization": {
            "threads": list(model.characterization.threads),
            "freqs_ghz": [
                hz_to_ghz(f) for f in model.characterization.freqs_hz
            ],
        },
    }


def load_platform_file(path: Union[str, Path]) -> PlatformModel:
    """Load one declarative platform spec file (TOML or JSON)."""
    path = Path(path)
    try:
        text = path.read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read {path}: {exc}") from exc
    try:
        if path.suffix.lower() == ".json":
            data = json.loads(text)
        else:
            data = _toml.loads(text)
    except ValueError as exc:
        raise ConfigurationError(f"{path.name}: {exc}") from exc
    try:
        return model_from_dict(data)
    except ConfigurationError as exc:
        raise ConfigurationError(f"{path.name}: {exc}") from exc


# -- validation ----------------------------------------------------------------


def validate_model(model: PlatformModel) -> List[str]:
    """Consistency problems of a bundle; empty list means valid.

    Checks the cross-layer invariants no single dataclass can see:
    Vmin rows match the chip's droop ladder and stay monotone (worse
    droop class never lowers the Vmin, lower frequency class never
    raises it), variation offsets fit the family envelope, idle power
    sits below TDP, and the characterization grid only names thread
    counts and frequency steps the chip actually has.
    """
    from ..vmin.droop import droop_ladder

    problems: List[str] = []
    spec = model.spec
    nominal = spec.nominal_voltage_mv
    n_classes = len(droop_ladder(spec))

    table = model.vmin_base_mv
    for required in (FrequencyClass.HIGH, FrequencyClass.SKIP):
        if required not in table:
            problems.append(
                f"vmin.base_mv is missing the {required.value!r} row"
            )
    for freq_class, row in table.items():
        if len(row) != n_classes:
            problems.append(
                f"vmin.base_mv.{freq_class.value} has {len(row)} droop "
                f"classes, chip has {n_classes}"
            )
        if list(row) != sorted(row):
            problems.append(
                f"vmin.base_mv.{freq_class.value} must be non-decreasing "
                "in the droop class"
            )
        if row and max(row) > nominal:
            problems.append(
                f"vmin.base_mv.{freq_class.value} exceeds the nominal "
                f"{nominal} mV"
            )
    order = (
        FrequencyClass.HIGH,
        FrequencyClass.SKIP,
        FrequencyClass.DIVIDE,
    )
    present = [fc for fc in order if fc in table]
    for upper, lower in zip(present, present[1:]):
        if any(
            lo > hi for hi, lo in zip(table[upper], table[lower])
        ):
            problems.append(
                f"vmin.base_mv.{lower.value} must not exceed "
                f"vmin.base_mv.{upper.value} (Vmin is non-increasing as "
                "the frequency class drops)"
            )

    variation = model.variation
    if variation.max_offset_mv < 0:
        problems.append("variation.max_offset_mv must be non-negative")
    if variation.paper_offsets_mv is not None:
        offsets = variation.paper_offsets_mv
        if len(offsets) != spec.n_cores:
            problems.append(
                f"variation.paper_offsets_mv has {len(offsets)} entries "
                f"for {spec.n_cores} cores"
            )
        if offsets and (
            min(offsets) < 0 or max(offsets) > variation.max_offset_mv
        ):
            problems.append(
                "variation.paper_offsets_mv must lie in "
                "[0, max_offset_mv]"
            )

    droop = model.droop
    if droop.base_rate_per_mcycles <= 0 or droop.lower_bin_multiplier <= 0:
        problems.append("droop rates must be positive")
    if droop.above_ceiling_rate < 0:
        problems.append("droop.above_ceiling_rate must be non-negative")
    for label, scale in (
        ("freq_scale_skip", droop.freq_scale_skip),
        ("freq_scale_divide", droop.freq_scale_divide),
    ):
        if not 0.0 < scale <= 1.0:
            problems.append(f"droop.{label} must be in (0, 1]")

    faults = model.faults
    if not 0.0 < faults.min_width_mv <= faults.max_width_mv:
        problems.append(
            "faults: need 0 < min_width_mv <= max_width_mv"
        )
    if faults.width_step_mv < 0:
        problems.append("faults.width_step_mv must be non-negative")

    if model.perf.mem_time_scale <= 0:
        problems.append("perf.mem_time_scale must be positive")

    problems.extend(_power_problems(model))

    grid = model.characterization
    if not grid.threads:
        problems.append("characterization.threads must be non-empty")
    for count in grid.threads:
        if not 1 <= count <= spec.n_cores:
            problems.append(
                f"characterization thread count {count} outside "
                f"[1, {spec.n_cores}]"
            )
    steps = set(spec.frequency_steps())
    for freq in grid.freqs_hz:
        if freq not in steps:
            problems.append(
                f"characterization frequency {freq} Hz is not a "
                "supported step"
            )
    return problems


def _power_problems(model: PlatformModel) -> List[str]:
    from ..power.model import PowerModel
    from .chip import ChipState

    spec = model.spec
    power_model = PowerModel(spec, model.power)
    idle_state = ChipState(
        spec=spec,
        voltage_mv=spec.nominal_voltage_mv,
        pmd_frequencies_hz=(spec.fmax_hz,) * spec.n_pmds,
        active_cores=frozenset(),
    )
    problems: List[str] = []
    try:
        idle_w = power_model.idle_power_w(idle_state)
        max_w = power_model.max_power_w()
    except ConfigurationError as exc:
        return [f"power model rejects its own parameters: {exc}"]
    if idle_w >= spec.tdp_w:
        problems.append(
            f"idle power {idle_w:.1f} W is not below the {spec.tdp_w} W TDP"
        )
    if max_w <= idle_w:
        problems.append("max power must exceed idle power")
    return problems
