"""Specifications of the modelled micro-server platforms (paper Table I).

Two ARMv8 server chips are modelled:

* **X-Gene 2** — 8 cores (4 PMDs), 2.4 GHz, 28 nm bulk CMOS, 980 mV
  nominal, 35 W TDP, 8 MB L3 in a separate domain.
* **X-Gene 3** — 32 cores (16 PMDs), 3.0 GHz, 16 nm FinFET, 870 mV
  nominal, 125 W TDP, 32 MB L3 in the PCP domain.

Both chips group cores in pairs (PMDs — *Processor MoDules*). Each PMD has
its own clock domain; all cores share a single supply rail (the PCP
domain), so the voltage is one knob for the whole chip while frequency is
one knob per PMD (Section II.A).

Frequency is settable in 1/8 steps of the maximum clock. Per Section II.B,
the *effective* Vmin behaviour of a frequency setting depends on how the
hardware realises it:

* ratios above 1/2 use **clock skipping** on the input clock and share the
  Vmin of the maximum frequency (``FrequencyClass.HIGH``);
* the 1/2 ratio uses **clock skipping around the half point** under CPPC
  frequency interleaving (``FrequencyClass.SKIP``), worth ~3 % of Vmin;
* ratios below 1/2 engage **clock division** on X-Gene 2 only
  (``FrequencyClass.DIVIDE``, ~12 % further Vmin reduction at 0.9 GHz);
  on X-Gene 3 the CPPC interleave never drops to clock division, so all
  sub-half settings stay in the ``SKIP`` class.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigurationError, FrequencyRangeError

KIB = 1024
MIB = 1024 * KIB

#: Cache line size used when converting L3 access rates to bandwidth.
CACHE_LINE_BYTES = 64


class FrequencyClass(enum.Enum):
    """Vmin-relevant class of a frequency setting (Section II.B)."""

    #: Above half of the maximum clock: clock skipping, Vmin as at fmax.
    HIGH = "high"
    #: At half the maximum clock (or below, on chips without the clock
    #: division path): one clock-skipping step of Vmin reduction (~3 %).
    SKIP = "skip"
    #: Below half the maximum clock with clock division engaged
    #: (X-Gene 2 only): the large (~12 %) Vmin reduction.
    DIVIDE = "divide"


@dataclass(frozen=True)
class CacheSpec:
    """Cache sizes of the chip (paper Table I)."""

    l1i_bytes: int
    l1d_bytes: int
    l2_bytes_per_pmd: int
    l3_bytes: int
    #: True when the L3 lives inside the PCP power domain (X-Gene 3).
    l3_in_pcp_domain: bool


@dataclass(frozen=True)
class ChipSpec:
    """Static description of a chip model.

    Instances of this class are immutable; the mutable runtime state
    (current voltage, per-PMD frequencies) lives in
    :class:`repro.platform.chip.Chip`.
    """

    name: str
    n_cores: int
    cores_per_pmd: int
    fmax_hz: int
    fmin_hz: int
    nominal_voltage_mv: int
    #: Lowest voltage the SLIMpro regulator accepts, in mV.
    min_voltage_mv: int
    tdp_w: float
    technology_nm: int
    caches: CacheSpec
    #: Sustainable DRAM + L3 bandwidth of the memory subsystem, used by
    #: the contention model, in bytes per second.
    memory_bandwidth_bps: float
    #: Whether sub-half frequency requests engage clock division
    #: (True on X-Gene 2, False on X-Gene 3 — Section II.B).
    clock_division_below_half: bool = True
    #: Number of frequency steps between fmin and fmax (1/8 of fmax each).
    n_freq_steps: int = 8

    def __post_init__(self) -> None:
        if self.n_cores % self.cores_per_pmd:
            raise ConfigurationError(
                f"{self.name}: {self.n_cores} cores do not divide into "
                f"PMDs of {self.cores_per_pmd}"
            )
        if self.fmin_hz >= self.fmax_hz:
            raise ConfigurationError(
                f"{self.name}: fmin {self.fmin_hz} must be below fmax "
                f"{self.fmax_hz}"
            )

    @property
    def n_pmds(self) -> int:
        """Number of PMDs (core pairs) on the chip."""
        return self.n_cores // self.cores_per_pmd

    @property
    def half_frequency_hz(self) -> int:
        """The half-clock setting (clock-division point on X-Gene 2)."""
        return self.fmax_hz // 2

    def frequency_steps(self) -> Tuple[int, ...]:
        """All supported frequency settings, ascending (1/8 steps of fmax)."""
        step = self.fmax_hz // self.n_freq_steps
        return tuple(
            step * i
            for i in range(1, self.n_freq_steps + 1)
            if step * i >= self.fmin_hz
        )

    def validate_frequency(self, freq_hz: int) -> None:
        """Raise :class:`FrequencyRangeError` for an unsupported setting."""
        if freq_hz not in self.frequency_steps():
            supported = ", ".join(str(f) for f in self.frequency_steps())
            raise FrequencyRangeError(
                f"{self.name}: {freq_hz} Hz is not a supported step "
                f"(supported: {supported})"
            )

    def nearest_frequency(self, freq_hz: float) -> int:
        """Snap an arbitrary request to the nearest supported step."""
        steps = self.frequency_steps()
        return min(steps, key=lambda f: (abs(f - freq_hz), f))

    def frequency_class(self, freq_hz: int) -> FrequencyClass:
        """Vmin-relevant class of a frequency setting (Section II.B)."""
        half = self.half_frequency_hz
        if freq_hz > half:
            return FrequencyClass.HIGH
        if freq_hz == half:
            return FrequencyClass.SKIP
        if self.clock_division_below_half:
            return FrequencyClass.DIVIDE
        return FrequencyClass.SKIP

    def pmd_of_core(self, core_id: int) -> int:
        """PMD index that owns ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise ConfigurationError(
                f"{self.name}: core {core_id} out of range"
            )
        return core_id // self.cores_per_pmd

    def cores_of_pmd(self, pmd_id: int) -> Tuple[int, ...]:
        """Core ids belonging to PMD ``pmd_id``."""
        if not 0 <= pmd_id < self.n_pmds:
            raise ConfigurationError(f"{self.name}: PMD {pmd_id} out of range")
        base = pmd_id * self.cores_per_pmd
        return tuple(range(base, base + self.cores_per_pmd))


def xgene2_spec() -> ChipSpec:
    """X-Gene 2: 8-core, 28 nm, 2.4 GHz, 980 mV nominal (Table I).

    The numbers live in the declarative bundle ``platform/defs/xgene2.toml``;
    this factory is kept as the stable programmatic entry point.
    """
    from .registry import get_platform

    return get_platform("xgene2").spec


def xgene3_spec() -> ChipSpec:
    """X-Gene 3: 32-core, 16 nm FinFET, 3.0 GHz, 870 mV nominal (Table I).

    The numbers live in the declarative bundle ``platform/defs/xgene3.toml``;
    this factory is kept as the stable programmatic entry point.
    """
    from .registry import get_platform

    return get_platform("xgene3").spec


#: Registry of platform factories by short name.
PLATFORMS = {
    "xgene2": xgene2_spec,
    "xgene3": xgene3_spec,
}


def _platform_key(name: str) -> str:
    return name.lower().replace("-", "").replace("_", "").replace(" ", "")


def register_platform(factory, name: str = "") -> str:
    """Register a custom platform spec factory.

    ``factory`` is a zero-argument callable returning a
    :class:`ChipSpec`; the registry key defaults to the spec's own name.
    To run the full pipeline on a custom platform, also register its
    electrical and power behaviour:
    :func:`repro.vmin.model.register_vmin_table`,
    :func:`repro.power.model.register_power_params` and (optionally)
    :func:`repro.platform.thermal.register_thermal_params`.
    Returns the registry key. Re-registering a key overwrites it.
    """
    spec = factory()
    if not isinstance(spec, ChipSpec):
        raise ConfigurationError(
            "platform factory must return a ChipSpec"
        )
    key = _platform_key(name or spec.name)
    if not key:
        raise ConfigurationError("platform name must be non-empty")
    PLATFORMS[key] = factory
    return key


def get_spec(name: str) -> ChipSpec:
    """Look up a platform spec by short name (``xgene2`` / ``xgene3-xl``).

    Factories registered via :func:`register_platform` take precedence;
    everything else resolves through the declarative bundle registry
    (:mod:`repro.platform.registry`).
    """
    key = _platform_key(name)
    if key in PLATFORMS:
        return PLATFORMS[key]()
    from .registry import platform_keys, try_get_platform

    model = try_get_platform(name)
    if model is not None:
        return model.spec
    known = sorted(set(PLATFORMS) | set(platform_keys()))
    raise ConfigurationError(
        f"unknown platform {name!r}; known: {known}"
    )
