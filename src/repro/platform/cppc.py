"""Model of the ACPI CPPC frequency-control interface (Section II.B).

Both chips implement the *Collaborative Processor Performance Control*
specification of ACPI 5.1: software requests performance on an abstract
continuous scale and the platform realises it by interleaving discrete
clock configurations. Two hardware mechanisms implement the requested
ratio relative to the input clock:

* **clock skipping** for ratios above or below 1/2, and
* **clock division** for the exact 1/2 ratio.

Because a skipped clock's electrical behaviour is governed by the highest
frequency present in the interleave, the *Vmin-relevant* frequency class of
a request can differ from its average frequency. On X-Gene 2, a request at
or below 3/8 of fmax (0.9 GHz) keeps the interleave entirely at or below
the division point, unlocking the large (~12 %) Vmin reduction; a request
of exactly fmax/2 interleaves *around* the half point and only earns the
small (~3 %) clock-skipping reduction. On X-Gene 3 the division behaviour
was never observed below 1.5 GHz, so every setting at or below fmax/2
shares the half-clock Vmin.

This module translates frequency requests into per-PMD effective settings
and reports the frequency class used by the Vmin model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..errors import ConfigurationError
from .specs import ChipSpec, FrequencyClass


@dataclass
class FrequencyTransition:
    """Record of one per-PMD frequency change."""

    time_s: float
    pmd_id: int
    from_hz: int
    to_hz: int


class CppcController:
    """Per-PMD frequency controller with CPPC request semantics.

    The controller owns the authoritative per-PMD frequency state of a
    chip; :class:`repro.platform.chip.Chip` delegates to it.
    """

    def __init__(self, spec: ChipSpec):
        self.spec = spec
        self._freqs: List[int] = [spec.fmax_hz] * spec.n_pmds
        self.transitions: List[FrequencyTransition] = []

    def frequency_of(self, pmd_id: int) -> int:
        """Effective frequency of one PMD in Hz."""
        self._check_pmd(pmd_id)
        return self._freqs[pmd_id]

    def frequencies(self) -> Tuple[int, ...]:
        """Effective frequencies of all PMDs, indexed by PMD id."""
        return tuple(self._freqs)

    def request(self, pmd_id: int, freq_hz: float, time_s: float = 0.0) -> int:
        """Request a frequency for one PMD; returns the applied setting.

        Arbitrary requests snap to the chip's 1/8-of-fmax steps, mirroring
        CPPC's continuous-scale abstraction over discrete hardware ratios.
        """
        self._check_pmd(pmd_id)
        target = self.spec.nearest_frequency(freq_hz)
        previous = self._freqs[pmd_id]
        if target != previous:
            self._freqs[pmd_id] = target
            self.transitions.append(
                FrequencyTransition(time_s, pmd_id, previous, target)
            )
        return target

    def request_all(self, freq_hz: float, time_s: float = 0.0) -> int:
        """Request the same frequency for every PMD."""
        applied = self.spec.nearest_frequency(freq_hz)
        for pmd_id in range(self.spec.n_pmds):
            self.request(pmd_id, applied, time_s)
        return applied

    def frequency_class_of(self, pmd_id: int) -> FrequencyClass:
        """Vmin-relevant class of one PMD's current setting."""
        return self.spec.frequency_class(self.frequency_of(pmd_id))

    def worst_frequency_class(self, pmd_ids=None) -> FrequencyClass:
        """Most Vmin-demanding class among the given PMDs (default: all).

        ``HIGH`` dominates ``SKIP`` which dominates ``DIVIDE``: the rail
        must satisfy the most demanding clock domain, because all cores
        share one supply (Section II.A).
        """
        order = {
            FrequencyClass.DIVIDE: 0,
            FrequencyClass.SKIP: 1,
            FrequencyClass.HIGH: 2,
        }
        ids = list(pmd_ids) if pmd_ids is not None else range(self.spec.n_pmds)
        if not ids:
            return FrequencyClass.DIVIDE
        classes = [self.spec.frequency_class(self._freqs[i]) for i in ids]
        return max(classes, key=order.__getitem__)

    def max_frequency(self, pmd_ids=None) -> int:
        """Highest current setting among the given PMDs (default: all)."""
        ids = list(pmd_ids) if pmd_ids is not None else range(self.spec.n_pmds)
        if not ids:
            return self.spec.fmin_hz
        return max(self._freqs[i] for i in ids)

    def transition_count(self) -> int:
        """Number of frequency changes applied so far."""
        return len(self.transitions)

    def _check_pmd(self, pmd_id: int) -> None:
        if not 0 <= pmd_id < self.spec.n_pmds:
            raise ConfigurationError(
                f"{self.spec.name}: PMD {pmd_id} out of range "
                f"(chip has {self.spec.n_pmds})"
            )
