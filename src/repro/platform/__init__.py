"""Platform substrate: chip, specs, SLIMpro, CPPC and PMU models.

This package models the two micro-servers of the paper (X-Gene 2 and
X-Gene 3) at the level of detail the paper's daemon actually touches:
one shared voltage rail, per-PMD clocks with CPPC semantics, and PMU
counters for cycles, L3 accesses and voltage-droop events.
"""

from .chip import Chip, ChipState
from .cppc import CppcController, FrequencyTransition
from .pmu import (
    DROOP_BINS_MV,
    CounterSample,
    CoreCounters,
    KernelModuleReader,
    PerfToolReader,
    Pmu,
    l3_rate_per_mcycles,
)
from .registry import (
    CharacterizationGrid,
    DroopParams,
    FaultParams,
    PerfCalibration,
    PlatformModel,
    VariationParams,
    get_platform,
    load_platform_file,
    model_for_spec,
    platform_key_for_spec,
    platform_keys,
    register_model,
    try_get_platform,
    validate_model,
)
from .slimpro import SlimPro, VoltageTransition
from .thermal import (
    LEAKAGE_TEMP_COEFF_PER_C,
    THERMAL_PARAMS,
    VMIN_TEMP_SENSITIVITY_MV_PER_C,
    ThermalModel,
    ThermalParams,
)
from .specs import (
    CACHE_LINE_BYTES,
    CacheSpec,
    ChipSpec,
    FrequencyClass,
    PLATFORMS,
    get_spec,
    xgene2_spec,
    xgene3_spec,
)

__all__ = [
    "CACHE_LINE_BYTES",
    "CharacterizationGrid",
    "Chip",
    "ChipSpec",
    "ChipState",
    "CacheSpec",
    "CounterSample",
    "CoreCounters",
    "CppcController",
    "DROOP_BINS_MV",
    "DroopParams",
    "FaultParams",
    "FrequencyClass",
    "FrequencyTransition",
    "KernelModuleReader",
    "LEAKAGE_TEMP_COEFF_PER_C",
    "PLATFORMS",
    "PerfCalibration",
    "PerfToolReader",
    "PlatformModel",
    "Pmu",
    "SlimPro",
    "THERMAL_PARAMS",
    "ThermalModel",
    "ThermalParams",
    "VMIN_TEMP_SENSITIVITY_MV_PER_C",
    "VariationParams",
    "VoltageTransition",
    "get_platform",
    "get_spec",
    "l3_rate_per_mcycles",
    "load_platform_file",
    "model_for_spec",
    "platform_key_for_spec",
    "platform_keys",
    "register_model",
    "try_get_platform",
    "validate_model",
    "xgene2_spec",
    "xgene3_spec",
]
