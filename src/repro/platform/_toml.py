"""Minimal TOML-subset reader for the platform spec files.

Python 3.11+ ships :mod:`tomllib`, but this project still supports 3.10
and takes no third-party dependencies for three small spec files. The
fallback parser below covers exactly the subset ``platform/defs/*.toml``
uses: ``[dotted.tables]``, bare keys, double-quoted strings (no
escapes), booleans, integers, floats and single-line arrays of scalars,
plus ``#`` comments. Numeric literals are converted with ``int()`` /
``float()``, so a value written in TOML parses to the bit-identical
number a Python literal would — which is what lets the spec files be
the single source of truth without perturbing golden outputs.

When :mod:`tomllib` is available it is preferred; the fallback only
runs on 3.10.
"""

from __future__ import annotations

import re
from typing import Any, Dict, Tuple

from ..errors import ConfigurationError

try:  # pragma: no cover - exercised indirectly on 3.11+
    import tomllib as _tomllib
except ModuleNotFoundError:  # pragma: no cover - 3.10 fallback
    _tomllib = None

_INT_RE = re.compile(r"[+-]?[0-9][0-9_]*$")
_SCALAR_TOKEN_RE = re.compile(r"[^,\]\s#]+")


def _parse_value(text: str) -> Tuple[Any, str]:
    """Parse one value off the front of ``text``; return (value, rest)."""
    text = text.lstrip()
    if not text:
        raise ConfigurationError("expected a TOML value, got end of line")
    if text.startswith('"'):
        end = text.find('"', 1)
        if end < 0:
            raise ConfigurationError(f"unterminated string in {text!r}")
        return text[1:end], text[end + 1:]
    if text.startswith("["):
        rest = text[1:]
        items = []
        while True:
            rest = rest.lstrip()
            if not rest:
                raise ConfigurationError("unterminated array")
            if rest.startswith("]"):
                return items, rest[1:]
            value, rest = _parse_value(rest)
            items.append(value)
            rest = rest.lstrip()
            if rest.startswith(","):
                rest = rest[1:]
    match = _SCALAR_TOKEN_RE.match(text)
    if match is None:
        raise ConfigurationError(f"cannot parse TOML value from {text!r}")
    token = match.group(0)
    rest = text[len(token):]
    if token == "true":
        return True, rest
    if token == "false":
        return False, rest
    if _INT_RE.match(token):
        return int(token.replace("_", "")), rest
    try:
        return float(token), rest
    except ValueError:
        raise ConfigurationError(
            f"unsupported TOML value {token!r} (the spec-file subset "
            "allows strings, booleans, numbers and flat arrays)"
        ) from None


def _loads_fallback(text: str) -> Dict[str, Any]:
    """Parse the supported TOML subset without :mod:`tomllib`."""
    root: Dict[str, Any] = {}
    table = root
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            end = line.find("]")
            if end < 0:
                raise ConfigurationError(
                    f"line {lineno}: unterminated table header {line!r}"
                )
            table = root
            for part in line[1:end].split("."):
                name = part.strip().strip('"')
                if not name:
                    raise ConfigurationError(
                        f"line {lineno}: empty table-name component"
                    )
                table = table.setdefault(name, {})
                if not isinstance(table, dict):
                    raise ConfigurationError(
                        f"line {lineno}: {name!r} is both a key and a table"
                    )
            continue
        key, sep, value_text = line.partition("=")
        if not sep:
            raise ConfigurationError(
                f"line {lineno}: expected 'key = value', got {line!r}"
            )
        value, rest = _parse_value(value_text)
        rest = rest.strip()
        if rest and not rest.startswith("#"):
            raise ConfigurationError(
                f"line {lineno}: trailing characters {rest!r}"
            )
        table[key.strip().strip('"')] = value
    return root


def loads(text: str) -> Dict[str, Any]:
    """Parse a platform spec file's TOML text into nested dicts."""
    if _tomllib is not None:
        try:
            return _tomllib.loads(text)
        except _tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML: {exc}") from exc
    return _loads_fallback(text)
