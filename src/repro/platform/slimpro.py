"""Model of the SLIMpro management processor's voltage interface.

Both X-Gene chips carry a *Scalable Lightweight Intelligent Management*
processor (SLIMpro) that monitors sensors and regulates the supply voltage
of the PCP power domain (Section II.A). The real interface is an I2C
mailbox reachable from the host kernel; this model keeps its two relevant
properties:

* a **single rail** — one voltage for all cores of the chip;
* a **quantised range** — requests are clamped to the supported range and
  snapped to the regulator step (the paper characterizes in 10 mV steps;
  the regulator itself supports 5 mV granularity).

The model also accounts for the regulator settle latency so simulations can
charge a (tiny) transition cost for every voltage change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional

from ..errors import VoltageRangeError


@dataclass
class VoltageTransition:
    """Record of one voltage change, for traces and tests."""

    time_s: float
    from_mv: int
    to_mv: int


class SlimPro:
    """Voltage regulator of the PCP domain, plus its transition log.

    Parameters
    ----------
    nominal_mv:
        Power-on voltage of the rail.
    min_mv / max_mv:
        Supported regulator range. The paper only ever scales *down* from
        nominal, so ``max_mv`` defaults to the nominal voltage.
    step_mv:
        Regulator granularity; requests snap to multiples of this step.
    settle_time_s:
        Time for the rail to settle after a request; the system simulator
        charges this as a stall when raising the voltage (the fail-safe
        protocol of Section VI.A raises voltage *before* frequency).
    """

    def __init__(
        self,
        nominal_mv: int,
        min_mv: int,
        max_mv: Optional[int] = None,
        step_mv: int = 5,
        settle_time_s: float = 50e-6,
    ):
        if step_mv <= 0:
            raise VoltageRangeError(f"step_mv must be positive, got {step_mv}")
        self.nominal_mv = int(nominal_mv)
        self.min_mv = int(min_mv)
        self.max_mv = int(max_mv if max_mv is not None else nominal_mv)
        if not self.min_mv <= self.nominal_mv <= self.max_mv:
            raise VoltageRangeError(
                f"nominal {nominal_mv} mV outside supported range "
                f"[{self.min_mv}, {self.max_mv}] mV"
            )
        self.step_mv = int(step_mv)
        self.settle_time_s = float(settle_time_s)
        self._voltage_mv = self.nominal_mv
        self.transitions: List[VoltageTransition] = []
        self._listeners: List[Callable[[int, int], None]] = []

    @property
    def voltage_mv(self) -> int:
        """Current rail voltage in mV."""
        return self._voltage_mv

    def quantize(self, voltage_mv: float) -> int:
        """Snap a request to the regulator step (rounding up, for safety).

        Rounding up means a quantised request never lands *below* the
        caller's intended level, which matters when the caller is setting
        a safe-Vmin floor.
        """
        steps, rem = divmod(int(round(voltage_mv)), self.step_mv)
        if rem:
            steps += 1
        return steps * self.step_mv

    def set_voltage(self, voltage_mv: float, time_s: float = 0.0) -> int:
        """Request a rail voltage; returns the actually-applied value.

        Raises :class:`VoltageRangeError` when the request falls outside
        the regulator's supported range.
        """
        target = self.quantize(voltage_mv)
        if not self.min_mv <= target <= self.max_mv:
            raise VoltageRangeError(
                f"requested {voltage_mv:.0f} mV (quantised {target} mV) "
                f"outside [{self.min_mv}, {self.max_mv}] mV"
            )
        if target != self._voltage_mv:
            previous = self._voltage_mv
            self._voltage_mv = target
            self.transitions.append(VoltageTransition(time_s, previous, target))
            for listener in self._listeners:
                listener(previous, target)
        return self._voltage_mv

    def reset_to_nominal(self, time_s: float = 0.0) -> int:
        """Return the rail to its power-on (nominal) voltage."""
        return self.set_voltage(self.nominal_mv, time_s)

    def add_listener(self, callback: Callable[[int, int], None]) -> None:
        """Register ``callback(old_mv, new_mv)`` for every transition."""
        self._listeners.append(callback)

    def transition_count(self) -> int:
        """Number of voltage changes applied so far."""
        return len(self.transitions)
