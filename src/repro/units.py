"""Unit helpers and constants shared across the package.

The library stores voltages in millivolts (mV), frequencies in hertz (Hz),
power in watts (W), energy in joules (J) and time in seconds (s). These
helpers keep conversions explicit at API boundaries.
"""

from __future__ import annotations

#: One megahertz in hertz.
MHZ = 1_000_000
#: One gigahertz in hertz.
GHZ = 1_000_000_000

#: Cycle window the paper's daemon uses for L3C-rate measurements.
ONE_MILLION_CYCLES = 1_000_000


def ghz(value: float) -> int:
    """Convert a frequency expressed in GHz to an integer number of Hz."""
    return int(round(value * GHZ))


def mhz(value: float) -> int:
    """Convert a frequency expressed in MHz to an integer number of Hz."""
    return int(round(value * MHZ))


def hz_to_ghz(value: float) -> float:
    """Convert a frequency in Hz to GHz."""
    return value / GHZ


def mv_to_v(value_mv: float) -> float:
    """Convert millivolts to volts."""
    return value_mv / 1000.0


def v_to_mv(value_v: float) -> float:
    """Convert volts to millivolts."""
    return value_v * 1000.0


def joules(power_w: float, seconds: float) -> float:
    """Energy in joules for constant power over an interval."""
    return power_w * seconds


def fmt_freq(freq_hz: float) -> str:
    """Human-readable frequency, e.g. ``2.4GHz`` or ``900MHz``."""
    if freq_hz >= GHZ and (freq_hz % (100 * MHZ) == 0 or freq_hz >= 10 * GHZ):
        return f"{freq_hz / GHZ:.4g}GHz"
    return f"{freq_hz / MHZ:.4g}MHz"


def fmt_mv(voltage_mv: float) -> str:
    """Human-readable voltage, e.g. ``870mV``."""
    return f"{voltage_mv:.0f}mV"
