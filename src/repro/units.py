"""Unit helpers and constants shared across the package.

The library stores voltages in millivolts (mV), frequencies in hertz (Hz),
power in watts (W), energy in joules (J) and time in seconds (s). These
helpers keep conversions explicit at API boundaries.
"""

from __future__ import annotations

from typing import Annotated


class Unit:
    """Dimension marker carried by the ``Annotated`` unit aliases below.

    Runtime no-op: the marker exists so static tooling (reprolint's
    RL008 interprocedural units inference) can read the declared unit of
    an annotated parameter or return value straight from the AST.
    """

    __slots__ = ("symbol",)

    def __init__(self, symbol: str) -> None:
        self.symbol = symbol

    def __repr__(self) -> str:
        return f"Unit({self.symbol!r})"


# -- Annotated unit aliases ----------------------------------------------------
#
# Annotate unit-bearing signatures with these aliases instead of bare
# ``float``/``int``. They type-check identically to their base type but
# declare the physical unit to RL008, which propagates units through
# call chains and reports mV/V- or Hz/GHz-style mixups with the full
# inference chain. See docs/STATIC_ANALYSIS.md ("Declaring units").

#: Voltage in millivolts — the library-wide voltage convention.
Millivolts = Annotated[float, Unit("mV")]
#: Voltage in volts (display/API boundaries only).
Volts = Annotated[float, Unit("V")]
#: Frequency in hertz — the library-wide frequency convention.
Hertz = Annotated[float, Unit("Hz")]
#: Frequency in hertz, integer-valued (ladder points, spec fields).
HertzInt = Annotated[int, Unit("Hz")]
#: Frequency in megahertz (converter inputs only).
Megahertz = Annotated[float, Unit("MHz")]
#: Frequency in gigahertz (converter inputs only).
Gigahertz = Annotated[float, Unit("GHz")]
#: Power in watts — the library-wide power convention.
Watts = Annotated[float, Unit("W")]
#: Energy in joules.
Joules = Annotated[float, Unit("J")]
#: Time in seconds.
Seconds = Annotated[float, Unit("s")]

#: One megahertz in hertz.
MHZ = 1_000_000
#: One gigahertz in hertz.
GHZ = 1_000_000_000

#: Cycle window the paper's daemon uses for L3C-rate measurements.
ONE_MILLION_CYCLES = 1_000_000


def ghz(value: Gigahertz) -> HertzInt:
    """Convert a frequency expressed in GHz to an integer number of Hz."""
    return int(round(value * GHZ))


def mhz(value: Megahertz) -> HertzInt:
    """Convert a frequency expressed in MHz to an integer number of Hz."""
    return int(round(value * MHZ))


def hz_to_ghz(value: Hertz) -> Gigahertz:
    """Convert a frequency in Hz to GHz."""
    return value / GHZ


def mv_to_v(value_mv: Millivolts) -> Volts:
    """Convert millivolts to volts."""
    return value_mv / 1000.0


def v_to_mv(value_v: Volts) -> Millivolts:
    """Convert volts to millivolts."""
    return value_v * 1000.0


def joules(power_w: Watts, seconds: Seconds) -> Joules:
    """Energy in joules for constant power over an interval."""
    return power_w * seconds


def fmt_freq(freq_hz: Hertz) -> str:
    """Human-readable frequency, e.g. ``2.4GHz`` or ``900MHz``."""
    if freq_hz >= GHZ and (freq_hz % (100 * MHZ) == 0 or freq_hz >= 10 * GHZ):
        return f"{freq_hz / GHZ:.4g}GHz"
    return f"{freq_hz / MHZ:.4g}MHz"


def fmt_mv(voltage_mv: Millivolts) -> str:
    """Human-readable voltage, e.g. ``870mV``."""
    return f"{voltage_mv:.0f}mV"
