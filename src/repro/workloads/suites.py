"""The benchmark pool: 6 NPB + 29 SPEC CPU2006 + 6 PARSEC profiles.

The paper uses three benchmark groups (Section II.B):

* the **25-benchmark characterization set** — 6 NPB + 6 PARSEC parallel
  programs and 13 SPEC CPU2006 single-thread programs — for the Vmin and
  energy studies (Figs. 3-12);
* the **35-program evaluation pool** — all 29 SPEC CPU2006 plus the
  6 NPB programs — from which the server-workload generator draws
  (Section VI.B);
* the **Fig. 11/12 subset** — namd, EP (most CPU-intensive) and milc,
  CG, FT (most memory-intensive).

Profile values are calibrated, not measured: they are chosen so the
paper's published behaviours fall out of the models — CG/FT collapse
under full-chip contention while namd/EP do not (Fig. 8), the 3 K
L3C-per-1M-cycles threshold separates the same programs the paper
separates (Fig. 9), and clustered-vs-spreaded energy differences span
roughly -10 %..+14 % (Fig. 7).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigurationError
from .profiles import BenchmarkProfile, Suite

# (name, parallel, ref_time_s, mem_fraction, l3_rate, bw_gbs,
#  l2_sensitivity, activity, vmin_delta_mv, spec_class)
_NPB_ROWS = (
    ("CG", True, 60.0, 0.8, 14000.0, 8.0, 0.70, 0.85, -6.0, ""),
    ("EP", True, 50.0, 0.03, 60.0, 0.05, 0.05, 1.25, 8.0, ""),
    ("FT", True, 80.0, 0.72, 10500.0, 7.0, 0.60, 0.90, -4.0, ""),
    ("IS", True, 30.0, 0.68, 9000.0, 6.5, 0.50, 0.80, -10.0, ""),
    ("LU", True, 90.0, 0.38, 2500.0, 2.5, 0.45, 1.05, 2.0, ""),
    ("MG", True, 70.0, 0.62, 7500.0, 5.5, 0.55, 0.90, -2.0, ""),
)

_PARSEC_ROWS = (
    ("swaptions", True, 55.0, 0.04, 90.0, 0.08, 0.05, 1.20, 12.0, ""),
    ("blackscholes", True, 40.0, 0.08, 250.0, 0.20, 0.10, 1.15, 10.0, ""),
    ("fluidanimate", True, 65.0, 0.33, 2600.0, 1.8, 0.40, 1.00, 0.0, ""),
    ("canneal", True, 75.0, 0.65, 6800.0, 4.5, 0.50, 0.75, -8.0, ""),
    ("bodytrack", True, 60.0, 0.18, 900.0, 0.70, 0.25, 1.10, 6.0, ""),
    ("dedup", True, 45.0, 0.42, 2850.0, 3.0, 0.50, 0.95, -5.0, ""),
)

_SPEC_ROWS = (
    # SPEC CPU2006 INT
    ("perlbench", False, 160.0, 0.15, 800.0, 0.60, 0.30, 1.10, 5.0, "INT"),
    ("bzip2", False, 120.0, 0.25, 1700.0, 1.20, 0.35, 1.00, 4.0, "INT"),
    ("gcc", False, 110.0, 0.32, 2900.0, 2.00, 0.45, 1.00, 1.0, "INT"),
    ("mcf", False, 150.0, 0.78, 12500.0, 7.50, 0.65, 0.70, -12.0, "INT"),
    ("gobmk", False, 130.0, 0.10, 450.0, 0.30, 0.20, 1.15, 9.0, "INT"),
    ("hmmer", False, 100.0, 0.05, 150.0, 0.10, 0.10, 1.20, 14.0, "INT"),
    ("sjeng", False, 140.0, 0.08, 300.0, 0.25, 0.15, 1.15, 11.0, "INT"),
    ("libquantum", False, 135.0, 0.72, 9800.0, 6.80, 0.55, 0.80, -9.0, "INT"),
    ("h264ref", False, 125.0, 0.12, 600.0, 0.40, 0.20, 1.20, 7.0, "INT"),
    ("omnetpp", False, 145.0, 0.55, 5200.0, 3.50, 0.50, 0.90, -3.0, "INT"),
    ("astar", False, 120.0, 0.35, 2200.0, 2.20, 0.40, 1.00, 0.0, "INT"),
    ("xalancbmk", False, 115.0, 0.36, 2300.0, 2.40, 0.45, 0.95, -1.0, "INT"),
    # SPEC CPU2006 FP
    ("bwaves", False, 170.0, 0.58, 6000.0, 4.20, 0.50, 0.90, -4.0, "FP"),
    ("gamess", False, 150.0, 0.04, 120.0, 0.09, 0.08, 1.25, 15.0, "FP"),
    ("milc", False, 140.0, 0.74, 11000.0, 7.20, 0.60, 0.80, -11.0, "FP"),
    ("zeusmp", False, 130.0, 0.4, 2700.0, 2.70, 0.45, 1.00, 1.0, "FP"),
    ("gromacs", False, 110.0, 0.09, 350.0, 0.28, 0.15, 1.20, 10.0, "FP"),
    ("cactusADM", False, 160.0, 0.52, 4800.0, 3.30, 0.50, 0.95, -2.0, "FP"),
    ("leslie3d", False, 150.0, 0.62, 6500.0, 4.60, 0.50, 0.85, -6.0, "FP"),
    ("namd", False, 120.0, 0.02, 100.0, 0.07, 0.05, 1.30, 16.0, "FP"),
    ("dealII", False, 115.0, 0.24, 1900.0, 1.30, 0.35, 1.05, 3.0, "FP"),
    ("soplex", False, 135.0, 0.6, 6200.0, 4.40, 0.55, 0.85, -7.0, "FP"),
    ("povray", False, 105.0, 0.03, 80.0, 0.06, 0.05, 1.25, 13.0, "FP"),
    ("calculix", False, 125.0, 0.11, 500.0, 0.35, 0.20, 1.15, 8.0, "FP"),
    ("GemsFDTD", False, 155.0, 0.66, 7800.0, 5.20, 0.55, 0.85, -8.0, "FP"),
    ("tonto", False, 140.0, 0.14, 700.0, 0.50, 0.25, 1.10, 6.0, "FP"),
    ("lbm", False, 120.0, 0.76, 13000.0, 8.20, 0.60, 0.75, -13.0, "FP"),
    ("wrf", False, 150.0, 0.34, 2100.0, 2.10, 0.40, 1.00, 0.0, "FP"),
    ("sphinx3", False, 130.0, 0.36, 2350.0, 2.40, 0.45, 0.95, -2.0, "FP"),
)


def _build_registry() -> Dict[str, BenchmarkProfile]:
    registry: Dict[str, BenchmarkProfile] = {}
    for suite, rows in (
        (Suite.NPB, _NPB_ROWS),
        (Suite.PARSEC, _PARSEC_ROWS),
        (Suite.SPEC_CPU2006, _SPEC_ROWS),
    ):
        for row in rows:
            (name, parallel, ref_s, memf, l3, bw, l2s, act, vd, cls) = row
            registry[name] = BenchmarkProfile(
                name=name,
                suite=suite,
                parallel=parallel,
                ref_time_s=ref_s,
                mem_fraction=memf,
                l3_rate_per_mcycles=l3,
                bandwidth_gbs=bw,
                l2_sensitivity=l2s,
                activity=act,
                vmin_delta_mv=vd,
                spec_class=cls,
            )
    return registry


_REGISTRY = _build_registry()

#: The 13 SPEC CPU2006 programs of the 25-benchmark characterization set.
CHARACTERIZATION_SPEC: Tuple[str, ...] = (
    "namd", "milc", "mcf", "lbm", "libquantum", "soplex", "leslie3d",
    "gcc", "hmmer", "h264ref", "gobmk", "povray", "gamess",
)

#: The five benchmarks shown in Figs. 11/12, ordered from the most
#: CPU-intensive to the most memory-intensive (paper Section V.A).
FIGURE11_SET: Tuple[str, ...] = ("namd", "EP", "milc", "CG", "FT")


def get_benchmark(name: str) -> BenchmarkProfile:
    """Look up one benchmark profile by name (case-sensitive)."""
    if name not in _REGISTRY:
        raise ConfigurationError(
            f"unknown benchmark {name!r}; see all_benchmarks()"
        )
    return _REGISTRY[name]


def all_benchmarks() -> List[BenchmarkProfile]:
    """All 41 profiles, in suite order."""
    return list(_REGISTRY.values())


def suite_benchmarks(suite: Suite) -> List[BenchmarkProfile]:
    """Profiles of one suite."""
    return [p for p in _REGISTRY.values() if p.suite is suite]


def characterization_set() -> List[BenchmarkProfile]:
    """The paper's 25-benchmark characterization set (Section II.B)."""
    npb = suite_benchmarks(Suite.NPB)
    parsec = suite_benchmarks(Suite.PARSEC)
    spec = [get_benchmark(name) for name in CHARACTERIZATION_SPEC]
    return npb + parsec + spec


def evaluation_pool() -> List[BenchmarkProfile]:
    """The 35-program pool of the workload generator (Section VI.B):
    all 29 SPEC CPU2006 programs plus the 6 NPB programs."""
    return suite_benchmarks(Suite.SPEC_CPU2006) + suite_benchmarks(Suite.NPB)


def figure11_set() -> List[BenchmarkProfile]:
    """The five benchmarks of Figs. 11/12, CPU-intensive first."""
    return [get_benchmark(name) for name in FIGURE11_SET]
