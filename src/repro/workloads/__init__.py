"""Workload substrate: benchmark profiles, suites, server-load generator."""

from .generator import (
    JobSpec,
    LoadPhase,
    ServerWorkloadGenerator,
    Workload,
)
from .phases import (
    AnyBenchmark,
    PhasedBenchmark,
    WorkloadPhase,
    all_phased,
    get_phased,
    make_phased,
    phase_boundaries,
    profile_at,
    resolve_benchmark,
)
from .profiles import REFERENCE_FREQ_HZ, BenchmarkProfile, Suite
from .stressmarks import didt_virus, memory_virus, stressmark_set
from .suites import (
    CHARACTERIZATION_SPEC,
    FIGURE11_SET,
    all_benchmarks,
    characterization_set,
    evaluation_pool,
    figure11_set,
    get_benchmark,
    suite_benchmarks,
)

__all__ = [
    "AnyBenchmark",
    "BenchmarkProfile",
    "CHARACTERIZATION_SPEC",
    "FIGURE11_SET",
    "JobSpec",
    "LoadPhase",
    "PhasedBenchmark",
    "WorkloadPhase",
    "REFERENCE_FREQ_HZ",
    "ServerWorkloadGenerator",
    "Suite",
    "Workload",
    "all_benchmarks",
    "all_phased",
    "characterization_set",
    "didt_virus",
    "evaluation_pool",
    "figure11_set",
    "get_benchmark",
    "get_phased",
    "make_phased",
    "memory_virus",
    "phase_boundaries",
    "profile_at",
    "resolve_benchmark",
    "stressmark_set",
    "suite_benchmarks",
]
