"""Phased benchmarks: programs whose class changes mid-run.

The paper's daemon explicitly handles processes that *change state* "from
CPU-intensive to memory-intensive and vice versa" (Section VI.A, case
(b) of the Fig. 13 flow): on a classification flip the clocks and the
rail retune in place, without migrations. Real programs do this —
alternating compute and data-movement phases — and prior work the paper
cites ([21], [22]) built whole DVFS policies around phase tracking.

This module models such programs: a :class:`PhasedBenchmark` strings
together existing profiles, each covering a fraction of the total work.
The simulator switches the active profile as progress crosses phase
boundaries, the PMU rates shift accordingly, and the daemon must notice
and retune — exactly the scenario the paper's case (b) covers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from ..errors import ConfigurationError
from .profiles import BenchmarkProfile
from .suites import get_benchmark

#: Anything the simulator accepts as a process's behaviour description.
AnyBenchmark = Union[BenchmarkProfile, "PhasedBenchmark"]


@dataclass(frozen=True)
class WorkloadPhase:
    """One phase: a fraction of the total work behaving like a profile."""

    fraction: float
    profile: BenchmarkProfile

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction <= 1.0:
            raise ConfigurationError(
                f"phase fraction must be in (0, 1], got {self.fraction}"
            )


@dataclass(frozen=True)
class PhasedBenchmark:
    """A program whose coarse-grain behaviour changes across phases.

    All phases must agree on the threading semantics (``parallel``); the
    total reference time is the fraction-weighted sum of the phases'.
    """

    name: str
    phases: Tuple[WorkloadPhase, ...]

    def __post_init__(self) -> None:
        if not self.phases:
            raise ConfigurationError(f"{self.name}: needs at least 1 phase")
        total = sum(p.fraction for p in self.phases)
        if abs(total - 1.0) > 1e-9:
            raise ConfigurationError(
                f"{self.name}: phase fractions sum to {total}, not 1"
            )
        kinds = {p.profile.parallel for p in self.phases}
        if len(kinds) != 1:
            raise ConfigurationError(
                f"{self.name}: phases mix parallel and replicated profiles"
            )

    # -- BenchmarkProfile-compatible surface --------------------------------

    @property
    def parallel(self) -> bool:
        """Threading semantics, shared by all phases."""
        return self.phases[0].profile.parallel

    @property
    def parallel_efficiency(self) -> float:
        """Weighted parallel efficiency across phases."""
        return sum(
            p.fraction * p.profile.parallel_efficiency for p in self.phases
        )

    @property
    def ref_time_s(self) -> float:
        """Total reference time: fraction-weighted over phases."""
        return sum(p.fraction * p.profile.ref_time_s for p in self.phases)

    @property
    def mem_fraction(self) -> float:
        """Time-weighted memory fraction (for summaries only)."""
        total = self.ref_time_s
        return sum(
            p.fraction * p.profile.ref_time_s * p.profile.mem_fraction
            for p in self.phases
        ) / total

    @property
    def vmin_delta_mv(self) -> float:
        """Worst (largest) Vmin delta across phases — safety-relevant."""
        return max(p.profile.vmin_delta_mv for p in self.phases)

    # -- phase lookup ------------------------------------------------------

    def boundaries(self) -> List[float]:
        """Done-fraction boundaries between phases (exclusive of 0, 1)."""
        bounds: List[float] = []
        done = 0.0
        for phase in self.phases[:-1]:
            done += phase.fraction
            bounds.append(done)
        return bounds

    def profile_at(self, done_fraction: float) -> BenchmarkProfile:
        """Active profile once ``done_fraction`` of the work completed."""
        if done_fraction < 0.0:
            raise ConfigurationError("done_fraction must be >= 0")
        cumulative = 0.0
        for phase in self.phases:
            cumulative += phase.fraction
            if done_fraction < cumulative - 1e-12:
                return phase.profile
        return self.phases[-1].profile


def profile_at(benchmark: AnyBenchmark, done_fraction: float) -> BenchmarkProfile:
    """Active profile of any benchmark object at a progress point."""
    if isinstance(benchmark, PhasedBenchmark):
        return benchmark.profile_at(done_fraction)
    return benchmark


def phase_boundaries(benchmark: AnyBenchmark) -> List[float]:
    """Done-fraction phase boundaries (empty for static profiles)."""
    if isinstance(benchmark, PhasedBenchmark):
        return benchmark.boundaries()
    return []


def make_phased(
    name: str, parts: Sequence[Tuple[float, str]]
) -> PhasedBenchmark:
    """Build a phased benchmark from (fraction, profile-name) pairs."""
    return PhasedBenchmark(
        name=name,
        phases=tuple(
            WorkloadPhase(fraction, get_benchmark(profile_name))
            for fraction, profile_name in parts
        ),
    )


def _build_phased_registry() -> Dict[str, PhasedBenchmark]:
    """A few representative phased programs.

    * ``stream-compute`` — a solver alternating data sweeps (milc-like)
      with dense compute (namd-like);
    * ``setup-then-crunch`` — memory-bound initialization followed by a
      long CPU-bound kernel (the shape of many HPC codes);
    * ``compute-then-writeback`` — the reverse: compute then a long
      memory-bound output phase;
    * ``sawtooth`` — rapid alternation stressing the daemon's hysteresis.
    """
    return {
        phased.name: phased
        for phased in (
            make_phased(
                "stream-compute",
                [(0.25, "milc"), (0.25, "namd"),
                 (0.25, "milc"), (0.25, "namd")],
            ),
            make_phased(
                "setup-then-crunch", [(0.3, "mcf"), (0.7, "gamess")]
            ),
            make_phased(
                "compute-then-writeback", [(0.6, "povray"), (0.4, "lbm")]
            ),
            make_phased(
                "sawtooth",
                [(0.125, "CG"), (0.125, "EP")] * 4,
            ),
        )
    }


_PHASED_REGISTRY = _build_phased_registry()


def get_phased(name: str) -> PhasedBenchmark:
    """Look up a built-in phased benchmark."""
    if name not in _PHASED_REGISTRY:
        raise ConfigurationError(
            f"unknown phased benchmark {name!r}; known: "
            f"{sorted(_PHASED_REGISTRY)}"
        )
    return _PHASED_REGISTRY[name]


def all_phased() -> List[PhasedBenchmark]:
    """All built-in phased benchmarks."""
    return list(_PHASED_REGISTRY.values())


def resolve_benchmark(name: str) -> AnyBenchmark:
    """Look up a benchmark by name across both registries."""
    if name in _PHASED_REGISTRY:
        return _PHASED_REGISTRY[name]
    return get_benchmark(name)
