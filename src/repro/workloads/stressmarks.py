"""Stressmarks (micro-viruses) for fast worst-case characterization.

The paper's group previously built "micro-viruses for fast system-level
voltage margins characterization" (reference [18]) and cites automated
dI/dt stressmark generation ([37], [38]): tiny kernels engineered to be
*worse* than any real workload on the axis being characterized, so a
campaign over one stressmark bounds the campaign over a whole benchmark
suite.

Two synthetic viruses are provided:

* :func:`didt_virus` — maximum switching activity and the worst
  workload Vmin delta the population allows: a current-step generator
  that bounds the voltage-noise behaviour of every real profile;
* :func:`memory_virus` — saturates the memory system: the worst case
  for bandwidth contention and uncore activity.

:func:`stressmark_set` feeds them to
:meth:`~repro.core.policy.VminPolicyTable.from_characterization` for a
table that is as safe as the 25-benchmark campaign at a fraction of the
measurement cost (see the stressmark characterization tests).
"""

from __future__ import annotations

from typing import List

from ..vmin.model import workload_delta_limit_mv
from .profiles import BenchmarkProfile, Suite


def didt_virus() -> BenchmarkProfile:
    """A dI/dt stressmark: worst-case switching and Vmin delta.

    Its ``vmin_delta_mv`` sits at the population limit, so any safe-Vmin
    measured while it runs upper-bounds every real program's.
    """
    return BenchmarkProfile(
        name="didt_virus",
        suite=Suite.SPEC_CPU2006,
        parallel=False,
        ref_time_s=10.0,
        mem_fraction=0.02,
        l3_rate_per_mcycles=50.0,
        bandwidth_gbs=0.05,
        l2_sensitivity=0.0,
        activity=1.6,
        vmin_delta_mv=workload_delta_limit_mv(),
    )


def memory_virus() -> BenchmarkProfile:
    """A memory stressmark: saturates the L3/DRAM path."""
    return BenchmarkProfile(
        name="memory_virus",
        suite=Suite.SPEC_CPU2006,
        parallel=False,
        ref_time_s=10.0,
        mem_fraction=0.9,
        l3_rate_per_mcycles=16000.0,
        bandwidth_gbs=9.0,
        l2_sensitivity=0.8,
        activity=0.9,
        vmin_delta_mv=workload_delta_limit_mv() * 0.5,
    )


def stressmark_set() -> List[BenchmarkProfile]:
    """The micro-virus pool for fast worst-case characterization."""
    return [didt_virus(), memory_virus()]
