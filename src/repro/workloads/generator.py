"""Random server-workload generator (Section VI.B).

The paper's evaluation drives both machines with a generated "typical
server workload": programs drawn randomly from a 35-program pool (all 29
SPEC CPU2006 plus the 6 NPB programs), issued at random time slots over a
configurable window, with alternating heavy / average / light / idle load
phases. The generator guarantees that the number of active threads never
exceeds the machine's core count, and a generated workload can be
replayed under different policies for apples-to-apples comparisons.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..errors import ConfigurationError
from .profiles import BenchmarkProfile
from .suites import evaluation_pool


@dataclass(frozen=True)
class JobSpec:
    """One job of a generated workload."""

    job_id: int
    benchmark: str
    nthreads: int
    start_time_s: float


@dataclass(frozen=True)
class Workload:
    """A replayable job sequence for one machine."""

    jobs: Tuple[JobSpec, ...]
    duration_s: float
    max_cores: int
    seed: int

    def __len__(self) -> int:
        return len(self.jobs)

    def total_threads_issued(self) -> int:
        """Sum of thread counts over all jobs."""
        return sum(job.nthreads for job in self.jobs)

    def jobs_sorted(self) -> List[JobSpec]:
        """Jobs ordered by start time (ties by id)."""
        return sorted(self.jobs, key=lambda j: (j.start_time_s, j.job_id))

    # -- serialization (share exact workloads across machines/tools) ------

    def to_json(self) -> str:
        """Serialize to a JSON string (see :meth:`from_json`)."""
        import json

        return json.dumps(
            {
                "duration_s": self.duration_s,
                "max_cores": self.max_cores,
                "seed": self.seed,
                "jobs": [
                    {
                        "job_id": j.job_id,
                        "benchmark": j.benchmark,
                        "nthreads": j.nthreads,
                        "start_time_s": j.start_time_s,
                    }
                    for j in self.jobs
                ],
            },
            indent=2,
        )

    @classmethod
    def from_json(cls, text: str) -> "Workload":
        """Rebuild a workload serialized with :meth:`to_json`."""
        import json

        data = json.loads(text)
        try:
            jobs = tuple(
                JobSpec(
                    job_id=j["job_id"],
                    benchmark=j["benchmark"],
                    nthreads=j["nthreads"],
                    start_time_s=j["start_time_s"],
                )
                for j in data["jobs"]
            )
            return cls(
                jobs=jobs,
                duration_s=data["duration_s"],
                max_cores=data["max_cores"],
                seed=data["seed"],
            )
        except (KeyError, TypeError) as exc:
            raise ConfigurationError(
                f"malformed workload JSON: {exc}"
            ) from exc


@dataclass(frozen=True)
class LoadPhase:
    """One load phase of the generated timeline."""

    start_s: float
    end_s: float
    #: Target core occupancy as a fraction of the machine's cores.
    level: float
    label: str


#: Phase catalogue: (label, weight, min level, max level). The mix skews
#: toward light/average periods with occasional peaks and a few idle
#: stretches, resembling the paper's Fig. 15 load profile.
_PHASE_KINDS = (
    ("heavy", 0.2, 0.70, 1.00),
    ("average", 0.35, 0.35, 0.65),
    ("light", 0.3, 0.10, 0.30),
    ("idle", 0.15, 0.0, 0.0),
)


class ServerWorkloadGenerator:
    """Generates replayable server workloads from a program pool."""

    def __init__(
        self,
        max_cores: int,
        pool: Optional[Sequence[BenchmarkProfile]] = None,
        seed: int = 0,
        phase_min_s: float = 120.0,
        phase_max_s: float = 480.0,
    ):
        if max_cores < 1:
            raise ConfigurationError("max_cores must be >= 1")
        if phase_min_s <= 0 or phase_max_s < phase_min_s:
            raise ConfigurationError("invalid phase length bounds")
        self.max_cores = max_cores
        self.pool = list(pool) if pool is not None else evaluation_pool()
        if not self.pool:
            raise ConfigurationError("program pool is empty")
        self.seed = seed
        self.phase_min_s = phase_min_s
        self.phase_max_s = phase_max_s

    # -- public API -------------------------------------------------------------

    def rng_for(self) -> random.Random:
        """The generator's derived RNG stream.

        The stream is keyed on ``(seed, max_cores)`` so the same seed
        yields the same workload on the same machine size, while two
        machine sizes do not silently share draws. :meth:`generate`
        constructs exactly this stream when no ``rng`` is injected.
        """
        return random.Random(f"workload/{self.seed}/{self.max_cores}")

    def generate(
        self,
        duration_s: float = 3600.0,
        rng: Optional[random.Random] = None,
    ) -> Workload:
        """Generate one workload over ``duration_s`` seconds.

        ``rng`` injects an explicit random stream (tests use this to
        replay or perturb draws); by default each call derives the
        seed-keyed stream from :meth:`rng_for`, so repeated calls with
        the same configuration return identical workloads.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if rng is None:
            rng = self.rng_for()
        phases = self._phases(rng, duration_s)
        occupancy = np.zeros(int(np.ceil(duration_s)) + 1, dtype=np.int64)
        jobs: List[JobSpec] = []
        job_id = 0
        for phase in phases:
            target = int(round(phase.level * self.max_cores))
            if target == 0:
                continue
            failures = 0
            while failures < 40:
                job = self._try_place(
                    rng, job_id, phase, target, occupancy, duration_s
                )
                if job is None:
                    failures += 1
                    continue
                jobs.append(job)
                job_id += 1
        jobs.sort(key=lambda j: (j.start_time_s, j.job_id))
        return Workload(
            jobs=tuple(jobs),
            duration_s=duration_s,
            max_cores=self.max_cores,
            seed=self.seed,
        )

    # -- internals -------------------------------------------------------------

    def _phases(
        self, rng: random.Random, duration_s: float
    ) -> List[LoadPhase]:
        labels = [kind[0] for kind in _PHASE_KINDS]
        weights = [kind[1] for kind in _PHASE_KINDS]
        bounds = {kind[0]: (kind[2], kind[3]) for kind in _PHASE_KINDS}
        phases: List[LoadPhase] = []
        t = 0.0
        while t < duration_s:
            length = rng.uniform(self.phase_min_s, self.phase_max_s)
            end = min(duration_s, t + length)
            label = rng.choices(labels, weights=weights)[0]
            low, high = bounds[label]
            level = rng.uniform(low, high) if high > low else low
            phases.append(LoadPhase(t, end, level, label))
            t = end
        return phases

    def _thread_choices(self, profile: BenchmarkProfile) -> List[int]:
        if not profile.parallel:
            return [1]
        choices = [n for n in (2, 4, 8) if n <= max(2, self.max_cores // 4)]
        return choices or [2]

    def _estimate_duration_s(
        self, profile: BenchmarkProfile, nthreads: int
    ) -> float:
        # Coarse estimate at full speed; a 25% cushion absorbs the
        # slowdown of low-frequency policies so the never-oversubscribed
        # guarantee holds under every configuration.
        base = profile.ref_time_s
        if profile.parallel and nthreads > 1:
            base /= nthreads * profile.parallel_efficiency
        return 1.25 * base

    def _try_place(
        self,
        rng: random.Random,
        job_id: int,
        phase: LoadPhase,
        target_cores: int,
        occupancy: np.ndarray,
        duration_s: float,
    ) -> Optional[JobSpec]:
        profile = rng.choice(self.pool)
        nthreads = rng.choice(self._thread_choices(profile))
        if nthreads > target_cores:
            return None
        start = rng.uniform(phase.start_s, max(phase.start_s, phase.end_s - 1))
        est = self._estimate_duration_s(profile, nthreads)
        lo = int(start)
        hi = min(len(occupancy), int(np.ceil(start + est)) + 1)
        window = occupancy[lo:hi]
        # Phase-level target inside the phase; the hard machine-wide cap
        # (Section VI.B's generator guarantee) applies everywhere else.
        phase_hi = min(hi, int(np.ceil(phase.end_s)))
        if phase_hi > lo and (
            occupancy[lo:phase_hi].max(initial=0) + nthreads > target_cores
        ):
            return None
        if window.max(initial=0) + nthreads > self.max_cores:
            return None
        occupancy[lo:hi] += nthreads
        return JobSpec(
            job_id=job_id,
            benchmark=profile.name,
            nthreads=nthreads,
            start_time_s=round(start, 3),
        )
