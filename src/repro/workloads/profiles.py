"""Benchmark profile model.

Real NPB / SPEC CPU2006 / PARSEC binaries cannot run against a simulated
chip, so each benchmark is represented by a *profile*: the handful of
coarse-grain characteristics that the paper's models and daemon actually
interact with. Profiles are calibrated so the paper's published
classifications and orderings emerge from the models (Figs. 7-9) rather
than being hard-coded labels:

* ``mem_fraction`` — fraction of solo single-thread runtime (at the
  reference clock) stalled on the lower memory hierarchy (L3 + DRAM);
  this part of the runtime does not scale with core frequency
  (Section IV.B).
* ``l3_rate_per_mcycles`` — L3-cache accesses per million cycles in a
  solo run at the reference clock; the daemon's classification metric
  (Fig. 9, threshold 3 K).
* ``bandwidth_gbs`` — DRAM bandwidth demand of one running thread at the
  reference clock, which drives the shared-memory contention model
  (Fig. 8).
* ``l2_sensitivity`` — how much the benchmark suffers when sharing its
  PMD's 256 KB L2 with a sibling thread (clustered allocation, Fig. 7).
* ``activity`` — switching-activity factor (~IPC-proportional) scaling
  dynamic power and droop-event rates.
* ``vmin_delta_mv`` — the benchmark's single-core safe-Vmin delta
  (Section III.A measures up to ~40 mV workload variation in single-core
  runs; the delta fades with active cores per the Vmin model).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigurationError

#: Reference clock at which profile numbers are defined (X-Gene 3 fmax).
REFERENCE_FREQ_HZ = 3_000_000_000


class Suite(enum.Enum):
    """Benchmark suite of origin."""

    NPB = "NPB"
    SPEC_CPU2006 = "SPEC CPU2006"
    PARSEC = "PARSEC"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class BenchmarkProfile:
    """Coarse-grain model of one benchmark (see module docstring)."""

    name: str
    suite: Suite
    #: True for work-splitting parallel programs (NPB, PARSEC): N threads
    #: share one unit of work. False for SPEC: N copies do N units
    #: (Section II.B's normalization discussion).
    parallel: bool
    #: Solo single-thread execution time at the reference clock, seconds.
    ref_time_s: float
    mem_fraction: float
    l3_rate_per_mcycles: float
    bandwidth_gbs: float
    l2_sensitivity: float
    activity: float
    vmin_delta_mv: float
    #: Parallel-section efficiency for work-splitting programs.
    parallel_efficiency: float = 0.95
    #: "INT"/"FP" for SPEC CPU2006, empty otherwise.
    spec_class: str = ""

    def __post_init__(self) -> None:
        if not 0.0 <= self.mem_fraction <= 1.0:
            raise ConfigurationError(
                f"{self.name}: mem_fraction must be in [0, 1]"
            )
        if self.ref_time_s <= 0:
            raise ConfigurationError(f"{self.name}: ref_time_s must be > 0")
        if self.l3_rate_per_mcycles < 0 or self.bandwidth_gbs < 0:
            raise ConfigurationError(
                f"{self.name}: rates must be non-negative"
            )
        if not 0.0 <= self.l2_sensitivity <= 1.0:
            raise ConfigurationError(
                f"{self.name}: l2_sensitivity must be in [0, 1]"
            )
        if self.activity <= 0:
            raise ConfigurationError(f"{self.name}: activity must be > 0")
        if not 0.0 < self.parallel_efficiency <= 1.0:
            raise ConfigurationError(
                f"{self.name}: parallel_efficiency must be in (0, 1]"
            )

    @property
    def cpu_fraction(self) -> float:
        """Fraction of solo runtime spent in the core+L1+L2 part."""
        return 1.0 - self.mem_fraction

    @property
    def cpu_cycles(self) -> float:
        """Core-bound cycles of one unit of work (frequency-invariant)."""
        return self.ref_time_s * self.cpu_fraction * REFERENCE_FREQ_HZ

    @property
    def mem_time_s(self) -> float:
        """Memory-bound seconds of one unit of work at reference speed."""
        return self.ref_time_s * self.mem_fraction

    @property
    def droop_activity(self) -> float:
        """Switching-activity factor reused by the droop-event model."""
        return self.activity

    def is_memory_intensive_reference(self, threshold: float = 3000.0) -> bool:
        """Ground-truth class at the reference operating point.

        This is what the profile *is*; the daemon must instead *infer*
        the class from PMU readings (which shift with frequency and
        contention), exactly as on hardware.
        """
        return self.l3_rate_per_mcycles > threshold
