"""repro — reproduction of "Adaptive Voltage/Frequency Scaling and Core
Allocation for Balanced Energy and Performance on Multicore CPUs"
(Papadimitriou, Chatzidimitriou, Gizopoulos — HPCA 2019).

The package models the paper's two ARMv8 micro-servers (X-Gene 2 and
X-Gene 3) in software — chip, power, safe-Vmin/droop behaviour,
benchmark performance and a Linux-like server — and runs the paper's
actual contribution on top: an online monitoring daemon that classifies
processes by their L3-cache access rate and steers core allocation,
per-PMD frequency and the shared rail voltage for energy efficiency.

Quickstart::

    from repro import run_evaluation

    result = run_evaluation("xgene3", duration_s=600)
    for row in result.rows():
        print(row.config, f"{row.energy_savings_pct:.1f}%")

See :mod:`repro.experiments` for one regenerator per paper table/figure.
"""

from .allocation import Allocation, cores_for, utilized_pmd_count
from .core import (
    L3RateClassifier,
    MonitoringDaemon,
    PlacementEngine,
    VminPolicyTable,
    run_configuration,
    run_evaluation,
)
from .policies import (
    Action,
    BaselinePolicy,
    Observation,
    OnlineMonitoringDaemon,
    Policy,
    PolicyStack,
    SafeVminPolicy,
    resolve_policy,
)
from .errors import (
    ConfigurationError,
    PlacementError,
    ReproError,
    SilentDataCorruption,
    SystemCrash,
    VoltageFault,
)
from .perf import execution_state, job_duration_s
from .platform import Chip, ChipSpec, get_spec, xgene2_spec, xgene3_spec
from .power import EnergyMeter, PowerModel, ed2p, edp
from .sim import ServerSystem, SystemResult
from .vmin import FaultModel, VminCampaign, VminModel
from .workloads import (
    BenchmarkProfile,
    ServerWorkloadGenerator,
    Workload,
    all_benchmarks,
    characterization_set,
    get_benchmark,
)

__version__ = "1.0.0"

__all__ = [
    "Action",
    "Allocation",
    "BaselinePolicy",
    "BenchmarkProfile",
    "Chip",
    "ChipSpec",
    "ConfigurationError",
    "EnergyMeter",
    "FaultModel",
    "L3RateClassifier",
    "MonitoringDaemon",
    "Observation",
    "OnlineMonitoringDaemon",
    "PlacementEngine",
    "PlacementError",
    "Policy",
    "PolicyStack",
    "PowerModel",
    "ReproError",
    "SafeVminPolicy",
    "ServerSystem",
    "ServerWorkloadGenerator",
    "SilentDataCorruption",
    "SystemCrash",
    "SystemResult",
    "VminCampaign",
    "VminModel",
    "VminPolicyTable",
    "VoltageFault",
    "Workload",
    "all_benchmarks",
    "characterization_set",
    "cores_for",
    "ed2p",
    "edp",
    "execution_state",
    "get_benchmark",
    "get_spec",
    "job_duration_s",
    "resolve_policy",
    "run_configuration",
    "run_evaluation",
    "utilized_pmd_count",
    "xgene2_spec",
    "xgene3_spec",
]
