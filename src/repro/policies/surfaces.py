"""The control-plane surfaces: what a policy may see and may request.

The paper's online daemon (Section VI) is a decision loop: read the
machine (PMU counters, utilized PMDs, the rail, wall-clock time), decide
a configuration (voltage set-point, per-PMD clocks, placement), actuate
it through SLIMpro/CPPC. This module fixes that loop as two explicit
typed surfaces:

* :class:`Observation` — a read-only *live* view of the simulated server
  handed to a policy at every control event. It is deliberately a thin
  window over :class:`~repro.sim.system.ServerSystem` rather than a
  snapshot: properties read the current machine state at access time, so
  a policy pays only for what it looks at (the hot dispatch path of the
  incremental engine stays allocation-free for policies that ignore an
  event).
* :class:`Action` — everything a policy may request back: a fail-safe
  voltage raise, thread migrations, per-PMD frequency set-points, a
  settle voltage and (for capping policies) a chip power cap. ``None``
  fields mean "no request"; the actuation layer
  (:mod:`repro.policies.actuation`) applies the non-``None`` fields in
  the paper's fail-safe order (raise -> reconfigure -> settle).

:class:`Policy` replaces the old ``Controller`` ABC. A policy is a
single function of the observation::

    def decide(self, obs: Observation) -> Optional[Action]

dispatched on five event kinds (:class:`PolicyEvent`). Policies that
need the *post-actuation* machine state (the Fig. 13 flow tracer, or
audit tooling) additionally override :meth:`Policy.on_applied`; the
engine detects the override once per run and skips the hook entirely
otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..platform.chip import Chip, ChipState
    from ..platform.specs import ChipSpec
    from ..sim.process import SimProcess
    from ..sim.system import ServerSystem


class PolicyEvent:
    """The five control events a policy is consulted on.

    Matches the old ``Controller`` hook set one-to-one so the ported
    policies keep their exact callback cadence (and the
    ``sim.controller.callbacks`` telemetry counter its meaning):

    * ``START`` — simulation begins, before any arrival (park clocks,
      set the initial rail);
    * ``ADMIT`` — a process is about to be placed (pre-invocation
      fail-safe raise; optionally choose the cores);
    * ``STARTED`` — a process was placed and occupies its cores;
    * ``FINISHED`` — a process released its cores;
    * ``TICK`` — one monitor period elapsed (only delivered when the
      policy sets :attr:`Policy.monitor_period_s`).
    """

    START = "start"
    ADMIT = "admit"
    STARTED = "started"
    FINISHED = "finished"
    TICK = "tick"


class Observation:
    """Read-only live view of the server for one policy decision.

    Everything the paper's monitor can read is reachable from here: the
    wall clock, rail voltage, per-PMD clocks and occupancy, the PMU
    droop counters, the running processes (whose ``counters`` carry the
    cycles/L3C snapshot the classifier consumes) and the energy meter.
    Properties are computed on access against the *current* machine
    state — inside :meth:`Policy.on_applied` the same observation
    object therefore shows the post-actuation state.
    """

    __slots__ = ("system", "event", "process")

    def __init__(
        self,
        system: "ServerSystem",
        event: str,
        process: Optional["SimProcess"] = None,
    ):
        #: The system under control (treat as read-only).
        self.system = system
        #: One of the :class:`PolicyEvent` kinds.
        self.event = event
        #: The process the event concerns (``ADMIT``/``STARTED``/
        #: ``FINISHED``), else ``None``.
        self.process = process

    # -- wall clock ----------------------------------------------------------

    @property
    def now(self) -> float:
        """Simulated wall-clock time, seconds."""
        return self.system.now

    # -- chip state ----------------------------------------------------------

    @property
    def spec(self) -> "ChipSpec":
        """Platform specification of the chip under control."""
        return self.system.spec

    @property
    def chip(self) -> "Chip":
        """The chip (treat as read-only; actuate via :class:`Action`)."""
        return self.system.chip

    @property
    def voltage_mv(self) -> int:
        """Current rail voltage, mV."""
        return self.system.chip.voltage_mv

    @property
    def active_cores(self) -> frozenset:
        """Cores with a running thread."""
        return self.system.chip.active_cores

    @property
    def utilized_pmds(self) -> frozenset:
        """PMDs with at least one running thread (the droop class input)."""
        return self.system.chip.utilized_pmds

    def chip_state(self) -> "ChipState":
        """Immutable snapshot of rail, clocks and occupancy."""
        return self.system.chip.state()

    def pmd_is_idle(self, pmd: int) -> bool:
        """True when no core of ``pmd`` runs a thread."""
        return self.system.chip.pmd_is_fully_idle(pmd)

    def pmd_frequency_hz(self, pmd: int) -> int:
        """Current clock of one PMD, Hz."""
        return self.system.chip.cppc.frequency_of(pmd)

    # -- PMU / power ---------------------------------------------------------

    @property
    def droop_events(self) -> Dict[int, int]:
        """PMU droop-detection counters per severity bin."""
        return self.system.chip.pmu.counts()

    @property
    def energy_j(self) -> float:
        """Accumulated chip energy since the run started, J."""
        return self.system.meter.energy_j

    # -- workload ------------------------------------------------------------

    def running_processes(self) -> List["SimProcess"]:
        """Currently running processes (counters, class, cores)."""
        return self.system.running_processes()

    @property
    def queue_depth(self) -> int:
        """Arrived-but-unplaced processes waiting for cores."""
        return len(self.system.queue)

    def process_frequency_hz(self, process: "SimProcess") -> int:
        """Lowest clock among a process's occupied cores, Hz."""
        return self.system.process_frequency_hz(process)


@dataclass(slots=True)
class Action:
    """A policy's requested reconfiguration; ``None`` fields are no-ops.

    The actuation layer applies the fields in the paper's fail-safe
    order (Fig. 13): first the conditional *raise* (the rail only ever
    moves up before a reconfiguration), then *migrations*, then per-PMD
    *frequencies*, then the *settle* voltage. See
    :func:`repro.policies.actuation.apply_action` for the exact
    semantics of each field.
    """

    #: Fail-safe pre-reconfiguration rail level, mV. Applied only when
    #: above the current rail (a raise can never lower the voltage).
    raise_voltage_mv: Optional[int] = None
    #: Thread migrations, pid -> target cores. Pids not currently
    #: running and no-op moves are skipped; the rest are applied as one
    #: atomic :meth:`~repro.sim.system.ServerSystem.migrate_many`.
    migrations: Optional[Dict[int, Tuple[int, ...]]] = None
    #: Per-PMD frequency set-points, Hz, applied in insertion order.
    pmd_freqs_hz: Optional[Dict[int, int]] = None
    #: Rail settle level, mV, applied last (may lower the voltage).
    voltage_mv: Optional[int] = None
    #: For ``ADMIT`` events only: the cores to place the arriving
    #: process on; ``None`` defers to the system scheduler.
    admit_cores: Optional[Tuple[int, ...]] = None
    #: Advisory chip power cap, W (consumed by capping policy stacks,
    #: not actuated directly — the chip has no cap register).
    power_cap_w: Optional[float] = None

    def is_noop(self) -> bool:
        """True when no field requests anything."""
        return (
            self.raise_voltage_mv is None
            and not self.migrations
            and not self.pmd_freqs_hz
            and self.voltage_mv is None
            and self.admit_cores is None
            and self.power_cap_w is None
        )


class Policy:
    """Base control policy: observe the machine, request an action.

    The default implementation never requests anything — a system run
    with the bare :class:`Policy` behaves like the uncontrolled machine.
    Subclasses override :meth:`decide`; policies that drive a monitor
    loop set :attr:`monitor_period_s` to receive ``TICK`` events.
    """

    #: Registry key the policy was resolved under, or ``None`` when the
    #: instance was constructed directly (set by the policy registry).
    key: Optional[str] = None

    #: Monitor period in seconds; ``None`` disables ``TICK`` events.
    monitor_period_s: Optional[float] = None

    def decide(self, obs: Observation) -> Optional[Action]:
        """Decide on one control event; ``None`` means no action."""
        return None

    def on_applied(
        self, obs: Observation, action: Optional[Action]
    ) -> None:
        """Post-actuation hook; ``obs`` now shows the applied state.

        Only invoked when a subclass overrides it — the dispatch loop
        checks once per run and skips the call entirely otherwise, so
        ordinary policies pay nothing for it.
        """

    def decision_counters(self) -> Dict[str, int]:
        """Decision counters for telemetry (see the arbitration layer)."""
        return {}

    def describe(self) -> str:
        """One-line human description (used by ``repro policy show``)."""
        doc = (type(self).__doc__ or "").strip()
        return doc.splitlines()[0] if doc else type(self).__name__


@dataclass(slots=True)
class _FieldMerge:
    """Bookkeeping for one merged field during stack arbitration."""

    value: object = None
    taken: bool = False
    overrides: int = field(default=0)
