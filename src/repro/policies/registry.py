"""The policy registry: stable keys -> control-plane bundles.

The experiments, the CLI and the orchestrator never construct policies
by hand; they resolve them here by key, exactly the way
:mod:`repro.platform.registry` resolves chips. Each
:class:`PolicyDescriptor` carries:

* ``key`` — the stable resolution name (``baseline-ondemand``,
  ``safe-vmin``, ``daemon``, ...);
* ``summary`` — one line for ``repro policy list``;
* ``factory`` — builds the policy for a chip (sharing a caller-provided
  :class:`~repro.core.policy.VminPolicyTable` so one characterization
  sweep serves a whole evaluation);
* ``rail`` — the idle-machine voltage mode (``"nominal"``/``"safe"``)
  the policy corresponds to, consumed by the analytic
  :class:`~repro.experiments.energy_runner.EnergyRunner` measurements
  which have no event loop to run a live policy in.

The paper's four evaluation configurations keep their historical names
(``baseline``/``safe_vmin``/``placement``/``optimal``) as aliases in
:mod:`repro.core.configurations`; everything else — including the
ED²P-derived governor and the power cappers — exists only under its
registry key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from ..core.policy import VminPolicyTable
from ..errors import ConfigurationError
from ..platform.specs import ChipSpec
from .daemon import OnlineMonitoringDaemon
from .ed2p import Ed2pPolicy
from .governors import (
    BaselinePolicy,
    OndemandPolicy,
    PerformancePolicy,
    PowersavePolicy,
)
from .powercap import CappedDaemonPolicy, PowerCapPolicy
from .safevmin import SafeVminPolicy
from .surfaces import Policy

#: Default power budget of the capping policies, as a fraction of TDP.
DEFAULT_CAP_TDP_FRACTION = 0.8

#: Factory signature: (spec, shared safe-Vmin table or None) -> policy.
PolicyFactory = Callable[[ChipSpec, Optional[VminPolicyTable]], Policy]


@dataclass(frozen=True)
class PolicyDescriptor:
    """One resolvable control-plane bundle."""

    key: str
    summary: str
    factory: PolicyFactory
    #: Idle-machine voltage mode for analytic measurements:
    #: ``"nominal"``, ``"safe"``, or ``None`` when the policy has no
    #: meaningful idle-machine equivalent.
    rail: Optional[str] = None
    #: Whether the policy runs a periodic monitor loop.
    ticking: bool = False


def _cap_w(spec: ChipSpec) -> float:
    return DEFAULT_CAP_TDP_FRACTION * spec.tdp_w


_DESCRIPTORS: Tuple[PolicyDescriptor, ...] = (
    PolicyDescriptor(
        key="none",
        summary="no control: clocks and rail stay wherever they are",
        factory=lambda spec, table: Policy(),
        rail=None,
    ),
    PolicyDescriptor(
        key="baseline-ondemand",
        summary="stock machine: ondemand governor, nominal voltage "
        "(the paper's Baseline)",
        factory=lambda spec, table: BaselinePolicy(),
        rail="nominal",
    ),
    PolicyDescriptor(
        key="ondemand",
        summary="ondemand clocks only; the rail is left untouched",
        factory=lambda spec, table: OndemandPolicy(),
        rail="nominal",
    ),
    PolicyDescriptor(
        key="performance",
        summary="all clocks pinned at fmax",
        factory=lambda spec, table: PerformancePolicy(),
        rail="nominal",
    ),
    PolicyDescriptor(
        key="powersave",
        summary="all clocks pinned at fmin",
        factory=lambda spec, table: PowersavePolicy(),
        rail="nominal",
    ),
    PolicyDescriptor(
        key="safe-vmin",
        summary="ondemand clocks, rail settled at the measured safe Vmin "
        "(the paper's Safe Vmin)",
        factory=lambda spec, table: SafeVminPolicy(spec, policy=table),
        rail="safe",
    ),
    PolicyDescriptor(
        key="daemon",
        summary="online monitoring daemon: placement + clocks + rail "
        "(the paper's Optimal)",
        factory=lambda spec, table: OnlineMonitoringDaemon(
            spec, control_voltage=True, policy=table
        ),
        rail="safe",
        ticking=True,
    ),
    PolicyDescriptor(
        key="daemon-placement",
        summary="daemon placement and clocks at nominal voltage "
        "(the paper's Placement)",
        factory=lambda spec, table: OnlineMonitoringDaemon(
            spec, control_voltage=False, policy=table
        ),
        rail="nominal",
        ticking=True,
    ),
    PolicyDescriptor(
        key="powercap",
        summary="RAPL-style DVFS power capping on the stock machine "
        "(default budget: 80% of TDP)",
        factory=lambda spec, table: PowerCapPolicy(spec, cap_w=_cap_w(spec)),
        rail="nominal",
        ticking=True,
    ),
    PolicyDescriptor(
        key="daemon-powercap",
        summary="the Optimal daemon under a power budget "
        "(default budget: 80% of TDP)",
        factory=lambda spec, table: CappedDaemonPolicy(
            spec, cap_w=_cap_w(spec), policy=table
        ),
        rail="safe",
        ticking=True,
    ),
    PolicyDescriptor(
        key="ed2p",
        summary="daemon steering ED2P-argmin per-class clocks derived "
        "from the Fig. 12 sweep",
        factory=lambda spec, table: Ed2pPolicy(spec, policy=table),
        rail="safe",
        ticking=True,
    ),
)

_BY_KEY: Dict[str, PolicyDescriptor] = {d.key: d for d in _DESCRIPTORS}


def policy_keys() -> Tuple[str, ...]:
    """All registered policy keys, in registry order."""
    return tuple(d.key for d in _DESCRIPTORS)


def policy_descriptors() -> Tuple[PolicyDescriptor, ...]:
    """All descriptors, in registry order."""
    return _DESCRIPTORS


def get_policy_descriptor(key: str) -> PolicyDescriptor:
    """Descriptor for ``key``; raises on unknown keys."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise ConfigurationError(
            f"unknown policy {key!r}; known: {', '.join(policy_keys())}"
        ) from None


def resolve_policy(
    key: str,
    spec: ChipSpec,
    table: Optional[VminPolicyTable] = None,
) -> Policy:
    """Build the policy registered under ``key`` for one chip.

    ``table`` optionally shares a prebuilt safe-Vmin table across
    several resolutions (one characterization sweep per evaluation);
    factories that do not consume a table ignore it.
    """
    descriptor = get_policy_descriptor(key)
    policy = descriptor.factory(spec, table)
    policy.key = descriptor.key
    return policy


def rail_mode(key: str) -> str:
    """Idle-machine voltage mode of a policy key, for analytic sweeps.

    Raises when the policy has no idle-machine equivalent (``none``).
    """
    descriptor = get_policy_descriptor(key)
    if descriptor.rail is None:
        raise ConfigurationError(
            f"policy {key!r} has no idle-machine voltage mode"
        )
    return descriptor.rail


def describe_policy(key: str, spec: ChipSpec) -> List[Tuple[str, str]]:
    """(field, value) rows for ``repro policy show``."""
    descriptor = get_policy_descriptor(key)
    policy = resolve_policy(key, spec)
    rows = [
        ("key", descriptor.key),
        ("summary", descriptor.summary),
        ("class", type(policy).__name__),
        ("rail mode", descriptor.rail or "-"),
        (
            "monitor period",
            f"{policy.monitor_period_s} s"
            if policy.monitor_period_s is not None
            else "-",
        ),
    ]
    engine = getattr(policy, "engine", None)
    if engine is not None:
        from ..units import fmt_freq

        rows.append(("cpu clock", fmt_freq(engine.cpu_freq_hz)))
        rows.append(("mem clock", fmt_freq(engine.mem_freq_hz)))
    return rows
