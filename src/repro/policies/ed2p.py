"""ED²P-aware frequency/allocation governor (built on Fig. 12 machinery).

Fig. 12 shows that the frequency minimizing energy-delay-squared
(ED²P) splits cleanly by workload class: CPU-intensive benchmarks are
best at the highest clock at every thread count, memory-intensive ones
invert — a lower clock wins. The paper's daemon hard-codes the
resulting operating points (fmax for CPU PMDs, the chip's energy clock
for memory PMDs). This policy *derives* them instead: at construction
it sweeps the Fig. 12 grid with the analytic
:class:`~repro.experiments.energy_runner.EnergyRunner` (every
measurement memoized in the characterization cache), picks the
ED²P-argmin clock per class, and then runs the online daemon's
monitor/placement loop with those clocks.

On the two paper chips the derived clocks coincide with the daemon's
hard-coded ones — which is exactly the reproduction claim of Fig. 12.
On a new platform (e.g. the spec-file-only ``xgene3-xl``) the policy
adapts to whatever the platform model says, with no code change.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..allocation import Allocation
from ..core.placement import PlacementEngine
from ..core.policy import VminPolicyTable
from ..platform.specs import ChipSpec
from .daemon import DEFAULT_MONITOR_PERIOD_S, OnlineMonitoringDaemon


@dataclass(frozen=True)
class Ed2pClockPlan:
    """Per-class ED²P-argmin clocks derived from the Fig. 12 sweep."""

    #: Clock for PMDs hosting CPU-intensive (or unclassified) work, Hz.
    cpu_freq_hz: int
    #: Clock for PMDs hosting only memory-intensive work, Hz.
    mem_freq_hz: int
    #: Per-benchmark argmin clocks backing the decision, name -> Hz.
    per_benchmark_hz: Dict[str, int]


def ed2p_clock_plan(
    spec: ChipSpec,
    benchmarks=None,
    nthreads: Optional[int] = None,
) -> Ed2pClockPlan:
    """Derive per-class ED²P-optimal clocks for one chip.

    Sweeps every benchmark of the Fig. 11/12 set over the chip's
    reported frequency grid at full occupancy (every core busy — the
    regime where Fig. 12's class inversion shows and where the daemon's
    per-class clock choice matters), each point at its own safe Vmin,
    and takes the per-class argmin of the summed class-normalized ED²P.
    Deterministic and cache-memoized like every other characterization
    sweep.
    """
    from ..experiments.energy_runner import EnergyRunner
    from ..workloads.suites import figure11_set

    runner = EnergyRunner(spec)
    pool = list(benchmarks) if benchmarks else figure11_set()
    threads = nthreads if nthreads is not None else spec.n_cores
    allocation = (
        Allocation.CLUSTERED
        if threads == spec.n_cores
        else Allocation.SPREADED
    )
    grid: List[int] = sorted(set(runner.frequency_grid().values()))
    per_benchmark: Dict[str, int] = {}
    #: class tag -> freq -> summed normalized ED²P.
    class_scores: Dict[bool, Dict[int, float]] = {
        False: {f: 0.0 for f in grid},
        True: {f: 0.0 for f in grid},
    }
    for profile in pool:
        measurements = runner.measure_batch(
            profile,
            [(threads, allocation, freq) for freq in grid],
            voltage="safe",
        )
        ed2p_of = {m.freq_hz: m.ed2p for m in measurements}
        best = min(ed2p_of.values())
        per_benchmark[profile.name] = min(
            ed2p_of, key=lambda f: (ed2p_of[f], f)
        )
        is_mem = profile.is_memory_intensive_reference()
        for freq, value in ed2p_of.items():
            # Normalize per benchmark so no single profile dominates
            # the class aggregate.
            class_scores[is_mem][freq] += value / best

    def argmin(scores: Dict[int, float], default_hz: int) -> int:
        if not any(scores.values()):
            return default_hz
        # Ties break toward the higher clock (performance-first).
        return min(scores, key=lambda f: (scores[f], -f))

    cpu_freq = argmin(class_scores[False], spec.fmax_hz)
    mem_freq = argmin(class_scores[True], spec.half_frequency_hz)
    return Ed2pClockPlan(
        cpu_freq_hz=cpu_freq,
        mem_freq_hz=mem_freq,
        per_benchmark_hz=per_benchmark,
    )


class Ed2pPolicy(OnlineMonitoringDaemon):
    """Online daemon driving ED²P-derived per-class clocks.

    The monitor/placement loop is the paper's daemon; the operating
    points it steers towards come from the Fig. 12 sweep instead of
    being hard-coded (see :func:`ed2p_clock_plan`).
    """

    def __init__(
        self,
        spec: ChipSpec,
        policy: Optional[VminPolicyTable] = None,
        clock_plan: Optional[Ed2pClockPlan] = None,
        monitor_period_s: float = DEFAULT_MONITOR_PERIOD_S,
    ):
        table = policy or VminPolicyTable.from_characterization(spec)
        self.clock_plan = clock_plan or ed2p_clock_plan(spec)
        engine = PlacementEngine(
            spec,
            policy=table,
            control_voltage=True,
            cpu_freq_hz=self.clock_plan.cpu_freq_hz,
            mem_freq_hz=self.clock_plan.mem_freq_hz,
        )
        super().__init__(
            spec,
            control_voltage=True,
            policy=table,
            engine=engine,
            monitor_period_s=monitor_period_s,
        )
