"""DVFS-based power-capping policies (Section I's power-management context).

The paper motivates its work with the rise of power capping: "the ability
to cap peak power consumption has recently gained strong interest ...
power capping is realized through power-performance knobs such as DVFS,
pipeline throttling or memory throttling" (citing RAPL and
warehouse-scale provisioning). These policies provide that substrate: a
RAPL-style outer loop that watches the platform's energy meter and
throttles the clocks to keep window-average power under a budget.

Two variants:

* :class:`PowerCapPolicy` — capping on an otherwise stock machine
  (ondemand base behaviour, nominal voltage);
* :class:`CappedDaemonPolicy` — the paper's Optimal daemon with a power
  cap layered on top: the daemon picks placement/V/F, the capper clamps
  a maximum frequency that the placement engine then respects.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import ConfigurationError
from ..core.placement import PlacementEngine
from ..core.policy import VminPolicyTable
from ..platform.specs import ChipSpec
from .daemon import OnlineMonitoringDaemon
from .governors import ondemand_targets
from .surfaces import Action, Observation, Policy, PolicyEvent


class _WindowPowerMeter:
    """Average power over the last control window, read like RAPL."""

    def __init__(self) -> None:
        self._last_energy_j = 0.0
        self._last_time_s = 0.0

    def read(self, obs: Observation) -> Optional[float]:
        """Average power since the previous read; None on a zero window."""
        energy = obs.energy_j
        now = obs.now
        dt = now - self._last_time_s
        if dt <= 0:
            return None
        power = (energy - self._last_energy_j) / dt
        self._last_energy_j = energy
        self._last_time_s = now
        return power


class PowerCapPolicy(Policy):
    """Keep average power under a budget by clamping the clock ceiling.

    Every control window the measured window-average power is compared
    against the cap: above it, the ceiling steps down one frequency step
    (and every busy PMD is clamped); comfortably below it, the ceiling
    steps back up. This is the classic RAPL-style outer loop realized
    purely through DVFS.
    """

    def __init__(
        self,
        spec: ChipSpec,
        cap_w: float,
        window_s: float = 0.5,
        release_margin: float = 0.9,
    ):
        if cap_w <= 0:
            raise ConfigurationError("power cap must be positive")
        if not 0.0 < release_margin < 1.0:
            raise ConfigurationError("release margin must be in (0, 1)")
        self.spec = spec
        self.cap_w = cap_w
        self.release_margin = release_margin
        self.monitor_period_s = window_s
        self._meter = _WindowPowerMeter()
        self._steps: List[int] = list(spec.frequency_steps())
        self._ceiling_index = len(self._steps) - 1
        self.throttle_events = 0
        self.release_events = 0

    @property
    def ceiling_hz(self) -> int:
        """Current maximum clock the capper allows."""
        return self._steps[self._ceiling_index]

    def decide(self, obs: Observation) -> Optional[Action]:
        """Ondemand base behaviour, clamped; RAPL step on every tick."""
        event = obs.event
        if event is PolicyEvent.ADMIT:
            return None
        if event is PolicyEvent.TICK:
            power = self._meter.read(obs)
            if power is None:
                return None
            if power > self.cap_w and self._ceiling_index > 0:
                self._ceiling_index -= 1
                self.throttle_events += 1
            elif (
                power < self.cap_w * self.release_margin
                and self._ceiling_index < len(self._steps) - 1
            ):
                self._ceiling_index += 1
                self.release_events += 1
            else:
                return None
            return self._clamp_action(obs)
        # START / STARTED / FINISHED: re-run the base governor, then
        # clamp everything above the ceiling.
        ceiling = self.ceiling_hz
        freqs = {
            pmd: min(freq, ceiling)
            for pmd, freq in ondemand_targets(obs, "chip").items()
        }
        return Action(
            pmd_freqs_hz=freqs,
            power_cap_w=self.cap_w,
        )

    def _clamp_action(self, obs: Observation) -> Action:
        """Clamp only the PMDs currently clocked above the ceiling."""
        ceiling = self.ceiling_hz
        freqs = {
            pmd: ceiling
            for pmd in range(self.spec.n_pmds)
            if obs.pmd_frequency_hz(pmd) > ceiling
        }
        return Action(pmd_freqs_hz=freqs, power_cap_w=self.cap_w)


class CappedDaemonPolicy(OnlineMonitoringDaemon):
    """The paper's Optimal daemon under a power budget.

    The capper's ceiling becomes the placement engine's CPU clock, so
    CPU-intensive PMDs run as fast as the budget allows while the
    memory-intensive PMDs keep their (already lower) energy clock, and
    the rail keeps tracking the safe Vmin of whatever is configured.
    """

    def __init__(
        self,
        spec: ChipSpec,
        cap_w: float,
        policy: Optional[VminPolicyTable] = None,
        window_s: float = 0.5,
        release_margin: float = 0.9,
    ):
        super().__init__(spec, control_voltage=True, policy=policy,
                         monitor_period_s=window_s)
        if cap_w <= 0:
            raise ConfigurationError("power cap must be positive")
        self.cap_w = cap_w
        self.release_margin = release_margin
        self._meter = _WindowPowerMeter()
        self._steps: List[int] = [
            f for f in spec.frequency_steps() if f >= self.engine.mem_freq_hz
        ]
        self._ceiling_index = len(self._steps) - 1
        self.throttle_events = 0
        self.release_events = 0

    @property
    def ceiling_hz(self) -> int:
        """Current maximum clock the capper allows."""
        return self._steps[self._ceiling_index]

    def decide(self, obs: Observation) -> Optional[Action]:
        """Daemon decision flow plus the capping control step on ticks."""
        action = super().decide(obs)
        if obs.event is not PolicyEvent.TICK:
            return action
        power = self._meter.read(obs)
        if power is None:
            return action
        changed = False
        if power > self.cap_w and self._ceiling_index > 0:
            self._ceiling_index -= 1
            self.throttle_events += 1
            changed = True
        elif (
            power < self.cap_w * self.release_margin
            and self._ceiling_index < len(self._steps) - 1
        ):
            self._ceiling_index += 1
            self.release_events += 1
            changed = True
        if not changed:
            return action
        # The new ceiling supersedes whatever the monitor pass planned:
        # rebuild the engine around it and retune clocks and rail.
        self._rebuild_engine()
        plan = self.engine.retune(obs.running_processes())
        capped = self.engine.action_for(plan, obs.chip_state())
        capped.power_cap_w = self.cap_w
        return capped

    def _rebuild_engine(self) -> None:
        self.engine = PlacementEngine(
            self.spec,
            policy=self.policy,
            control_voltage=self.control_voltage,
            cpu_freq_hz=self.ceiling_hz,
            mem_freq_hz=min(self.engine.mem_freq_hz, self.ceiling_hz),
        )
