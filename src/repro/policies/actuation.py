"""The actuation layer: the one place an :class:`Action` touches silicon.

Every voltage, frequency and placement request of every policy funnels
through :func:`apply_action`, which actuates the fields of an
:class:`~repro.policies.surfaces.Action` in the paper's fail-safe order
(Fig. 13):

1. **raise** — move the rail *up* to the pre-reconfiguration level (a
   raise can never lower the voltage; equal or lower requests no-op);
2. **migrations** — move threads, as one atomic multi-process migration
   (all old cores released before any new core is occupied);
3. **frequencies** — per-PMD CPPC requests in the action's insertion
   order (the CPPC model no-ops requests equal to the current clock, so
   a full per-PMD map costs exactly what a changed subset costs);
4. **settle** — the final rail level, applied unconditionally (this is
   the only step that may lower the voltage).

This ordering is bit-for-bit the sequence the pre-refactor controllers
performed, so policies composed from plans produce identical transition
streams. reprolint rule RL010 bans direct SLIMpro/CPPC actuation
everywhere outside :mod:`repro.platform`; the suppressions below are
the rule's single sanctioned escape hatch.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .surfaces import Action

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sim.system import ServerSystem


def apply_action(system: "ServerSystem", action: Action) -> None:
    """Actuate one policy action against the live system.

    See the module docstring for the field ordering and semantics.
    Invalid migrations (a target core busy with another process) raise
    :class:`~repro.errors.SimulationError`, exactly like a direct
    migration call would.
    """
    chip = system.chip
    now = system.now
    raise_mv = action.raise_voltage_mv
    if raise_mv is not None and raise_mv > chip.voltage_mv:
        # Fail-safe protocol: the rail moves up before any
        # reconfiguration the level protects.
        chip.set_voltage(raise_mv, now)  # reprolint: disable=RL010 -- the arbitration/actuation layer is the sanctioned funnel
    migrations = action.migrations
    if migrations:
        by_pid = {p.pid: p for p in system.running_processes()}
        moves = {}
        for pid, cores in migrations.items():
            process = by_pid.get(pid)
            if process is None:
                # The plan may reference processes that finished (or
                # were never admitted) between planning and actuation.
                continue
            target = tuple(cores)
            if tuple(process.cores) != target:
                moves[process] = target
        if moves:
            system.migrate_many(moves)
    freqs = action.pmd_freqs_hz
    if freqs:
        for pmd, freq in freqs.items():
            chip.set_pmd_frequency(pmd, freq, now)  # reprolint: disable=RL010 -- the arbitration/actuation layer is the sanctioned funnel
    settle_mv = action.voltage_mv
    if settle_mv is not None:
        chip.set_voltage(settle_mv, now)  # reprolint: disable=RL010 -- the arbitration/actuation layer is the sanctioned funnel
