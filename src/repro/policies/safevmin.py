"""The Safe-Vmin policy: reduced voltage margins, stock everything else.

The paper's Safe Vmin configuration (Section VI.B) keeps the default
scheduler and the ondemand governor but drives the rail from the
measured policy table (:class:`~repro.core.policy.VminPolicyTable`)
with the fail-safe protocol of Fig. 13: before a process is placed the
rail is raised to the worst case the arrival could create, and after
every occupancy change it settles to the measured safe level of the
actual configuration.
"""

from __future__ import annotations

from typing import Optional

from ..core.policy import VminPolicyTable
from ..platform.specs import ChipSpec
from .governors import _check_scope, ondemand_targets
from .surfaces import Action, Observation, Policy, PolicyEvent


class SafeVminPolicy(Policy):
    """Ondemand clocks with the rail settled at the measured safe Vmin."""

    def __init__(
        self,
        spec: ChipSpec,
        policy: Optional[VminPolicyTable] = None,
        scope: str = "chip",
    ):
        self.spec = spec
        #: The measured Table II-style safe-Vmin table.
        self.policy = policy or VminPolicyTable.from_characterization(spec)
        self.scope = _check_scope(scope)

    def decide(self, obs: Observation) -> Optional[Action]:
        """Raise before an arrival; re-govern and settle on changes."""
        event = obs.event
        if event is PolicyEvent.ADMIT:
            # Fail-safe: assume the arrival lands on all-new PMDs at
            # fmax (the worst droop class it could create).
            state = obs.chip_state()
            worst_pmds = min(
                self.spec.n_pmds,
                len(state.active_pmds) + obs.process.nthreads,
            )
            required = self.policy.safe_voltage_mv(
                worst_pmds, self.spec.fmax_hz
            )
            return Action(raise_voltage_mv=required)
        if event is PolicyEvent.TICK:
            return None
        # START / STARTED / FINISHED: ondemand clocks, then settle the
        # rail at the measured level of the post-governor configuration.
        freqs = ondemand_targets(obs, self.scope)
        active = obs.utilized_pmds
        if active:
            max_freq = max(freqs[pmd] for pmd in active)
        else:
            max_freq = self.spec.fmin_hz
        settle = self.policy.safe_voltage_mv(max(1, len(active)), max_freq)
        return Action(pmd_freqs_hz=freqs, voltage_mv=settle)
