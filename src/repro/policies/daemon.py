"""The paper's online monitoring daemon as a policy (Section VI, Fig. 13).

The daemon couples the monitoring half (periodic PMU classification,
:mod:`repro.core.monitoring`) with the placement half (clustering /
spreading, per-PMD clocks and the safe-Vmin rail,
:mod:`repro.core.placement`) into the closed control loop the paper
evaluates as the *Placement* (``control_voltage=False``) and *Optimal*
(``control_voltage=True``) configurations.

On the policy surfaces the loop reads:

* ``ADMIT`` — fail-safe raise for the arriving process (pre-invocation
  step of Fig. 13);
* ``START``/``STARTED``/``FINISHED`` — full replan of placement, clocks
  and rail;
* ``TICK`` — one monitor pass; a classification change triggers a
  retune (clocks and rail only; threads stay put).
"""

from __future__ import annotations

from typing import Dict, Optional

from .. import telemetry
from ..core.monitoring import MonitoringDaemon
from ..core.placement import PlacementEngine
from ..core.policy import VminPolicyTable
from ..platform.specs import ChipSpec
from ..telemetry import names as metric_names
from .surfaces import Action, Observation, Policy, PolicyEvent

#: Monitor period of the paper's daemon (Section VI.A: a few hundred ms).
DEFAULT_MONITOR_PERIOD_S = 0.4


class OnlineMonitoringDaemon(Policy):
    """Joint voltage/frequency/core-allocation control loop."""

    def __init__(
        self,
        spec: ChipSpec,
        control_voltage: bool = True,
        policy: Optional[VminPolicyTable] = None,
        engine: Optional[PlacementEngine] = None,
        monitor: Optional[MonitoringDaemon] = None,
        classifier=None,
        reader=None,
        monitor_period_s: float = DEFAULT_MONITOR_PERIOD_S,
    ):
        self.spec = spec
        self.control_voltage = control_voltage
        #: The measured safe-Vmin table driving the rail.
        self.policy = policy or VminPolicyTable.from_characterization(spec)
        self.engine = engine or PlacementEngine(
            spec, policy=self.policy, control_voltage=control_voltage
        )
        self.monitor = monitor or MonitoringDaemon(
            classifier=classifier, reader=reader
        )
        self.monitor_period_s = monitor_period_s
        #: Full replans performed (arrivals, exits, start-up).
        self.replans = 0
        #: Clock/rail retunes triggered by classification changes.
        self.retunes = 0

    def decide(self, obs: Observation) -> Optional[Action]:
        """One pass of the Fig. 13 decision flow."""
        event = obs.event
        if event is PolicyEvent.TICK:
            changes = self.monitor.sample(obs)
            if not changes:
                return None
            plan = self.engine.retune(obs.running_processes())
            self.retunes += 1
            telemetry.inc(metric_names.DAEMON_RETUNES)
            return self.engine.action_for(plan, obs.chip_state())
        if event is PolicyEvent.ADMIT:
            telemetry.inc(metric_names.DAEMON_PLACEMENTS)
            raise_mv = self.engine.arrival_raise_mv(
                obs.chip_state(), obs.process.nthreads
            )
            if raise_mv is None:
                return None
            return Action(raise_voltage_mv=raise_mv)
        if event is PolicyEvent.FINISHED:
            self.monitor.forget(obs.process)
            return self._replan(obs)
        # START / STARTED: (re)place everything that is running.
        return self._replan(obs)

    def decision_counters(self) -> Dict[str, int]:
        """Replan/retune counters for manifests and ``policy compare``."""
        return {
            metric_names.DAEMON_REPLANS: self.replans,
            metric_names.DAEMON_RETUNES: self.retunes,
        }

    def _replan(self, obs: Observation) -> Action:
        plan = self.engine.plan(obs.running_processes())
        self.replans += 1
        telemetry.inc(metric_names.DAEMON_REPLANS)
        return self.engine.action_for(plan, obs.chip_state())
