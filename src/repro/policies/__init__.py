"""The unified control plane: typed policies over Observation/Action.

| Module | Contents |
|---|---|
| ``surfaces`` | :class:`Observation`, :class:`Action`, :class:`Policy`, :class:`PolicyEvent` |
| ``actuation`` | :func:`apply_action` — the single SLIMpro/CPPC funnel |
| ``governors`` | Baseline/ondemand/performance/powersave policies |
| ``safevmin`` | the paper's Safe-Vmin configuration |
| ``daemon`` | the online monitoring daemon (Placement/Optimal) |
| ``powercap`` | RAPL-style DVFS capping, standalone and daemon-stacked |
| ``ed2p`` | ED²P-argmin governor derived from the Fig. 12 sweep |
| ``arbitration`` | :class:`PolicyStack` — priority merge + safe-Vmin clamp |
| ``registry`` | stable keys -> policy bundles (``repro policy list``) |
| ``cli`` | the ``repro policy`` subcommand family |

A policy observes the simulated server (PMU/L3C snapshot, droop
counters, occupancy, power, wall-clock tick) and requests an action
(voltage set-point, per-PMD frequency, placement, power cap); the
simulator dispatches ``Observation -> Action`` with no policy-specific
branches. See ``docs/POLICIES.md`` for the contracts and a
walkthrough. Submodules are imported **lazily** (PEP 562), which both
keeps CLI startup fast and lets :mod:`repro.sim.system` import the
surfaces without dragging the whole control plane (and its circular
references back into ``repro.core``) along.
"""

import importlib
from typing import Dict, Tuple

_SUBMODULES: Tuple[str, ...] = (
    "actuation",
    "arbitration",
    "cli",
    "daemon",
    "ed2p",
    "governors",
    "powercap",
    "registry",
    "safevmin",
    "surfaces",
)

#: Re-exported name -> defining submodule.
_EXPORTS: Dict[str, str] = {
    "Action": "surfaces",
    "Observation": "surfaces",
    "Policy": "surfaces",
    "PolicyEvent": "surfaces",
    "apply_action": "actuation",
    "BaselinePolicy": "governors",
    "OndemandPolicy": "governors",
    "PerformancePolicy": "governors",
    "PowersavePolicy": "governors",
    "SafeVminPolicy": "safevmin",
    "OnlineMonitoringDaemon": "daemon",
    "DEFAULT_MONITOR_PERIOD_S": "daemon",
    "PowerCapPolicy": "powercap",
    "CappedDaemonPolicy": "powercap",
    "Ed2pPolicy": "ed2p",
    "Ed2pClockPlan": "ed2p",
    "ed2p_clock_plan": "ed2p",
    "PolicyStack": "arbitration",
    "PolicyDescriptor": "registry",
    "policy_keys": "registry",
    "policy_descriptors": "registry",
    "get_policy_descriptor": "registry",
    "resolve_policy": "registry",
    "rail_mode": "registry",
}

__all__ = sorted(set(_SUBMODULES) | set(_EXPORTS))


def __getattr__(name: str):
    """Lazily import submodules and the public exports."""
    if name in _SUBMODULES:
        return importlib.import_module(f"{__name__}.{name}")
    submodule = _EXPORTS.get(name)
    if submodule is not None:
        module = importlib.import_module(f"{__name__}.{submodule}")
        return getattr(module, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}"
    )


def __dir__():
    return __all__
