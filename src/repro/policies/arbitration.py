"""Policy composition: priority stacks with a mandatory safe-Vmin clamp.

A :class:`PolicyStack` runs several policies against the same
observation and arbitrates their actions into one:

* **priority** — earlier policies win. Placement (``migrations``,
  ``admit_cores``) and the settle voltage are taken from the
  highest-priority policy that requested them; per-PMD frequencies
  merge field-wise with the highest-priority writer winning each PMD;
  fail-safe raises combine as the *maximum* (a raise can never undercut
  another) and power caps as the *minimum* (the tightest budget binds).
  Discarded lower-priority requests are counted as arbitration
  overrides.
* **the clamp** — after arbitration the stack computes the machine
  state the merged action would produce (post-migration utilized PMDs,
  post-set-point clocks) and looks up the measured safe Vmin for it in
  the :class:`~repro.core.policy.VminPolicyTable`. If the action would
  leave the rail below that level, the stack lifts both the fail-safe
  raise and the settle voltage to it. The clamp is structural: it is
  built into every stack and applies *after* arbitration, so no
  composed policy — whatever its priority — can drive the rail below
  the table. Clamp interventions are counted and exported as
  ``policy.stack.clamps``.

The three paper configurations are bare (un-stacked) policies, so their
bit-for-bit reproduction does not depend on this layer; stacks are the
composition surface for everything new (capped daemons, experimental
governors, sweep harnesses).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from .. import telemetry
from ..core.policy import VminPolicyTable
from ..errors import ConfigurationError
from ..platform.specs import ChipSpec
from ..telemetry import names as metric_names
from .surfaces import Action, Observation, Policy, PolicyEvent


class PolicyStack(Policy):
    """Priority-ordered composition of policies under the safe-Vmin clamp."""

    def __init__(
        self,
        spec: ChipSpec,
        policies: Sequence[Policy],
        table: Optional[VminPolicyTable] = None,
    ):
        if not policies:
            raise ConfigurationError("a policy stack needs >= 1 policy")
        self.spec = spec
        self.policies: Tuple[Policy, ...] = tuple(policies)
        #: The clamp's safe-Vmin table; always present (mandatory clamp).
        self.table = table or VminPolicyTable.from_characterization(spec)
        periods = [
            p.monitor_period_s
            for p in self.policies
            if p.monitor_period_s is not None
        ]
        #: Ticks fire at the fastest member cadence; members with slower
        #: windows see every tick and gate on their own meters/windows.
        self.monitor_period_s = min(periods) if periods else None
        #: Control events decided (one per dispatched event).
        self.decisions = 0
        #: Rail lifts forced by the safe-Vmin clamp.
        self.clamps = 0
        #: Lower-priority requests discarded during arbitration.
        self.overrides = 0
        self._flushed = {"decisions": 0, "clamps": 0, "overrides": 0}

    # -- dispatch -----------------------------------------------------------

    def decide(self, obs: Observation) -> Optional[Action]:
        """Consult every member, arbitrate, clamp."""
        self.decisions += 1
        proposals = [
            action
            for action in (p.decide(obs) for p in self.policies)
            if action is not None
        ]
        merged = self._merge(proposals) if proposals else Action()
        clamped = self._clamp(obs, merged)
        if clamped.is_noop():
            return None
        return clamped

    def on_applied(self, obs: Observation, action: Optional[Action]) -> None:
        """Fan the post-actuation hook out to members that use it."""
        for policy in self.policies:
            if type(policy).on_applied is not Policy.on_applied:
                policy.on_applied(obs, action)

    # -- arbitration --------------------------------------------------------

    def _merge(self, proposals: List[Action]) -> Action:
        merged = Action()
        freq_writer: Dict[int, int] = {}
        for action in proposals:
            if action.raise_voltage_mv is not None:
                # Raises never undercut each other: take the maximum.
                if (
                    merged.raise_voltage_mv is None
                    or action.raise_voltage_mv > merged.raise_voltage_mv
                ):
                    merged.raise_voltage_mv = action.raise_voltage_mv
            if action.migrations:
                if merged.migrations is None:
                    merged.migrations = dict(action.migrations)
                else:
                    self.overrides += 1
            if action.pmd_freqs_hz:
                for pmd, freq in action.pmd_freqs_hz.items():
                    if pmd not in freq_writer:
                        freq_writer[pmd] = freq
                    elif freq_writer[pmd] != freq:
                        self.overrides += 1
            if action.voltage_mv is not None:
                if merged.voltage_mv is None:
                    merged.voltage_mv = action.voltage_mv
                else:
                    self.overrides += 1
            if action.admit_cores is not None:
                if merged.admit_cores is None:
                    merged.admit_cores = action.admit_cores
                else:
                    self.overrides += 1
            if action.power_cap_w is not None:
                # The tightest budget binds.
                if (
                    merged.power_cap_w is None
                    or action.power_cap_w < merged.power_cap_w
                ):
                    merged.power_cap_w = action.power_cap_w
        if freq_writer:
            merged.pmd_freqs_hz = freq_writer
        return merged

    # -- the mandatory clamp ------------------------------------------------

    def _post_state(
        self, obs: Observation, action: Action
    ) -> Tuple[Set[int], int]:
        """(utilized PMDs, top active clock) after the action lands."""
        spec = self.spec
        core_sets: List[Tuple[int, ...]] = []
        migrations = action.migrations or {}
        for process in obs.running_processes():
            target = migrations.get(process.pid)
            core_sets.append(
                tuple(target) if target is not None else tuple(process.cores)
            )
        if obs.event is PolicyEvent.ADMIT and action.admit_cores:
            core_sets.append(tuple(action.admit_cores))
        pmds: Set[int] = set()
        for cores in core_sets:
            for core in cores:
                pmds.add(spec.pmd_of_core(core))
        freqs = action.pmd_freqs_hz or {}
        max_freq = spec.fmin_hz
        for pmd in pmds:
            freq = freqs.get(pmd)
            if freq is None:
                freq = obs.pmd_frequency_hz(pmd)
            else:
                freq = spec.nearest_frequency(freq)
            max_freq = max(max_freq, freq)
        return pmds, max_freq

    def _clamp(self, obs: Observation, action: Action) -> Action:
        pmds, max_freq = self._post_state(obs, action)
        required = self.table.safe_voltage_mv(max(1, len(pmds)), max_freq)
        if action.voltage_mv is not None:
            effective = action.voltage_mv
        else:
            current = obs.voltage_mv
            raise_mv = action.raise_voltage_mv
            effective = (
                raise_mv
                if raise_mv is not None and raise_mv > current
                else current
            )
        if effective >= required:
            return action
        # Lift the rail: the raise first (fail-safe order puts it before
        # any clock change), and the settle level when one was set or
        # the ambient rail itself is too low.
        self.clamps += 1
        if (
            action.raise_voltage_mv is None
            or action.raise_voltage_mv < required
        ):
            action.raise_voltage_mv = required
        if action.voltage_mv is not None and action.voltage_mv < required:
            action.voltage_mv = required
        return action

    # -- telemetry ----------------------------------------------------------

    def decision_counters(self) -> Dict[str, int]:
        """Decision/clamp/override counters for manifests and tooling."""
        return {
            metric_names.POLICY_DECISIONS: self.decisions,
            metric_names.POLICY_CLAMPS: self.clamps,
            metric_names.POLICY_OVERRIDES: self.overrides,
        }

    def flush_telemetry(self) -> None:
        """Publish counter deltas since the previous flush."""
        delta = self.decisions - self._flushed["decisions"]
        if delta:
            telemetry.inc(metric_names.POLICY_DECISIONS, delta)
            self._flushed["decisions"] = self.decisions
        delta = self.clamps - self._flushed["clamps"]
        if delta:
            telemetry.inc(metric_names.POLICY_CLAMPS, delta)
            self._flushed["clamps"] = self.clamps
        delta = self.overrides - self._flushed["overrides"]
        if delta:
            telemetry.inc(metric_names.POLICY_OVERRIDES, delta)
            self._flushed["overrides"] = self.overrides
