"""Policy registry tooling: ``repro policy list|show|compare``.

Usage::

    repro policy list
    repro policy show ed2p
    repro policy compare --platform xgene2 --duration 600
    repro policy compare ed2p daemon-powercap --platform xgene3

``list`` prints the registered policy keys one per line; ``show`` dumps
one bundle's descriptor rows (class, rail mode, monitor cadence, the
ED²P clock plan where one exists); ``compare`` replays one generated
workload under several policies and tabulates energy, makespan, ED²P,
undervolting violations and each policy's decision counters.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from ..analysis.tables import format_table
from ..core.configurations import CONFIG_POLICY_KEYS
from ..errors import ConfigurationError
from ..platform.specs import get_spec
from .registry import (
    describe_policy,
    get_policy_descriptor,
    policy_keys,
    resolve_policy,
)

#: Default policies of ``repro policy compare``: the paper's Baseline
#: and Optimal bracketed by the two composable extensions.
DEFAULT_COMPARE_KEYS = (
    "baseline-ondemand",
    "safe-vmin",
    "daemon",
    "ed2p",
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro policy",
        description="Inspect and compare control-plane policy bundles.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="registered policy keys, one per line")
    show = sub.add_parser("show", help="describe one policy bundle")
    show.add_argument("key", help="policy key or configuration alias")
    show.add_argument(
        "--platform",
        default="xgene2",
        help="platform to instantiate the bundle for (default: xgene2)",
    )
    compare = sub.add_parser(
        "compare",
        help="replay one workload under several policies and tabulate",
    )
    compare.add_argument(
        "keys",
        nargs="*",
        metavar="KEY",
        help="policy keys to compare (default: "
        + " ".join(DEFAULT_COMPARE_KEYS)
        + ")",
    )
    compare.add_argument(
        "--platform",
        default="xgene2",
        help="platform to replay on (default: xgene2)",
    )
    compare.add_argument(
        "--duration",
        type=float,
        default=600.0,
        help="workload duration in seconds (default: 600)",
    )
    compare.add_argument(
        "--seed", type=int, default=0, help="workload generator seed"
    )
    return parser


def _resolve_key(name: str) -> str:
    """Registry key of a policy name or paper configuration alias."""
    return CONFIG_POLICY_KEYS.get(name, name)


def _cmd_list() -> int:
    for key in policy_keys():
        descriptor = get_policy_descriptor(key)
        print(f"{key:<18} {descriptor.summary}")
    return 0


def _cmd_show(key: str, platform: str) -> int:
    spec = get_spec(platform)
    rows = describe_policy(_resolve_key(key), spec)
    width = max(len(field) for field, _ in rows)
    for field, value in rows:
        print(f"{field:<{width}}  {value}")
    return 0


def _cmd_compare(
    keys: List[str], platform: str, duration_s: float, seed: int
) -> int:
    from ..core.policy import VminPolicyTable
    from ..platform.chip import Chip
    from ..power.energy import savings_percent
    from ..sim.system import ServerSystem
    from ..workloads.generator import ServerWorkloadGenerator

    requested = [
        _resolve_key(k) for k in (keys or DEFAULT_COMPARE_KEYS)
    ]
    for key in requested:
        get_policy_descriptor(key)  # fail fast on unknown keys
    configs = list(dict.fromkeys(["baseline-ondemand", *requested]))
    spec = get_spec(platform)
    workload = ServerWorkloadGenerator(
        max_cores=spec.n_cores, seed=seed
    ).generate(duration_s)
    if not workload.jobs:
        raise ConfigurationError(
            f"the generated workload is empty at {duration_s:g} s; "
            "give --duration time for at least one arrival"
        )
    # One characterization sweep shared by every resolved bundle.
    table = VminPolicyTable.from_characterization(spec)
    runs = {}
    for key in configs:
        policy = resolve_policy(key, spec, table=table)
        result = ServerSystem(
            Chip(spec), workload, policy=policy
        ).run()
        runs[key] = (result, policy)
    base = runs["baseline-ondemand"][0]
    rows = []
    for key in configs:
        result, policy = runs[key]
        decisions = ", ".join(
            f"{name.split('.')[-1]}={count}"
            for name, count in policy.decision_counters().items()
        ) or "-"
        rows.append(
            (
                key,
                round(result.makespan_s, 0),
                round(result.energy_j, 1),
                f"{savings_percent(base.energy_j, result.energy_j):.1f}%",
                f"{result.ed2p:.3e}",
                f"{savings_percent(base.ed2p, result.ed2p):.1f}%",
                len(result.violations),
                decisions,
            )
        )
    print(
        format_table(
            (
                "policy",
                "time(s)",
                "energy(J)",
                "E save",
                "ED2P",
                "ED2P save",
                "viol",
                "decisions",
            ),
            rows,
            title=f"policy comparison ({spec.name}, "
            f"{duration_s:g} s, seed {seed})",
        )
    )
    return 0


def policy_main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``repro policy`` subcommand family."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "show":
            return _cmd_show(args.key, args.platform)
        return _cmd_compare(
            args.keys, args.platform, args.duration, args.seed
        )
    except ConfigurationError as exc:
        print(f"repro policy: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(policy_main())
