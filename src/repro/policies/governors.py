"""Frequency-governor policies: the stock machine behaviours.

The evaluation's Baseline configuration (Section VI.B) runs the server
exactly as shipped: the default spreading scheduler places threads, the
Linux ``ondemand`` governor drives the clocks and the rail stays at
nominal voltage. These policies reproduce that behaviour on the
:class:`~repro.policies.surfaces.Observation`/``Action`` surfaces:

* :class:`BaselinePolicy` — ondemand clocks + nominal rail (the paper's
  Baseline row; registry key ``baseline-ondemand``);
* :class:`OndemandPolicy` — clocks only, rail untouched (building block
  for stacks that control the voltage separately);
* :class:`PerformancePolicy` / :class:`PowersavePolicy` — clocks pinned
  to fmax / fmin.

The ondemand model matches the paper's observed platform behaviour: the
X-Gene firmware exposes one clock per PMD, and the stock governor runs
busy clocks at fmax and parks fully idle domains at fmin. ``scope``
selects between the chip-wide variant ("any core busy => every PMD at
fmax", what the measured machines did) and the finer per-PMD variant
(used by the governor-scope ablation).
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import ConfigurationError
from .surfaces import Action, Observation, Policy, PolicyEvent

#: Governor scopes: chip-wide (the measured platform behaviour) or
#: per-PMD (the finer variant of the governor-scope ablation).
GOVERNOR_SCOPES = ("chip", "pmd")


def _check_scope(scope: str) -> str:
    if scope not in GOVERNOR_SCOPES:
        raise ConfigurationError(
            f"unknown governor scope {scope!r}; known: {GOVERNOR_SCOPES}"
        )
    return scope


def ondemand_targets(obs: Observation, scope: str = "chip") -> Dict[int, int]:
    """Per-PMD ondemand frequency set-points for the current occupancy.

    ``chip`` scope raises every clock while any core is busy; ``pmd``
    scope raises exactly the domains that have a running thread.
    """
    spec = obs.spec
    if scope == "chip":
        busy = bool(obs.active_cores)
        target = spec.fmax_hz if busy else spec.fmin_hz
        return {pmd: target for pmd in range(spec.n_pmds)}
    return {
        pmd: spec.fmin_hz if obs.pmd_is_idle(pmd) else spec.fmax_hz
        for pmd in range(spec.n_pmds)
    }


class OndemandPolicy(Policy):
    """Ondemand clocks only: busy domains at fmax, idle ones at fmin."""

    def __init__(self, scope: str = "chip"):
        self.scope = _check_scope(scope)

    def decide(self, obs: Observation) -> Optional[Action]:
        """Re-evaluate the clocks on every occupancy change."""
        event = obs.event
        if event is PolicyEvent.ADMIT or event is PolicyEvent.TICK:
            return None
        return Action(pmd_freqs_hz=ondemand_targets(obs, self.scope))


class BaselinePolicy(Policy):
    """Default Linux settings: ondemand governor, nominal voltage."""

    def __init__(self, scope: str = "chip"):
        self.scope = _check_scope(scope)

    def decide(self, obs: Observation) -> Optional[Action]:
        """Park or raise the clocks; pin the rail at nominal on start."""
        event = obs.event
        if event is PolicyEvent.ADMIT or event is PolicyEvent.TICK:
            return None
        freqs = ondemand_targets(obs, self.scope)
        if event is PolicyEvent.START:
            return Action(
                pmd_freqs_hz=freqs,
                voltage_mv=obs.spec.nominal_voltage_mv,
            )
        return Action(pmd_freqs_hz=freqs)


class PerformancePolicy(Policy):
    """Every clock pinned at fmax regardless of occupancy."""

    def decide(self, obs: Observation) -> Optional[Action]:
        """Pin all clocks once occupancy changes."""
        event = obs.event
        if event is PolicyEvent.ADMIT or event is PolicyEvent.TICK:
            return None
        spec = obs.spec
        return Action(
            pmd_freqs_hz={
                pmd: spec.fmax_hz for pmd in range(spec.n_pmds)
            }
        )


class PowersavePolicy(Policy):
    """Every clock pinned at fmin regardless of occupancy."""

    def decide(self, obs: Observation) -> Optional[Action]:
        """Pin all clocks once occupancy changes."""
        event = obs.event
        if event is PolicyEvent.ADMIT or event is PolicyEvent.TICK:
            return None
        spec = obs.spec
        return Action(
            pmd_freqs_hz={
                pmd: spec.fmin_hz for pmd in range(spec.n_pmds)
            }
        )
