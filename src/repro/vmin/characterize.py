"""Vmin characterization campaigns (Section III).

Implements the paper's measurement protocol against the simulated
silicon:

* **safe-Vmin search** — starting from nominal voltage, descend in fixed
  steps (10 mV, the granularity of the paper's figures); a level is the
  *safe Vmin* when all 1000 executions of the program complete correctly
  (Section III.A);
* **unsafe-region scan** — below the safe Vmin, run each level 60 times
  and record the outcome mix (SDC / crash / hang / timeout) down to the
  system crash point (Section III.B, Figs. 4 and 5).

Two execution modes are supported: ``trials`` draws the actual binomial
run outcomes (exactly what the hardware campaign does, minus the weeks of
machine time), and ``analytic`` short-circuits to the underlying failure
probabilities, for fast exact sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .. import telemetry
from ..allocation import Allocation, cores_for
from ..errors import CharacterizationError
from ..kernels.faults import (
    MIX_ORDER,
    analytic_failure_counts,
    analytic_outcome_counts,
    multinomial_split,
    outcome_mix_grid,
    pfail_grid,
)
from ..kernels.vmin import evaluate_grid
from ..platform.specs import ChipSpec
from ..telemetry import names as metric_names
from .cache import (
    VminCache,
    cache_key_producer,
    fault_fingerprint,
    get_default_cache,
    make_key,
    model_fingerprint,
    occupancy_of,
    spec_fingerprint,
)
from .faults import FAULT_OUTCOMES, OUTCOME_PASS, FaultModel
from .model import VminModel


@dataclass(frozen=True)
class CharacterizationPoint:
    """One (workload, threads, allocation, frequency) configuration."""

    workload: str
    nthreads: int
    allocation: Allocation
    freq_hz: int
    cores: Tuple[int, ...]
    workload_delta_mv: float = 0.0

    def label(self) -> str:
        """Compact human-readable tag, e.g. ``4T(spreaded)@2.4GHz``."""
        from ..units import fmt_freq

        return (
            f"{self.nthreads}T({self.allocation.value})@"
            f"{fmt_freq(self.freq_hz)}"
        )


@dataclass(slots=True)
class VoltageStepRecord:
    """Outcome statistics of one voltage level during a campaign."""

    voltage_mv: int
    runs: int
    pfail: float
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> int:
        """Failed runs at this level."""
        return sum(
            count for tag, count in self.outcomes.items()
            if tag != OUTCOME_PASS
        )


@dataclass
class SafeVminResult:
    """Result of one safe-Vmin search."""

    point: CharacterizationPoint
    safe_vmin_mv: int
    true_vmin_mv: float
    steps: List[VoltageStepRecord]
    runs_per_step: int

    @property
    def guardband_mv(self) -> float:
        """Exposed guardband: nominal voltage minus measured safe Vmin."""
        return self.nominal_mv - self.safe_vmin_mv

    @property
    def nominal_mv(self) -> int:
        """Nominal voltage the search started from."""
        return self.steps[0].voltage_mv if self.steps else self.safe_vmin_mv


@dataclass
class UnsafeScanResult:
    """Result of one unsafe-region scan (60 runs per level)."""

    point: CharacterizationPoint
    safe_vmin_mv: int
    crash_voltage_mv: int
    steps: List[VoltageStepRecord]


class VminCampaign:
    """Runs characterization protocols against the simulated silicon."""

    def __init__(
        self,
        spec: ChipSpec,
        vmin_model: Optional[VminModel] = None,
        fault_model: Optional[FaultModel] = None,
        step_mv: int = 10,
        pass_runs: int = 1000,
        scan_runs: int = 60,
        seed: int = 0,
        cache: Optional[VminCache] = None,
        use_kernels: bool = True,
    ):
        if step_mv <= 0:
            raise CharacterizationError("step_mv must be positive")
        if pass_runs <= 0 or scan_runs <= 0:
            raise CharacterizationError("run counts must be positive")
        self.spec = spec
        self.vmin_model = vmin_model or VminModel(spec)
        self.fault_model = fault_model or FaultModel(spec=spec)
        self.step_mv = step_mv
        self.pass_runs = pass_runs
        self.scan_runs = scan_runs
        self.seed = seed
        #: Explicit cache, or ``None`` to use the process default; pass
        #: ``VminCache(capacity=0)`` to opt out of memoization.
        self.cache = cache
        #: Route analytic campaigns through the batched
        #: :mod:`repro.kernels` sweeps (bit-identical results); the
        #: scalar reference path remains available with ``False``.
        #: Trials mode always uses the scalar path for single-point
        #: calls, preserving its sequential RNG stream.
        self.use_kernels = use_kernels
        self._rng = np.random.default_rng(seed)
        self._fingerprints: Optional[Tuple[str, str, str]] = None

    # -- configuration helpers -------------------------------------------------

    def point(
        self,
        workload: str,
        nthreads: int,
        allocation: Allocation,
        freq_hz: int,
        cores: Optional[Sequence[int]] = None,
        workload_delta_mv: float = 0.0,
    ) -> CharacterizationPoint:
        """Build a characterization point, deriving cores when not given."""
        freq = self.spec.nearest_frequency(freq_hz)
        chosen = (
            tuple(cores)
            if cores is not None
            else cores_for(self.spec, nthreads, allocation)
        )
        if len(chosen) != nthreads:
            raise CharacterizationError(
                f"{nthreads} threads but {len(chosen)} cores given"
            )
        return CharacterizationPoint(
            workload=workload,
            nthreads=nthreads,
            allocation=allocation,
            freq_hz=freq,
            cores=chosen,
            workload_delta_mv=workload_delta_mv,
        )

    def _true_vmin(self, point: CharacterizationPoint) -> Tuple[float, int]:
        breakdown = self.vmin_model.evaluate(
            point.freq_hz, point.cores, point.workload_delta_mv
        )
        return breakdown.total_mv, breakdown.droop_class

    # -- memoization -------------------------------------------------------------

    def _cache_backend(self) -> Optional[VminCache]:
        cache = self.cache if self.cache is not None else get_default_cache()
        # An opt-out cache (capacity 0, no disk tier) cannot store or
        # serve anything; returning None lets campaigns skip key
        # derivation and payload encoding altogether.
        return None if cache.disabled else cache

    @cache_key_producer
    def _campaign_key(
        self,
        kind: str,
        point: CharacterizationPoint,
        mode: str,
        runs: int,
        **extra: object,
    ) -> str:
        if self._fingerprints is None:
            self._fingerprints = (
                spec_fingerprint(self.spec),
                model_fingerprint(self.vmin_model),
                fault_fingerprint(self.fault_model),
            )
        spec_fp, model_fp, fault_fp = self._fingerprints
        return make_key(
            kind=kind,
            spec=spec_fp,
            model=model_fp,
            faults=fault_fp,
            freq_class=self.spec.frequency_class(point.freq_hz).value,
            cores=sorted(point.cores),
            pmd_occupancy=occupancy_of(self.spec, point.cores),
            workload=point.workload,
            workload_delta_mv=point.workload_delta_mv,
            seed=self.seed,
            step_mv=self.step_mv,
            runs=runs,
            mode=mode,
            **extra,
        )

    @staticmethod
    def _encode_steps(steps: List[VoltageStepRecord]) -> List[Dict]:
        return [
            {
                "voltage_mv": record.voltage_mv,
                "runs": record.runs,
                "pfail": record.pfail,
                "outcomes": dict(record.outcomes),
            }
            for record in steps
        ]

    @staticmethod
    def _decode_steps(encoded: List[Dict]) -> List[VoltageStepRecord]:
        return [
            VoltageStepRecord(
                voltage_mv=int(entry["voltage_mv"]),
                runs=int(entry["runs"]),
                pfail=float(entry["pfail"]),
                outcomes={
                    str(tag): int(count)
                    for tag, count in entry["outcomes"].items()
                },
            )
            for entry in encoded
        ]

    # -- safe-Vmin search --------------------------------------------------------

    def measure_safe_vmin(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
    ) -> SafeVminResult:
        """Descend from nominal until 1000-run passes stop (Section III.A).

        Returns the lowest voltage step at which all runs passed. In
        ``trials`` mode each level's outcomes are drawn binomially; in
        ``analytic`` mode a level is safe exactly when its failure
        probability is zero.
        """
        if mode not in ("analytic", "trials"):
            raise CharacterizationError(f"unknown mode {mode!r}")
        if self.use_kernels and mode == "analytic":
            return self.measure_safe_vmin_batch([point], mode)[0]
        return self._measure_safe_vmin_scalar(point, mode)

    def _measure_safe_vmin_scalar(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
    ) -> SafeVminResult:
        """Scalar reference implementation of :meth:`measure_safe_vmin`."""
        telemetry.inc(metric_names.KERNELS_SCALAR_FALLBACKS)
        if mode not in ("analytic", "trials"):
            raise CharacterizationError(f"unknown mode {mode!r}")
        # Trials mode consumes RNG state, so replaying it from a cache
        # would change subsequent draws; only analytic sweeps memoize.
        cache = self._cache_backend() if mode == "analytic" else None
        key = ""
        if cache is not None:
            key = self._campaign_key("safe_vmin", point, mode, self.pass_runs)
            cached = cache.get(key)
            if cached is not None:
                return SafeVminResult(
                    point=point,
                    safe_vmin_mv=int(cached["safe_vmin_mv"]),
                    true_vmin_mv=float(cached["true_vmin_mv"]),
                    steps=self._decode_steps(cached["steps"]),
                    runs_per_step=int(cached["runs_per_step"]),
                )
        true_vmin, droop_class = self._true_vmin(point)
        steps: List[VoltageStepRecord] = []
        safe = self.spec.nominal_voltage_mv
        voltage = self.spec.nominal_voltage_mv
        while voltage >= self.spec.min_voltage_mv:
            record = self._run_level(
                voltage, true_vmin, droop_class, self.pass_runs, mode
            )
            steps.append(record)
            if record.failures > 0:
                break
            safe = voltage
            voltage -= self.step_mv
        result = SafeVminResult(
            point=point,
            safe_vmin_mv=safe,
            true_vmin_mv=true_vmin,
            steps=steps,
            runs_per_step=self.pass_runs,
        )
        if cache is not None:
            cache.put(
                key,
                {
                    "safe_vmin_mv": result.safe_vmin_mv,
                    "true_vmin_mv": result.true_vmin_mv,
                    "runs_per_step": result.runs_per_step,
                    "steps": self._encode_steps(result.steps),
                },
            )
        return result

    def measure_safe_vmin_batch(
        self,
        points: Sequence[CharacterizationPoint],
        mode: str = "analytic",
    ) -> List[SafeVminResult]:
        """Batched :meth:`measure_safe_vmin` over many configurations.

        Sweeps the full voltage axis of every cache-missing point in one
        :mod:`repro.kernels` evaluation instead of one Python call per
        voltage level. Analytic results — including every recorded step
        and the cache payloads — are bit-identical to the scalar search;
        ``trials`` mode uses vectorized draws, which are deterministic
        for the campaign seed but follow a different RNG stream than the
        scalar level-by-level search.
        """
        if mode not in ("analytic", "trials"):
            raise CharacterizationError(f"unknown mode {mode!r}")
        points = list(points)
        results: List[Optional[SafeVminResult]] = [None] * len(points)
        cache = self._cache_backend() if mode == "analytic" else None
        keys: List[str] = [""] * len(points)
        pending: List[int] = []
        for i, point in enumerate(points):
            if cache is not None:
                keys[i] = self._campaign_key(
                    "safe_vmin", point, mode, self.pass_runs
                )
                cached = cache.get(keys[i])
                if cached is not None:
                    results[i] = SafeVminResult(
                        point=point,
                        safe_vmin_mv=int(cached["safe_vmin_mv"]),
                        true_vmin_mv=float(cached["true_vmin_mv"]),
                        steps=self._decode_steps(cached["steps"]),
                        runs_per_step=int(cached["runs_per_step"]),
                    )
                    continue
            pending.append(i)
        if not pending:
            return results
        grid = evaluate_grid(
            self.vmin_model,
            [points[i].freq_hz for i in pending],
            [points[i].cores for i in pending],
            [points[i].workload_delta_mv for i in pending],
        )
        voltages = np.arange(
            self.spec.nominal_voltage_mv,
            self.spec.min_voltage_mv - 1,
            -self.step_mv,
            dtype=np.int64,
        )
        runs = self.pass_runs
        if voltages.size == 0:
            for g, i in enumerate(pending):
                results[i] = SafeVminResult(
                    point=points[i],
                    safe_vmin_mv=self.spec.nominal_voltage_mv,
                    true_vmin_mv=float(grid.total_mv[g]),
                    steps=[],
                    runs_per_step=runs,
                )
            return results
        pf = pfail_grid(
            self.fault_model,
            voltages[None, :],
            grid.total_mv[:, None],
            grid.droop_class[:, None],
        )
        if mode == "analytic":
            # Analytic failures are >= 1 exactly where pfail > 0.
            failing = pf > 0.0
            failures_mat = None
        else:
            failures_mat = self._rng.binomial(runs, pf).astype(np.int64)
            failing = failures_mat > 0
        has_fail = failing.any(axis=1)
        first_fail = np.argmax(failing, axis=1)
        # Outcome split of the one failing level per failing point.
        fail_rows = np.nonzero(has_fail)[0]
        fail_cols = first_fail[fail_rows]
        fail_mix = outcome_mix_grid(
            self.fault_model,
            voltages[fail_cols],
            grid.total_mv[fail_rows],
            grid.droop_class[fail_rows],
        )
        if mode == "analytic":
            fail_counts, fail_splits = analytic_outcome_counts(
                pf[fail_rows, fail_cols], fail_mix, runs
            )
        else:
            fail_counts = failures_mat[fail_rows, fail_cols]
            fail_splits = multinomial_split(self._rng, fail_counts, fail_mix)
        fail_pos = {int(row): k for k, row in enumerate(fail_rows)}
        split_tags = MIX_ORDER if mode == "analytic" else FAULT_OUTCOMES
        split_cols = [MIX_ORDER.index(tag) for tag in split_tags]
        # Bulk-convert the grids once; per-element numpy indexing in the
        # record loop would dominate the whole batch otherwise. Records
        # are built with positional args (voltage_mv, runs, pfail,
        # outcomes) — the loop is the campaign's hottest path.
        volt_list = voltages.tolist()
        has_fail_list = has_fail.tolist()
        first_fail_list = first_fail.tolist()
        fail_counts_list = fail_counts.tolist()
        fail_splits_list = fail_splits.tolist()
        fail_pfails = pf[fail_rows, fail_cols].tolist()
        true_vmins = grid.total_mv.tolist()
        # Analytic levels are safe exactly when pfail == 0, so only the
        # failing level's pfail is ever nonzero; trials mode records the
        # true pfail of every level it visits.
        pf_rows = pf.tolist() if mode == "trials" else None
        nominal = self.spec.nominal_voltage_mv
        for g, i in enumerate(pending):
            point = points[i]
            if has_fail_list[g]:
                last = first_fail_list[g]
                safe = volt_list[last - 1] if last >= 1 else nominal
                n_steps = last + 1
            else:
                last = -1
                safe = volt_list[-1]
                n_steps = len(volt_list)
            if pf_rows is None:
                steps: List[VoltageStepRecord] = [
                    VoltageStepRecord(v, runs, 0.0, {OUTCOME_PASS: runs})
                    for v in volt_list[:n_steps]
                ]
            else:
                pf_row = pf_rows[g]
                steps = [
                    VoltageStepRecord(
                        volt_list[j], runs, pf_row[j], {OUTCOME_PASS: runs}
                    )
                    for j in range(n_steps)
                ]
            if last >= 0:
                k = fail_pos[g]
                f = fail_counts_list[k]
                split_row = fail_splits_list[k]
                record = steps[last]
                if pf_rows is None:
                    record.pfail = fail_pfails[k]
                outcomes = record.outcomes
                outcomes[OUTCOME_PASS] = runs - f
                for tag, col in zip(split_tags, split_cols):
                    outcomes[tag] = split_row[col]
            result = SafeVminResult(
                point=point,
                safe_vmin_mv=safe,
                true_vmin_mv=true_vmins[g],
                steps=steps,
                runs_per_step=runs,
            )
            results[i] = result
            if cache is not None:
                cache.put(
                    keys[i],
                    {
                        "safe_vmin_mv": result.safe_vmin_mv,
                        "true_vmin_mv": result.true_vmin_mv,
                        "runs_per_step": result.runs_per_step,
                        "steps": self._encode_steps(result.steps),
                    },
                )
        return results

    # -- unsafe-region scan --------------------------------------------------------

    def scan_unsafe_region(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
        safe_vmin_mv: Optional[int] = None,
    ) -> UnsafeScanResult:
        """Scan below the safe Vmin, 60 runs per level (Section III.B).

        Continues until a level where every run fails (the system crash
        point) or the regulator floor.
        """
        if self.use_kernels and mode == "analytic":
            return self.scan_unsafe_region_batch(
                [point],
                mode,
                None if safe_vmin_mv is None else [safe_vmin_mv],
            )[0]
        return self._scan_unsafe_region_scalar(point, mode, safe_vmin_mv)

    def _scan_unsafe_region_scalar(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
        safe_vmin_mv: Optional[int] = None,
    ) -> UnsafeScanResult:
        """Scalar reference implementation of :meth:`scan_unsafe_region`."""
        telemetry.inc(metric_names.KERNELS_SCALAR_FALLBACKS)
        true_vmin, droop_class = self._true_vmin(point)
        if safe_vmin_mv is None:
            safe_vmin_mv = self.measure_safe_vmin(point, mode).safe_vmin_mv
        cache = self._cache_backend() if mode == "analytic" else None
        key = ""
        if cache is not None:
            key = self._campaign_key(
                "unsafe_scan",
                point,
                mode,
                self.scan_runs,
                start_mv=safe_vmin_mv,
            )
            cached = cache.get(key)
            if cached is not None:
                return UnsafeScanResult(
                    point=point,
                    safe_vmin_mv=safe_vmin_mv,
                    crash_voltage_mv=int(cached["crash_voltage_mv"]),
                    steps=self._decode_steps(cached["steps"]),
                )
        steps: List[VoltageStepRecord] = []
        voltage = safe_vmin_mv
        crash_voltage = self.spec.min_voltage_mv
        while voltage >= self.spec.min_voltage_mv:
            record = self._run_level(
                voltage, true_vmin, droop_class, self.scan_runs, mode
            )
            steps.append(record)
            if record.pfail >= 1.0 or record.failures == record.runs:
                crash_voltage = voltage
                break
            voltage -= self.step_mv
        result = UnsafeScanResult(
            point=point,
            safe_vmin_mv=safe_vmin_mv,
            crash_voltage_mv=crash_voltage,
            steps=steps,
        )
        if cache is not None:
            cache.put(
                key,
                {
                    "crash_voltage_mv": result.crash_voltage_mv,
                    "steps": self._encode_steps(result.steps),
                },
            )
        return result

    def scan_unsafe_region_batch(
        self,
        points: Sequence[CharacterizationPoint],
        mode: str = "analytic",
        safe_vmins_mv: Optional[Sequence[int]] = None,
    ) -> List[UnsafeScanResult]:
        """Batched :meth:`scan_unsafe_region` over many configurations.

        Evaluates every cache-missing point's sub-safe voltage levels in
        one kernel sweep. Analytic results and cache payloads are
        bit-identical to the scalar scan; ``trials`` mode uses vectorized
        draws (different RNG stream than the scalar scan, still
        deterministic for the campaign seed).
        """
        if mode not in ("analytic", "trials"):
            raise CharacterizationError(f"unknown mode {mode!r}")
        points = list(points)
        if safe_vmins_mv is None:
            safes_all = [
                r.safe_vmin_mv
                for r in self.measure_safe_vmin_batch(points, mode)
            ]
        else:
            safes_all = [int(v) for v in safe_vmins_mv]
            if len(safes_all) != len(points):
                raise CharacterizationError(
                    "safe_vmins_mv must match points one to one"
                )
        results: List[Optional[UnsafeScanResult]] = [None] * len(points)
        cache = self._cache_backend() if mode == "analytic" else None
        keys: List[str] = [""] * len(points)
        pending: List[int] = []
        for i, point in enumerate(points):
            if cache is not None:
                keys[i] = self._campaign_key(
                    "unsafe_scan",
                    point,
                    mode,
                    self.scan_runs,
                    start_mv=safes_all[i],
                )
                cached = cache.get(keys[i])
                if cached is not None:
                    results[i] = UnsafeScanResult(
                        point=point,
                        safe_vmin_mv=safes_all[i],
                        crash_voltage_mv=int(cached["crash_voltage_mv"]),
                        steps=self._decode_steps(cached["steps"]),
                    )
                    continue
            pending.append(i)
        if not pending:
            return results
        grid = evaluate_grid(
            self.vmin_model,
            [points[i].freq_hz for i in pending],
            [points[i].cores for i in pending],
            [points[i].workload_delta_mv for i in pending],
        )
        runs = self.scan_runs
        min_v = self.spec.min_voltage_mv
        safes = np.asarray([safes_all[i] for i in pending], dtype=np.int64)
        max_levels = int(max(0, (int(safes.max()) - min_v) // self.step_mv + 1))
        if max_levels == 0:
            for g, i in enumerate(pending):
                results[i] = self._store_scan(
                    cache,
                    keys[i],
                    UnsafeScanResult(
                        point=points[i],
                        safe_vmin_mv=safes_all[i],
                        crash_voltage_mv=min_v,
                        steps=[],
                    ),
                )
            return results
        # Row g sweeps its own axis: safe, safe - step, ... >= min voltage.
        vmat = safes[:, None] - self.step_mv * np.arange(
            max_levels, dtype=np.int64
        )
        valid = vmat >= min_v
        pf = pfail_grid(
            self.fault_model,
            vmat,
            grid.total_mv[:, None],
            grid.droop_class[:, None],
        )
        if mode == "analytic":
            failures = analytic_failure_counts(pf, runs)
            splits = None
        else:
            mix = outcome_mix_grid(
                self.fault_model,
                vmat,
                grid.total_mv[:, None],
                grid.droop_class[:, None],
            )
            failures = self._rng.binomial(runs, pf).astype(np.int64)
            splits = multinomial_split(self._rng, failures, mix)
        crash_mask = ((pf >= 1.0) | (failures == runs)) & valid
        has_crash = crash_mask.any(axis=1)
        first_crash = np.argmax(crash_mask, axis=1)
        n_valid = valid.sum(axis=1)
        split_tags = MIX_ORDER if mode == "analytic" else FAULT_OUTCOMES
        split_cols = [MIX_ORDER.index(tag) for tag in split_tags]
        has_crash_list = has_crash.tolist()
        first_crash_list = first_crash.tolist()
        n_valid_list = n_valid.tolist()
        # Only the levels a row actually records get converted (and, in
        # analytic mode, get their outcome split computed at all): every
        # row stops at its crash level (or its last valid one).
        max_used = 0
        for g in range(len(pending)):
            if has_crash_list[g]:
                max_used = max(max_used, first_crash_list[g] + 1)
            else:
                max_used = max(max_used, n_valid_list[g])
        vmat_used = vmat[:, :max_used]
        pf_used = pf[:, :max_used]
        if splits is None:
            mix_used = outcome_mix_grid(
                self.fault_model,
                vmat_used,
                grid.total_mv[:, None],
                grid.droop_class[:, None],
            )
            _, splits_used = analytic_outcome_counts(
                pf_used, mix_used, runs
            )
        else:
            splits_used = splits[:, :max_used]
        vmat_rows = vmat_used.tolist()
        pf_rows = pf_used.tolist()
        failure_rows = failures[:, :max_used].tolist()
        split_rows = splits_used.tolist()
        for g, i in enumerate(pending):
            if has_crash_list[g]:
                n_steps = first_crash_list[g] + 1
                crash_voltage = vmat_rows[g][n_steps - 1]
            else:
                n_steps = n_valid_list[g]
                crash_voltage = min_v
            volt_row = vmat_rows[g]
            pf_row = pf_rows[g]
            fail_row = failure_rows[g]
            split_row = split_rows[g]
            # Positional args: (voltage_mv, runs, pfail, outcomes).
            steps: List[VoltageStepRecord] = []
            for j in range(n_steps):
                f = fail_row[j]
                outcomes: Dict[str, int] = {OUTCOME_PASS: runs}
                if f:
                    outcomes[OUTCOME_PASS] = runs - f
                    srow = split_row[j]
                    for tag, col in zip(split_tags, split_cols):
                        outcomes[tag] = srow[col]
                steps.append(
                    VoltageStepRecord(volt_row[j], runs, pf_row[j], outcomes)
                )
            results[i] = self._store_scan(
                cache,
                keys[i],
                UnsafeScanResult(
                    point=points[i],
                    safe_vmin_mv=safes_all[i],
                    crash_voltage_mv=crash_voltage,
                    steps=steps,
                ),
            )
        return results

    def _store_scan(
        self,
        cache: Optional[VminCache],
        key: str,
        result: UnsafeScanResult,
    ) -> UnsafeScanResult:
        if cache is not None:
            cache.put(
                key,
                {
                    "crash_voltage_mv": result.crash_voltage_mv,
                    "steps": self._encode_steps(result.steps),
                },
            )
        return result

    # -- pfail curve -------------------------------------------------------------

    def pfail_curve(
        self,
        point: CharacterizationPoint,
        voltages_mv: Iterable[int],
    ) -> Dict[int, float]:
        """Exact cumulative failure probability per voltage (Fig. 5)."""
        true_vmin, droop_class = self._true_vmin(point)
        voltages = [int(v) for v in voltages_mv]
        if not self.use_kernels or not voltages:
            return {
                v: self.fault_model.pfail(v, true_vmin, droop_class)
                for v in voltages
            }
        curve = pfail_grid(
            self.fault_model,
            np.asarray(voltages, dtype=np.int64),
            true_vmin,
            droop_class,
        )
        return dict(zip(voltages, curve.tolist()))

    def pfail_curves(
        self,
        points: Sequence[CharacterizationPoint],
        voltages_mv: Iterable[int],
    ) -> List[Dict[int, float]]:
        """Batched :meth:`pfail_curve` over many configurations.

        One kernel evaluation covers every (point, voltage) pair; each
        returned curve equals the per-point ``pfail_curve`` exactly.
        """
        points = list(points)
        voltages = [int(v) for v in voltages_mv]
        if not self.use_kernels or not points or not voltages:
            return [self.pfail_curve(p, voltages) for p in points]
        grid = evaluate_grid(
            self.vmin_model,
            [p.freq_hz for p in points],
            [p.cores for p in points],
            [p.workload_delta_mv for p in points],
        )
        curves = pfail_grid(
            self.fault_model,
            np.asarray(voltages, dtype=np.int64)[None, :],
            grid.total_mv[:, None],
            grid.droop_class[:, None],
        )
        return [dict(zip(voltages, row)) for row in curves.tolist()]

    # -- internals --------------------------------------------------------------

    def _run_level(
        self,
        voltage_mv: int,
        true_vmin_mv: float,
        droop_class: int,
        runs: int,
        mode: str,
    ) -> VoltageStepRecord:
        pfail = self.fault_model.pfail(voltage_mv, true_vmin_mv, droop_class)
        outcomes: Dict[str, int] = {OUTCOME_PASS: runs}
        if mode == "analytic":
            # Expected outcome mix, rounded: failures occur iff pfail > 0.
            failures = int(round(pfail * runs))
            if pfail > 0.0:
                failures = max(failures, 1)
        else:
            failures = int(self._rng.binomial(runs, pfail))
        if failures:
            outcomes[OUTCOME_PASS] = runs - failures
            mix = self.fault_model.outcome_mix(
                voltage_mv, true_vmin_mv, droop_class
            )
            if mode == "analytic":
                split = {
                    tag: int(round(failures * share))
                    for tag, share in mix.items()
                }
                # Put rounding residue in the dominant failure type.
                residue = failures - sum(split.values())
                dominant = max(mix, key=mix.get)
                split[dominant] += residue
            else:
                draws = self._rng.multinomial(
                    failures, [mix[tag] for tag in FAULT_OUTCOMES]
                )
                split = dict(zip(FAULT_OUTCOMES, (int(d) for d in draws)))
            outcomes.update(split)
        return VoltageStepRecord(
            voltage_mv=voltage_mv,
            runs=runs,
            pfail=pfail,
            outcomes=outcomes,
        )
