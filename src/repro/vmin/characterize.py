"""Vmin characterization campaigns (Section III).

Implements the paper's measurement protocol against the simulated
silicon:

* **safe-Vmin search** — starting from nominal voltage, descend in fixed
  steps (10 mV, the granularity of the paper's figures); a level is the
  *safe Vmin* when all 1000 executions of the program complete correctly
  (Section III.A);
* **unsafe-region scan** — below the safe Vmin, run each level 60 times
  and record the outcome mix (SDC / crash / hang / timeout) down to the
  system crash point (Section III.B, Figs. 4 and 5).

Two execution modes are supported: ``trials`` draws the actual binomial
run outcomes (exactly what the hardware campaign does, minus the weeks of
machine time), and ``analytic`` short-circuits to the underlying failure
probabilities, for fast exact sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..allocation import Allocation, cores_for
from ..errors import CharacterizationError
from ..platform.specs import ChipSpec
from .cache import (
    VminCache,
    fault_fingerprint,
    get_default_cache,
    make_key,
    model_fingerprint,
    occupancy_of,
    spec_fingerprint,
)
from .faults import FAULT_OUTCOMES, OUTCOME_PASS, FaultModel
from .model import VminModel


@dataclass(frozen=True)
class CharacterizationPoint:
    """One (workload, threads, allocation, frequency) configuration."""

    workload: str
    nthreads: int
    allocation: Allocation
    freq_hz: int
    cores: Tuple[int, ...]
    workload_delta_mv: float = 0.0

    def label(self) -> str:
        """Compact human-readable tag, e.g. ``4T(spreaded)@2.4GHz``."""
        from ..units import fmt_freq

        return (
            f"{self.nthreads}T({self.allocation.value})@"
            f"{fmt_freq(self.freq_hz)}"
        )


@dataclass
class VoltageStepRecord:
    """Outcome statistics of one voltage level during a campaign."""

    voltage_mv: int
    runs: int
    pfail: float
    outcomes: Dict[str, int] = field(default_factory=dict)

    @property
    def failures(self) -> int:
        """Failed runs at this level."""
        return sum(
            count for tag, count in self.outcomes.items()
            if tag != OUTCOME_PASS
        )


@dataclass
class SafeVminResult:
    """Result of one safe-Vmin search."""

    point: CharacterizationPoint
    safe_vmin_mv: int
    true_vmin_mv: float
    steps: List[VoltageStepRecord]
    runs_per_step: int

    @property
    def guardband_mv(self) -> float:
        """Exposed guardband: nominal voltage minus measured safe Vmin."""
        return self.nominal_mv - self.safe_vmin_mv

    @property
    def nominal_mv(self) -> int:
        """Nominal voltage the search started from."""
        return self.steps[0].voltage_mv if self.steps else self.safe_vmin_mv


@dataclass
class UnsafeScanResult:
    """Result of one unsafe-region scan (60 runs per level)."""

    point: CharacterizationPoint
    safe_vmin_mv: int
    crash_voltage_mv: int
    steps: List[VoltageStepRecord]


class VminCampaign:
    """Runs characterization protocols against the simulated silicon."""

    def __init__(
        self,
        spec: ChipSpec,
        vmin_model: Optional[VminModel] = None,
        fault_model: Optional[FaultModel] = None,
        step_mv: int = 10,
        pass_runs: int = 1000,
        scan_runs: int = 60,
        seed: int = 0,
        cache: Optional[VminCache] = None,
    ):
        if step_mv <= 0:
            raise CharacterizationError("step_mv must be positive")
        if pass_runs <= 0 or scan_runs <= 0:
            raise CharacterizationError("run counts must be positive")
        self.spec = spec
        self.vmin_model = vmin_model or VminModel(spec)
        self.fault_model = fault_model or FaultModel()
        self.step_mv = step_mv
        self.pass_runs = pass_runs
        self.scan_runs = scan_runs
        self.seed = seed
        #: Explicit cache, or ``None`` to use the process default; pass
        #: ``VminCache(capacity=0)`` to opt out of memoization.
        self.cache = cache
        self._rng = np.random.default_rng(seed)
        self._fingerprints: Optional[Tuple[str, str, str]] = None

    # -- configuration helpers -------------------------------------------------

    def point(
        self,
        workload: str,
        nthreads: int,
        allocation: Allocation,
        freq_hz: int,
        cores: Optional[Sequence[int]] = None,
        workload_delta_mv: float = 0.0,
    ) -> CharacterizationPoint:
        """Build a characterization point, deriving cores when not given."""
        freq = self.spec.nearest_frequency(freq_hz)
        chosen = (
            tuple(cores)
            if cores is not None
            else cores_for(self.spec, nthreads, allocation)
        )
        if len(chosen) != nthreads:
            raise CharacterizationError(
                f"{nthreads} threads but {len(chosen)} cores given"
            )
        return CharacterizationPoint(
            workload=workload,
            nthreads=nthreads,
            allocation=allocation,
            freq_hz=freq,
            cores=chosen,
            workload_delta_mv=workload_delta_mv,
        )

    def _true_vmin(self, point: CharacterizationPoint) -> Tuple[float, int]:
        breakdown = self.vmin_model.evaluate(
            point.freq_hz, point.cores, point.workload_delta_mv
        )
        return breakdown.total_mv, breakdown.droop_class

    # -- memoization -------------------------------------------------------------

    def _cache_backend(self) -> VminCache:
        return self.cache if self.cache is not None else get_default_cache()

    def _campaign_key(
        self,
        kind: str,
        point: CharacterizationPoint,
        mode: str,
        runs: int,
        **extra: object,
    ) -> str:
        if self._fingerprints is None:
            self._fingerprints = (
                spec_fingerprint(self.spec),
                model_fingerprint(self.vmin_model),
                fault_fingerprint(self.fault_model),
            )
        spec_fp, model_fp, fault_fp = self._fingerprints
        return make_key(
            kind=kind,
            spec=spec_fp,
            model=model_fp,
            faults=fault_fp,
            freq_class=self.spec.frequency_class(point.freq_hz).value,
            cores=sorted(point.cores),
            pmd_occupancy=occupancy_of(self.spec, point.cores),
            workload=point.workload,
            workload_delta_mv=point.workload_delta_mv,
            seed=self.seed,
            step_mv=self.step_mv,
            runs=runs,
            mode=mode,
            **extra,
        )

    @staticmethod
    def _encode_steps(steps: List[VoltageStepRecord]) -> List[Dict]:
        return [
            {
                "voltage_mv": record.voltage_mv,
                "runs": record.runs,
                "pfail": record.pfail,
                "outcomes": dict(record.outcomes),
            }
            for record in steps
        ]

    @staticmethod
    def _decode_steps(encoded: List[Dict]) -> List[VoltageStepRecord]:
        return [
            VoltageStepRecord(
                voltage_mv=int(entry["voltage_mv"]),
                runs=int(entry["runs"]),
                pfail=float(entry["pfail"]),
                outcomes={
                    str(tag): int(count)
                    for tag, count in entry["outcomes"].items()
                },
            )
            for entry in encoded
        ]

    # -- safe-Vmin search --------------------------------------------------------

    def measure_safe_vmin(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
    ) -> SafeVminResult:
        """Descend from nominal until 1000-run passes stop (Section III.A).

        Returns the lowest voltage step at which all runs passed. In
        ``trials`` mode each level's outcomes are drawn binomially; in
        ``analytic`` mode a level is safe exactly when its failure
        probability is zero.
        """
        if mode not in ("analytic", "trials"):
            raise CharacterizationError(f"unknown mode {mode!r}")
        # Trials mode consumes RNG state, so replaying it from a cache
        # would change subsequent draws; only analytic sweeps memoize.
        cache = self._cache_backend() if mode == "analytic" else None
        key = ""
        if cache is not None:
            key = self._campaign_key("safe_vmin", point, mode, self.pass_runs)
            cached = cache.get(key)
            if cached is not None:
                return SafeVminResult(
                    point=point,
                    safe_vmin_mv=int(cached["safe_vmin_mv"]),
                    true_vmin_mv=float(cached["true_vmin_mv"]),
                    steps=self._decode_steps(cached["steps"]),
                    runs_per_step=int(cached["runs_per_step"]),
                )
        true_vmin, droop_class = self._true_vmin(point)
        steps: List[VoltageStepRecord] = []
        safe = self.spec.nominal_voltage_mv
        voltage = self.spec.nominal_voltage_mv
        while voltage >= self.spec.min_voltage_mv:
            record = self._run_level(
                voltage, true_vmin, droop_class, self.pass_runs, mode
            )
            steps.append(record)
            if record.failures > 0:
                break
            safe = voltage
            voltage -= self.step_mv
        result = SafeVminResult(
            point=point,
            safe_vmin_mv=safe,
            true_vmin_mv=true_vmin,
            steps=steps,
            runs_per_step=self.pass_runs,
        )
        if cache is not None:
            cache.put(
                key,
                {
                    "safe_vmin_mv": result.safe_vmin_mv,
                    "true_vmin_mv": result.true_vmin_mv,
                    "runs_per_step": result.runs_per_step,
                    "steps": self._encode_steps(result.steps),
                },
            )
        return result

    # -- unsafe-region scan --------------------------------------------------------

    def scan_unsafe_region(
        self,
        point: CharacterizationPoint,
        mode: str = "analytic",
        safe_vmin_mv: Optional[int] = None,
    ) -> UnsafeScanResult:
        """Scan below the safe Vmin, 60 runs per level (Section III.B).

        Continues until a level where every run fails (the system crash
        point) or the regulator floor.
        """
        true_vmin, droop_class = self._true_vmin(point)
        if safe_vmin_mv is None:
            safe_vmin_mv = self.measure_safe_vmin(point, mode).safe_vmin_mv
        cache = self._cache_backend() if mode == "analytic" else None
        key = ""
        if cache is not None:
            key = self._campaign_key(
                "unsafe_scan",
                point,
                mode,
                self.scan_runs,
                start_mv=safe_vmin_mv,
            )
            cached = cache.get(key)
            if cached is not None:
                return UnsafeScanResult(
                    point=point,
                    safe_vmin_mv=safe_vmin_mv,
                    crash_voltage_mv=int(cached["crash_voltage_mv"]),
                    steps=self._decode_steps(cached["steps"]),
                )
        steps: List[VoltageStepRecord] = []
        voltage = safe_vmin_mv
        crash_voltage = self.spec.min_voltage_mv
        while voltage >= self.spec.min_voltage_mv:
            record = self._run_level(
                voltage, true_vmin, droop_class, self.scan_runs, mode
            )
            steps.append(record)
            if record.pfail >= 1.0 or record.failures == record.runs:
                crash_voltage = voltage
                break
            voltage -= self.step_mv
        result = UnsafeScanResult(
            point=point,
            safe_vmin_mv=safe_vmin_mv,
            crash_voltage_mv=crash_voltage,
            steps=steps,
        )
        if cache is not None:
            cache.put(
                key,
                {
                    "crash_voltage_mv": result.crash_voltage_mv,
                    "steps": self._encode_steps(result.steps),
                },
            )
        return result

    # -- pfail curve -------------------------------------------------------------

    def pfail_curve(
        self,
        point: CharacterizationPoint,
        voltages_mv: Iterable[int],
    ) -> Dict[int, float]:
        """Exact cumulative failure probability per voltage (Fig. 5)."""
        true_vmin, droop_class = self._true_vmin(point)
        return {
            int(v): self.fault_model.pfail(v, true_vmin, droop_class)
            for v in voltages_mv
        }

    # -- internals --------------------------------------------------------------

    def _run_level(
        self,
        voltage_mv: int,
        true_vmin_mv: float,
        droop_class: int,
        runs: int,
        mode: str,
    ) -> VoltageStepRecord:
        pfail = self.fault_model.pfail(voltage_mv, true_vmin_mv, droop_class)
        outcomes: Dict[str, int] = {OUTCOME_PASS: runs}
        if mode == "analytic":
            # Expected outcome mix, rounded: failures occur iff pfail > 0.
            failures = int(round(pfail * runs))
            if pfail > 0.0:
                failures = max(failures, 1)
        else:
            failures = int(self._rng.binomial(runs, pfail))
        if failures:
            outcomes[OUTCOME_PASS] = runs - failures
            mix = self.fault_model.outcome_mix(
                voltage_mv, true_vmin_mv, droop_class
            )
            if mode == "analytic":
                split = {
                    tag: int(round(failures * share))
                    for tag, share in mix.items()
                }
                # Put rounding residue in the dominant failure type.
                residue = failures - sum(split.values())
                dominant = max(mix, key=mix.get)
                split[dominant] += residue
            else:
                draws = self._rng.multinomial(
                    failures, [mix[tag] for tag in FAULT_OUTCOMES]
                )
                split = dict(zip(FAULT_OUTCOMES, (int(d) for d in draws)))
            outcomes.update(split)
        return VoltageStepRecord(
            voltage_mv=voltage_mv,
            runs=runs,
            pfail=pfail,
            outcomes=outcomes,
        )
