"""Voltage-droop model: magnitude classes and event generation (Fig. 6).

The paper's key physical observation (Section IV.A) is that in multicore
executions the *maximum voltage-droop magnitude* is set by the number of
utilized PMDs and the clock frequency — not by which program runs. Every
program produces the same maximum droop magnitude for a given core
allocation, which is why the safe Vmin becomes workload-independent as
soon as a few PMDs are active.

This module maps utilized-PMD counts to the droop-magnitude bins of
Table II / Figure 6 and generates droop-detection counts per million
cycles the way the X-Gene 3 embedded oscilloscope reports them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..errors import ConfigurationError
from ..platform.pmu import DROOP_BINS_MV
from ..platform.specs import ChipSpec, FrequencyClass


def droop_bin_index(spec: ChipSpec, utilized_pmds: int) -> int:
    """Droop-magnitude bin (index into ``DROOP_BINS_MV``) for a PMD count.

    On the 16-PMD X-Gene 3 this reproduces Table II exactly:
    1-2 PMDs -> [25,35), 3-4 -> [35,45), 5-8 -> [45,55), 9-16 -> [55,65).
    Other chip sizes use the same powers-of-two ladder relative to their
    own PMD count, so the 4-PMD X-Gene 2 spans three bins
    (1 PMD -> [25,35), 2 -> [35,45), 3-4 -> [45,55)).
    """
    if utilized_pmds <= 0:
        return 0
    if utilized_pmds > spec.n_pmds:
        raise ConfigurationError(
            f"{spec.name}: {utilized_pmds} utilized PMDs exceeds "
            f"{spec.n_pmds}"
        )
    for index, bound in enumerate(droop_ladder(spec)):
        if utilized_pmds <= bound:
            return index
    raise ConfigurationError(  # pragma: no cover - ladder ends at n_pmds
        f"{spec.name}: no droop class for {utilized_pmds} PMDs"
    )


def droop_ladder(spec: ChipSpec) -> Tuple[int, ...]:
    """Utilized-PMD boundaries of the droop-magnitude classes.

    Boundaries sit at 1/8, 1/4, 1/2 and all of the chip's PMDs, matching
    Table II's 2/4/8/16 ladder on the 16-PMD X-Gene 3. Duplicate rungs on
    small chips collapse, so the 4-PMD X-Gene 2 has the three classes
    (1, 2, 4 PMDs) starting from the mildest bin: a smaller chip's full
    complement draws a smaller worst-case current swing.
    """
    raw = [
        max(1, spec.n_pmds // 8),
        max(1, spec.n_pmds // 4),
        max(1, spec.n_pmds // 2),
        spec.n_pmds,
    ]
    ladder = []
    for bound in raw:
        if not ladder or bound > ladder[-1]:
            ladder.append(bound)
    return tuple(ladder)


def droop_bin(spec: ChipSpec, utilized_pmds: int) -> Tuple[int, int]:
    """Droop-magnitude bin bounds in mV for a utilized-PMD count."""
    return DROOP_BINS_MV[droop_bin_index(spec, utilized_pmds)]


def max_droop_mv(
    spec: ChipSpec,
    utilized_pmds: int,
    freq_class: FrequencyClass = FrequencyClass.HIGH,
) -> float:
    """Representative maximum droop magnitude for a configuration.

    Lower effective frequencies draw current more smoothly, shaving a few
    mV off the worst droop (this is why Table II's 1.5 GHz Vmin column
    sits 10-20 mV below the 3 GHz one).
    """
    low, high = droop_bin(spec, utilized_pmds)
    magnitude = (low + high) / 2.0
    if freq_class is FrequencyClass.SKIP:
        magnitude -= 5.0
    elif freq_class is FrequencyClass.DIVIDE:
        magnitude -= 12.0
    return max(0.0, magnitude)


@dataclass(frozen=True)
class DroopActivity:
    """Workload-dependent droop *rate* knobs (not magnitude).

    The magnitude ceiling is allocation-determined; how *often* droops
    fire still varies with the program's switching activity.
    """

    #: Relative switching-activity factor (~IPC-proportional), around 1.0.
    activity: float = 1.0


class DroopModel:
    """Generates droop-detection counts per million cycles (Fig. 6)."""

    #: Baseline detections per 1 M cycles in a configuration's own
    #: (maximum-magnitude) bin, before workload activity scaling.
    BASE_RATE_PER_MCYCLES = 40.0
    #: Rate multiplier per bin *below* the configuration's own bin —
    #: smaller droops are more frequent.
    LOWER_BIN_MULTIPLIER = 2.5
    #: Residual rate in bins above the configuration's ceiling (near
    #: zero: Fig. 6 shows "almost zero droops" there).
    ABOVE_CEILING_RATE = 0.02

    #: Bound on the memoized jitter-free rate table (distinct activity
    #: floats seen over a run); cleared wholesale when exceeded.
    FLAT_RATE_CACHE_MAX = 1024

    def __init__(self, spec: ChipSpec, seed: int = 0, params=None):
        self.spec = spec
        self._seed = seed
        if params is None:
            from ..platform.registry import model_for_spec

            model = model_for_spec(spec)
            params = model.droop if model is not None else None
        if params is not None:
            # Instance attributes shadow the class-level defaults, so
            # chips whose bundle repeats the defaults behave (and hash)
            # exactly as before.
            self.BASE_RATE_PER_MCYCLES = params.base_rate_per_mcycles
            self.LOWER_BIN_MULTIPLIER = params.lower_bin_multiplier
            self.ABOVE_CEILING_RATE = params.above_ceiling_rate
            self._freq_scale = {
                FrequencyClass.HIGH: 1.0,
                FrequencyClass.SKIP: params.freq_scale_skip,
                FrequencyClass.DIVIDE: params.freq_scale_divide,
            }
        else:
            self._freq_scale = {
                FrequencyClass.HIGH: 1.0,
                FrequencyClass.SKIP: 0.55,
                FrequencyClass.DIVIDE: 0.2,
            }
        #: (utilized_pmds, freq_class, activity) -> jitter-free rates.
        #: The jitter-free computation is pure, so memoizing it returns
        #: the exact same floats the direct evaluation would; the fluid
        #: simulator calls it once per integration interval.
        self._flat_rates: Dict[
            Tuple[int, FrequencyClass, float], Dict[Tuple[int, int], float]
        ] = {}

    def rates_per_mcycles(
        self,
        utilized_pmds: int,
        freq_class: FrequencyClass = FrequencyClass.HIGH,
        activity: float = 1.0,
        jitter: bool = True,
        workload_name: str = "",
    ) -> Dict[Tuple[int, int], float]:
        """Detections per 1 M cycles in every magnitude bin.

        The configuration's ceiling bin comes from the utilized-PMD
        count; lower bins see geometrically more events; higher bins see
        essentially none. At reduced frequency classes the whole
        distribution shifts down one bin's worth of energy, thinning the
        ceiling bin.
        """
        if activity <= 0:
            raise ConfigurationError("activity factor must be positive")
        if not jitter:
            key = (utilized_pmds, freq_class, activity)
            cached = self._flat_rates.get(key)
            if cached is not None:
                return dict(cached)
        ceiling = droop_bin_index(self.spec, utilized_pmds)
        rng = (
            random.Random(f"{self._seed}/{workload_name}/{utilized_pmds}")
            if jitter
            else None
        )
        rates: Dict[Tuple[int, int], float] = {}
        freq_scale = self._freq_scale[freq_class]
        for index, bin_ in enumerate(DROOP_BINS_MV):
            if index > ceiling:
                rate = self.ABOVE_CEILING_RATE
            else:
                depth = ceiling - index
                rate = (
                    self.BASE_RATE_PER_MCYCLES
                    * (self.LOWER_BIN_MULTIPLIER ** depth)
                    * activity
                    * freq_scale
                )
            if rng is not None and rate > self.ABOVE_CEILING_RATE:
                rate *= 1.0 + 0.25 * (rng.random() - 0.5)
            rates[bin_] = rate
        if not jitter:
            if len(self._flat_rates) >= self.FLAT_RATE_CACHE_MAX:
                self._flat_rates.clear()
            self._flat_rates[key] = dict(rates)
        return rates

    def events_for_interval(
        self,
        utilized_pmds: int,
        cycles: float,
        freq_class: FrequencyClass = FrequencyClass.HIGH,
        activity: float = 1.0,
    ) -> Dict[Tuple[int, int], float]:
        """Expected droop detections over ``cycles`` cycles, per bin."""
        if cycles < 0:
            raise ConfigurationError("cycles must be non-negative")
        rates = self.rates_per_mcycles(
            utilized_pmds, freq_class, activity, jitter=False
        )
        return {bin_: rate * cycles / 1e6 for bin_, rate in rates.items()}
