"""Stochastic failure model below the safe Vmin (Section III.B, Fig. 5).

Above the safe Vmin every run completes correctly; below it the
probability that *at least one abnormal behaviour* occurs during a run
rises smoothly until the system crash point, where every run fails. The
observed abnormal behaviours are silent data corruptions (SDCs), process
timeouts, thread hangs and full system crashes; close to the Vmin SDCs
dominate (marginal timing failures corrupt data), deeper undervolting
increasingly crashes the machine.

The cumulative-failure-probability curve is a smoothstep over a
configuration-dependent width: configurations with more utilized PMDs
(larger droops) fail more steeply, matching the "most severe behaviour"
of the max-threads lines in Fig. 5.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..errors import (
    ConfigurationError,
    ProcessTimeout,
    SilentDataCorruption,
    SystemCrash,
    ThreadHang,
)
from ..platform.pmu import DROOP_BINS_MV
from ..units import Millivolts

#: Outcome tags produced by :meth:`FaultModel.sample_outcome`.
OUTCOME_PASS = "pass"
OUTCOME_SDC = "sdc"
OUTCOME_CRASH = "crash"
OUTCOME_HANG = "hang"
OUTCOME_TIMEOUT = "timeout"

FAULT_OUTCOMES = (OUTCOME_SDC, OUTCOME_CRASH, OUTCOME_HANG, OUTCOME_TIMEOUT)

_FAULT_CLASSES = {
    OUTCOME_SDC: SilentDataCorruption,
    OUTCOME_CRASH: SystemCrash,
    OUTCOME_HANG: ThreadHang,
    OUTCOME_TIMEOUT: ProcessTimeout,
}


def _smoothstep(x: float) -> float:
    """C1-continuous ramp from 0 at x=0 to 1 at x=1."""
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    return x * x * (3.0 - 2.0 * x)


@dataclass(frozen=True)
class UnsafeRegion:
    """Summary of the unsafe region below one configuration's Vmin."""

    safe_vmin_mv: float
    crash_voltage_mv: float

    @property
    def width_mv(self) -> float:
        """Voltage span between first failures and certain failure."""
        return self.safe_vmin_mv - self.crash_voltage_mv


class FaultModel:
    """Failure probability and failure-type sampling below the safe Vmin."""

    #: Unsafe-region width at the mildest droop class, in mV.
    MAX_WIDTH_MV = 50.0
    #: Unsafe-region width shrinks this many mV per droop class: larger
    #: droops make the failure cliff steeper (Fig. 5).
    WIDTH_STEP_MV = 7.0
    MIN_WIDTH_MV = 20.0

    def __init__(self, params=None, spec=None):
        """Fault model with a chip's unsafe-region geometry.

        ``params`` (a :class:`repro.platform.registry.FaultParams`)
        wins; otherwise ``spec``'s declarative bundle is consulted.
        With neither, the class-level defaults apply — and chips whose
        bundle repeats the defaults behave (and hash in the Vmin cache)
        exactly as a default-constructed model.
        """
        if params is None and spec is not None:
            from ..platform.registry import model_for_spec

            model = model_for_spec(spec)
            params = model.faults if model is not None else None
        if params is not None:
            self.MAX_WIDTH_MV = params.max_width_mv
            self.WIDTH_STEP_MV = params.width_step_mv
            self.MIN_WIDTH_MV = params.min_width_mv

    def width_mv(self, droop_class: int) -> Millivolts:
        """Unsafe-region width for one droop class."""
        if droop_class < 0 or droop_class >= len(DROOP_BINS_MV):
            raise ConfigurationError(
                f"droop class {droop_class} out of range"
            )
        return max(
            self.MIN_WIDTH_MV,
            self.MAX_WIDTH_MV - self.WIDTH_STEP_MV * droop_class,
        )

    def unsafe_region(
        self, safe_vmin_mv: Millivolts, droop_class: int
    ) -> UnsafeRegion:
        """Safe Vmin and crash point for one configuration."""
        return UnsafeRegion(
            safe_vmin_mv=safe_vmin_mv,
            crash_voltage_mv=safe_vmin_mv - self.width_mv(droop_class),
        )

    def pfail(
        self, voltage_mv: Millivolts, safe_vmin_mv: Millivolts, droop_class: int
    ) -> float:
        """Cumulative probability that one run fails at ``voltage_mv``.

        Zero at and above the safe Vmin, one at and below the crash
        point, smooth in between (the shape of Fig. 5's curves).
        """
        depth = safe_vmin_mv - voltage_mv
        if depth <= 0.0:
            return 0.0
        return _smoothstep(depth / self.width_mv(droop_class))

    def depth_fraction(
        self, voltage_mv: Millivolts, safe_vmin_mv: Millivolts, droop_class: int
    ) -> float:
        """Normalised depth below Vmin: 0 at Vmin, 1 at the crash point."""
        depth = safe_vmin_mv - voltage_mv
        width = self.width_mv(droop_class)
        return min(1.0, max(0.0, depth / width))

    def outcome_mix(
        self, voltage_mv: Millivolts, safe_vmin_mv: Millivolts, droop_class: int
    ) -> Dict[str, float]:
        """Conditional distribution of failure types, given a failure.

        Near the Vmin, SDCs and timeouts dominate (marginal timing
        failures); near the crash point, system crashes dominate.
        """
        x = self.depth_fraction(voltage_mv, safe_vmin_mv, droop_class)
        crash = 0.15 + 0.65 * x
        sdc = max(0.05, 0.55 - 0.40 * x)
        hang = 0.12 * (1.0 - 0.5 * x)
        timeout = max(0.0, 1.0 - crash - sdc - hang)
        total = crash + sdc + hang + timeout
        return {
            OUTCOME_CRASH: crash / total,
            OUTCOME_SDC: sdc / total,
            OUTCOME_HANG: hang / total,
            OUTCOME_TIMEOUT: timeout / total,
        }

    def sample_outcome(
        self,
        voltage_mv: Millivolts,
        safe_vmin_mv: Millivolts,
        droop_class: int,
        rng: random.Random,
    ) -> str:
        """Draw one run outcome: ``pass`` or one of the failure tags."""
        p = self.pfail(voltage_mv, safe_vmin_mv, droop_class)
        if rng.random() >= p:
            return OUTCOME_PASS
        mix = self.outcome_mix(voltage_mv, safe_vmin_mv, droop_class)
        draw = rng.random()
        cumulative = 0.0
        for outcome, weight in mix.items():
            cumulative += weight
            if draw < cumulative:
                return outcome
        return OUTCOME_CRASH  # pragma: no cover - float rounding guard

    def raise_for_outcome(
        self, outcome: str, voltage_mv: float
    ) -> None:
        """Raise the matching :class:`VoltageFault` for a failed outcome."""
        if outcome == OUTCOME_PASS:
            return
        fault = _FAULT_CLASSES.get(outcome)
        if fault is None:
            raise ConfigurationError(f"unknown outcome {outcome!r}")
        raise fault(voltage_mv)

    def probability_all_pass(
        self,
        voltage_mv: Millivolts,
        safe_vmin_mv: Millivolts,
        droop_class: int,
        runs: int,
    ) -> float:
        """Probability that ``runs`` independent runs all pass."""
        if runs < 0:
            raise ConfigurationError("runs must be non-negative")
        p = self.pfail(voltage_mv, safe_vmin_mv, droop_class)
        return (1.0 - p) ** runs
