"""Safe-Vmin substrate: ground truth, droop model, faults, campaigns.

This package is the simulated silicon's electrical behaviour: what the
paper *measured* on the real X-Gene 2/3 chips is encoded here as ground
truth (Sections III and IV), and the characterization campaigns re-derive
it exactly the way the authors did on hardware.
"""

from .cache import (
    CacheStats,
    VminCache,
    configure_default_cache,
    get_default_cache,
    make_key,
    model_fingerprint,
    reset_default_cache,
    set_default_cache,
    spec_fingerprint,
)
from .characterize import (
    CharacterizationPoint,
    SafeVminResult,
    UnsafeScanResult,
    VminCampaign,
    VoltageStepRecord,
)
from .droop import (
    DroopModel,
    droop_bin,
    droop_bin_index,
    droop_ladder,
    max_droop_mv,
)
from .faults import (
    FAULT_OUTCOMES,
    OUTCOME_CRASH,
    OUTCOME_HANG,
    OUTCOME_PASS,
    OUTCOME_SDC,
    OUTCOME_TIMEOUT,
    FaultModel,
    UnsafeRegion,
)
from .prediction import (
    PredictionReport,
    TrainingPoint,
    VminPredictor,
)
from .model import (
    VminBreakdown,
    VminModel,
    variation_attenuation,
    workload_delta_limit_mv,
)
from .variation import (
    CoreVariationMap,
    make_variation_map,
    max_core_offset_mv,
)

__all__ = [
    "CacheStats",
    "CharacterizationPoint",
    "PredictionReport",
    "TrainingPoint",
    "VminPredictor",
    "CoreVariationMap",
    "DroopModel",
    "FAULT_OUTCOMES",
    "FaultModel",
    "OUTCOME_CRASH",
    "OUTCOME_HANG",
    "OUTCOME_PASS",
    "OUTCOME_SDC",
    "OUTCOME_TIMEOUT",
    "SafeVminResult",
    "UnsafeRegion",
    "UnsafeScanResult",
    "VminBreakdown",
    "VminCache",
    "VminCampaign",
    "VminModel",
    "VoltageStepRecord",
    "configure_default_cache",
    "droop_bin",
    "droop_bin_index",
    "droop_ladder",
    "get_default_cache",
    "make_key",
    "make_variation_map",
    "max_core_offset_mv",
    "model_fingerprint",
    "reset_default_cache",
    "set_default_cache",
    "spec_fingerprint",
    "max_droop_mv",
    "variation_attenuation",
    "workload_delta_limit_mv",
]
