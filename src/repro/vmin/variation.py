"""Static per-core manufacturing variation of the safe Vmin (Fig. 4).

In single- and two-core executions the paper measures up to ~30 mV
core-to-core Vmin variation on X-Gene 2 and up to ~20 mV combined
variation on X-Gene 3: PMD2 (cores 4 and 5) is the most robust module of
the characterized X-Gene 2 chip, while PMD0 and PMD1 are the most
sensitive. This module generates that static variation map.

``silicon_seed=0`` reproduces the specific chips of the paper (the PMD2
pattern above). Any other seed draws a random chip from the same
population, which is how the test-suite exercises chip-to-chip variation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..platform.specs import ChipSpec

#: Envelope for chips without a declarative bundle, mV (Section III.A
#: reports family envelopes of ~30 and ~12 mV; registered bundles carry
#: their own ``variation.max_offset_mv``).
_DEFAULT_MAX_OFFSET_MV = 25.0


def _variation_params(spec: ChipSpec):
    """Bundle variation parameters of a chip, or ``None``."""
    from ..platform.registry import model_for_spec

    model = model_for_spec(spec)
    return model.variation if model is not None else None


@dataclass(frozen=True)
class CoreVariationMap:
    """Per-core static Vmin offsets (mV) for one silicon instance."""

    spec_name: str
    offsets_mv: Tuple[float, ...]

    def offset_of(self, core_id: int) -> float:
        """Static Vmin offset of one core, in mV."""
        if not 0 <= core_id < len(self.offsets_mv):
            raise ConfigurationError(
                f"{self.spec_name}: core {core_id} out of range"
            )
        return self.offsets_mv[core_id]

    def max_offset(self, core_ids) -> float:
        """Worst (largest) offset among a set of cores; 0 for empty set."""
        ids = list(core_ids)
        if not ids:
            return 0.0
        return max(self.offset_of(c) for c in ids)

    def most_robust_pmd(self, spec: ChipSpec) -> int:
        """PMD whose worst core has the smallest offset."""
        return min(
            range(spec.n_pmds),
            key=lambda p: max(
                self.offset_of(c) for c in spec.cores_of_pmd(p)
            ),
        )

    def most_sensitive_pmd(self, spec: ChipSpec) -> int:
        """PMD whose worst core has the largest offset."""
        return max(
            range(spec.n_pmds),
            key=lambda p: max(
                self.offset_of(c) for c in spec.cores_of_pmd(p)
            ),
        )

    def span_mv(self) -> float:
        """Difference between the most and least sensitive core."""
        return max(self.offsets_mv) - min(self.offsets_mv)


def max_core_offset_mv(spec: ChipSpec) -> float:
    """Largest static offset possible for a chip family, in mV."""
    params = _variation_params(spec)
    if params is not None:
        return params.max_offset_mv
    return _DEFAULT_MAX_OFFSET_MV


def variation_rng(spec: ChipSpec, silicon_seed: int) -> random.Random:
    """The derived RNG stream of one ``(spec, seed)`` silicon instance.

    Keyed on the chip family name and the seed, so the same seed draws
    a different chip from each family's population but always the same
    chip within a family.
    """
    return random.Random((spec.name, silicon_seed).__repr__())


def make_variation_map(
    spec: ChipSpec,
    silicon_seed: int = 0,
    rng: Optional[random.Random] = None,
) -> CoreVariationMap:
    """Build the static variation map for one silicon instance.

    Seed 0 reproduces the specific characterized chip on platforms whose
    bundle carries hand-laid ``paper_offsets_mv`` (X-Gene 2's robust
    PMD2, Fig. 4); every other (spec, seed) pair draws offsets uniformly
    in ``[0, max_core_offset_mv(spec)]`` with mild within-PMD
    correlation, since the two cores of a PMD share layout and supply
    routing.

    ``rng`` injects an explicit random stream and always draws from the
    population (it bypasses the paper-chip shortcut — an injected
    stream means the caller wants the draw, not the hand-laid table);
    by default the stream is derived via :func:`variation_rng`.
    """
    if rng is None:
        if silicon_seed == 0:
            params = _variation_params(spec)
            if params is not None and params.paper_offsets_mv is not None:
                return CoreVariationMap(spec.name, params.paper_offsets_mv)
        rng = variation_rng(spec, silicon_seed)
    limit = max_core_offset_mv(spec)
    offsets = []
    for pmd in range(spec.n_pmds):
        pmd_bias = rng.uniform(0.0, limit * 0.8)
        for _ in spec.cores_of_pmd(pmd):
            wiggle = rng.uniform(0.0, limit * 0.2)
            offsets.append(round(min(limit, pmd_bias + wiggle), 1))
    return CoreVariationMap(spec.name, tuple(offsets))
