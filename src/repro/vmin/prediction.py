"""Regression-based Vmin prediction — the approach the paper rejects.

Section VI.A: *"we do not use any sophisticated mechanism for predicting
the safe Vmin because the prediction schemes for Vmin that have been
proposed in the literature are error-prone and can lead to system
failures in real microprocessors"* (citing linear-regression performance
/ power models [27], [28] among others).

To give that argument a concrete baseline, this module implements such a
predictor: ordinary least squares over configuration features (utilized
PMDs, frequency class, active cores, workload L3 rate and activity),
trained on a *sample* of characterization measurements. The evaluation
API then quantifies exactly what the paper warns about: a predictor with
a small mean error still underpredicts a tail of configurations, and an
underprediction is a crash — unless a guard margin large enough to
erase the predictor's advantage is added back.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..allocation import Allocation, cores_for
from ..errors import ConfigurationError
from ..platform.specs import ChipSpec, FrequencyClass
from ..workloads.profiles import BenchmarkProfile
from ..workloads.suites import characterization_set
from .model import VminModel

_FREQ_CLASS_ORDINAL = {
    FrequencyClass.DIVIDE: 0.0,
    FrequencyClass.SKIP: 1.0,
    FrequencyClass.HIGH: 2.0,
}


@dataclass(frozen=True)
class TrainingPoint:
    """One characterization measurement used for fitting."""

    nthreads: int
    allocation: Allocation
    freq_hz: int
    benchmark: str
    vmin_mv: float
    features: Tuple[float, ...]


def _features(
    spec: ChipSpec,
    cores: Sequence[int],
    freq_hz: int,
    profile: BenchmarkProfile,
) -> Tuple[float, ...]:
    pmds = {spec.pmd_of_core(c) for c in cores}
    freq_class = spec.frequency_class(spec.nearest_frequency(freq_hz))
    return (
        1.0,  # intercept
        len(pmds) / spec.n_pmds,
        len(cores) / spec.n_cores,
        _FREQ_CLASS_ORDINAL[freq_class],
        freq_hz / spec.fmax_hz,
        min(1.0, profile.l3_rate_per_mcycles / 10000.0),
        profile.activity,
    )


@dataclass
class PredictionReport:
    """Accuracy summary of a fitted predictor on held-out points."""

    mean_abs_error_mv: float
    max_underprediction_mv: float
    underpredicted_configs: int
    total_configs: int

    @property
    def underprediction_rate(self) -> float:
        """Fraction of configurations predicted below the true Vmin."""
        if self.total_configs == 0:
            return 0.0
        return self.underpredicted_configs / self.total_configs


class VminPredictor:
    """Least-squares Vmin model over configuration features."""

    def __init__(self, spec: ChipSpec):
        self.spec = spec
        self._weights: Optional[np.ndarray] = None
        self.training_points: List[TrainingPoint] = []

    @property
    def is_fitted(self) -> bool:
        """True once :meth:`fit` ran."""
        return self._weights is not None

    # -- data generation -----------------------------------------------------

    def sample_configurations(
        self,
        vmin_model: VminModel,
        benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
        fraction: float = 0.3,
        seed: int = 0,
    ) -> List[TrainingPoint]:
        """Characterize a random sample of the configuration space.

        This mimics the realistic setting: nobody measures every
        (threads, allocation, frequency, benchmark) combination, so the
        predictor generalises from a subset — which is where the tail
        risk comes from.
        """
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must be in (0, 1]")
        pool = list(benchmarks) if benchmarks else characterization_set()
        rng = random.Random(seed)
        points: List[TrainingPoint] = []
        for nthreads in range(1, self.spec.n_cores + 1):
            for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
                cores = cores_for(self.spec, nthreads, allocation)
                for freq_hz in self.spec.frequency_steps():
                    for profile in pool:
                        if rng.random() > fraction:
                            continue
                        vmin = vmin_model.safe_vmin_mv(
                            freq_hz, cores, profile.vmin_delta_mv
                        )
                        points.append(
                            TrainingPoint(
                                nthreads=nthreads,
                                allocation=allocation,
                                freq_hz=freq_hz,
                                benchmark=profile.name,
                                vmin_mv=vmin,
                                features=_features(
                                    self.spec, cores, freq_hz, profile
                                ),
                            )
                        )
        return points

    # -- fitting and prediction -------------------------------------------------

    def fit(self, points: Sequence[TrainingPoint]) -> "VminPredictor":
        """Fit the least-squares model on measured points."""
        if len(points) < 10:
            raise ConfigurationError(
                f"need at least 10 training points, got {len(points)}"
            )
        self.training_points = list(points)
        design = np.array([p.features for p in points])
        target = np.array([p.vmin_mv for p in points])
        self._weights, *_ = np.linalg.lstsq(design, target, rcond=None)
        return self

    def predict_mv(
        self,
        cores: Sequence[int],
        freq_hz: int,
        profile: BenchmarkProfile,
        guard_mv: float = 0.0,
    ) -> float:
        """Predicted safe Vmin for a configuration (plus a guard)."""
        if not self.is_fitted:
            raise ConfigurationError("predictor is not fitted")
        features = np.array(
            _features(self.spec, cores, freq_hz, profile)
        )
        return float(features @ self._weights) + guard_mv

    # -- evaluation ---------------------------------------------------------------

    def evaluate(
        self,
        vmin_model: VminModel,
        benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
        guard_mv: float = 0.0,
    ) -> PredictionReport:
        """Score the predictor against the full configuration space."""
        if not self.is_fitted:
            raise ConfigurationError("predictor is not fitted")
        pool = list(benchmarks) if benchmarks else characterization_set()
        abs_errors: List[float] = []
        max_under = 0.0
        under = 0
        total = 0
        for nthreads in range(1, self.spec.n_cores + 1):
            for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
                cores = cores_for(self.spec, nthreads, allocation)
                for freq_hz in self.spec.frequency_steps():
                    for profile in pool:
                        truth = vmin_model.safe_vmin_mv(
                            freq_hz, cores, profile.vmin_delta_mv
                        )
                        predicted = self.predict_mv(
                            cores, freq_hz, profile, guard_mv
                        )
                        total += 1
                        abs_errors.append(abs(predicted - truth))
                        if predicted < truth:
                            under += 1
                            max_under = max(max_under, truth - predicted)
        return PredictionReport(
            mean_abs_error_mv=float(np.mean(abs_errors)),
            max_underprediction_mv=max_under,
            underpredicted_configs=under,
            total_configs=total,
        )

    def required_guard_mv(
        self,
        vmin_model: VminModel,
        benchmarks: Optional[Sequence[BenchmarkProfile]] = None,
    ) -> float:
        """Guard margin that would make this predictor never underpredict.

        This is the paper's point in one number: by the time the guard
        covers the predictor's tail, the predictor has given back most
        of the margin it promised to reclaim.
        """
        report = self.evaluate(vmin_model, benchmarks, guard_mv=0.0)
        return report.max_underprediction_mv
