"""Content-addressed memoization of Vmin characterization results.

The safe-Vmin characterization campaign is the dominant cost of the
reproduction: every figure that needs a safe voltage re-derives it by
descending the rail 10 mV at a time with 1000 runs per level
(Section III.A). The follow-up framework paper (arXiv:2106.09975)
treats exactly this campaign as the cost worth amortizing across
experiments — which is what this module does for the simulated chips.

Cache keys are **content addressed**: every component that can change
the result is hashed into the key, so a hit is correct by construction
and anything else is a miss. The key scheme is::

    sha256(canonical_json({
        kind:              "safe_vmin" | "unsafe_scan" | "safe_voltage",
        spec:              platform spec fingerprint (all ChipSpec fields),
        model:             ground-truth fingerprint (base tables + per-core
                           variation offsets, i.e. the silicon instance),
        faults:            fault-model fingerprint (unsafe-region widths),
        freq_class:        Vmin-relevant frequency class of the setting,
        cores:             active core ids,
        pmd_occupancy:     threads per utilized PMD (droop class input),
        workload:          benchmark/stressmark name,
        workload_delta_mv: single-core workload Vmin delta,
        seed:              campaign seed,
        ...protocol:       step_mv, run counts, execution mode,
    }))

Storage is a two-level hierarchy: a process-local LRU dictionary in
front of an optional on-disk JSON store (one file per key, written
atomically). The disk tier is what lets parallel orchestrator workers
and repeated ``repro run-all`` invocations share campaign results. A
corrupted or unreadable disk entry is discarded and counted, never
raised.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import weakref
from collections import OrderedDict
from dataclasses import asdict, dataclass, replace
from functools import lru_cache
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, Optional, TypeVar, Union

from .. import telemetry
from ..errors import ConfigurationError
from ..telemetry import names as metric_names

from ..platform.specs import ChipSpec

#: JSON-representable cache value.
CacheValue = Any

_F = TypeVar("_F", bound=Callable[..., Any])


def cache_key_producer(func: _F) -> _F:
    """Marker: ``func``'s output feeds content-addressed cache keys.

    A no-op at runtime — its value is the contract it announces: a
    decorated function must be a *pure* function of its arguments (no
    environment variables, no wall clock, no module-level mutable
    state), or identical campaigns would hash to different keys.
    ``reprolint`` rule RL004 statically enforces the contract for every
    function carrying this marker.
    """
    try:
        func.__cache_key_producer__ = True  # type: ignore[attr-defined]
    except (AttributeError, TypeError):  # pragma: no cover - C callables
        pass
    return func


@cache_key_producer
def canonical_json(payload: Any) -> str:
    """Canonical (sorted, compact) JSON used for content addressing."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _digest(payload: Any) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


@cache_key_producer
@lru_cache(maxsize=64)
def spec_fingerprint(spec: ChipSpec) -> str:
    """Stable fingerprint over *every* field of a platform spec.

    Any change to the platform model — core count, frequency range,
    nominal voltage, cache geometry, memory bandwidth — yields a new
    fingerprint and therefore invalidates every cached campaign of the
    old spec. Specs are frozen dataclasses, so the digest is memoized
    per instance value (it shows up on every cache lookup otherwise).
    """
    return _digest(asdict(spec))[:16]


def _identity_memo(
    compute: Callable[[Any], str]
) -> Callable[[Any], str]:
    """Memoize a fingerprint per *model instance* (weakly referenced).

    Model objects are mutable and unhashable by value, but a
    fingerprint is stable for the lifetime of an instance: anything that
    would change it (tables, offsets, spec) is fixed at construction.
    Instances that cannot be weakly referenced are recomputed each call.
    """
    memo: "weakref.WeakKeyDictionary[Any, str]" = (
        weakref.WeakKeyDictionary()
    )

    def lookup(model: Any) -> str:
        try:
            cached = memo.get(model)
        except TypeError:
            return compute(model)
        if cached is None:
            cached = compute(model)
            try:
                memo[model] = cached
            except TypeError:
                pass
        return cached

    lookup.__name__ = compute.__name__
    lookup.__doc__ = compute.__doc__
    return lookup


@cache_key_producer
@_identity_memo
def model_fingerprint(vmin_model: Any) -> str:
    """Fingerprint of a ground-truth :class:`~repro.vmin.model.VminModel`.

    Covers the base-Vmin tables and the silicon instance's per-core
    variation offsets via :meth:`VminModel.content_key`, plus the spec.
    """
    payload = dict(vmin_model.content_key())
    payload["spec"] = spec_fingerprint(vmin_model.spec)
    return _digest(payload)[:16]


@cache_key_producer
@_identity_memo
def fault_fingerprint(fault_model: Any) -> str:
    """Fingerprint of a fault model's unsafe-region parameters."""
    return _digest(
        {
            "class": type(fault_model).__qualname__,
            "max_width_mv": fault_model.MAX_WIDTH_MV,
            "width_step_mv": fault_model.WIDTH_STEP_MV,
            "min_width_mv": fault_model.MIN_WIDTH_MV,
        }
    )[:16]


@cache_key_producer
def make_key(**parts: Any) -> str:
    """Content-addressed cache key from keyword components."""
    return _digest(parts)


@dataclass
class CacheStats:
    """Hit/miss accounting of one cache instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    disk_hits: int = 0
    corrupt_discarded: int = 0

    @property
    def lookups(self) -> int:
        """Total number of :meth:`VminCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "CacheStats":
        """Immutable copy, for before/after deltas."""
        return replace(self)

    def delta(self, before: "CacheStats") -> "CacheStats":
        """Counter difference between this snapshot and ``before``."""
        return CacheStats(
            hits=self.hits - before.hits,
            misses=self.misses - before.misses,
            stores=self.stores - before.stores,
            evictions=self.evictions - before.evictions,
            disk_hits=self.disk_hits - before.disk_hits,
            corrupt_discarded=self.corrupt_discarded
            - before.corrupt_discarded,
        )


class VminCache:
    """Two-tier (LRU memory + optional disk) characterization cache.

    ``capacity`` bounds the in-memory tier; ``capacity=0`` disables it
    (and, with no ``cache_dir``, disables caching entirely, which is the
    supported way to opt out). ``cache_dir`` enables the on-disk JSON
    store shared across processes and invocations.
    """

    def __init__(
        self,
        capacity: int = 4096,
        cache_dir: Optional[Union[str, os.PathLike]] = None,
    ):
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        self.capacity = capacity
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, CacheValue]" = OrderedDict()
        self._lock = threading.Lock()
        if self.cache_dir is not None:
            try:
                self.cache_dir.mkdir(parents=True, exist_ok=True)
            except FileExistsError:
                raise ConfigurationError(
                    f"cache dir {str(self.cache_dir)!r} exists and is "
                    "not a directory"
                ) from None

    @property
    def disabled(self) -> bool:
        """True when no tier can store anything (the opt-out config).

        Callers may use this to skip key derivation entirely: every
        lookup would miss and every store would be dropped anyway.
        """
        return self.capacity == 0 and self.cache_dir is None

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    # -- lookup ----------------------------------------------------------------

    def get(self, key: str) -> Optional[CacheValue]:
        """Cached value for ``key``, or ``None`` on a miss."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                telemetry.inc(metric_names.VMIN_CACHE_HITS)
                return self._entries[key]
            value = self._disk_load(key)
            if value is None:
                self.stats.misses += 1
                telemetry.inc(metric_names.VMIN_CACHE_MISSES)
                return None
            self.stats.hits += 1
            self.stats.disk_hits += 1
            telemetry.inc(metric_names.VMIN_CACHE_HITS)
            telemetry.inc(metric_names.VMIN_CACHE_DISK_HITS)
            self._memory_store(key, value)
            return value

    def put(self, key: str, value: CacheValue) -> None:
        """Store a JSON-representable value under ``key``."""
        with self._lock:
            self.stats.stores += 1
            telemetry.inc(metric_names.VMIN_CACHE_STORES)
            self._memory_store(key, value)
            self._disk_store(key, value)

    def clear(self) -> None:
        """Drop the in-memory tier (the disk store is left alone)."""
        with self._lock:
            self._entries.clear()

    def disk_bytes(self) -> int:
        """Total size of the on-disk store, bytes (0 when memory-only).

        Scans the cache directory; meant for end-of-run telemetry and
        the run manifest, not for hot-path accounting.
        """
        if self.cache_dir is None:
            return 0
        total = 0
        try:
            for path in self.cache_dir.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    continue
        except OSError:
            return total
        return total

    def publish_telemetry(self) -> None:
        """Write the disk-tier size gauge into the metric registry."""
        if telemetry.enabled():
            telemetry.set_gauge(
                metric_names.VMIN_CACHE_DISK_BYTES, float(self.disk_bytes())
            )

    # -- memory tier -----------------------------------------------------------

    def _memory_store(self, key: str, value: CacheValue) -> None:
        if self.capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1
            telemetry.inc(metric_names.VMIN_CACHE_EVICTIONS)

    # -- disk tier -------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.cache_dir is not None
        return self.cache_dir / f"{key}.json"

    def _disk_load(self, key: str) -> Optional[CacheValue]:
        if self.cache_dir is None:
            return None
        path = self._disk_path(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                entry = json.load(handle)
            if not isinstance(entry, dict) or entry.get("key") != key:
                raise ValueError("cache entry does not match its key")
            return entry["value"]
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            # Corrupted entry: discard it and treat the lookup as a miss
            # rather than poisoning the campaign.
            self.stats.corrupt_discarded += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def _disk_store(self, key: str, value: CacheValue) -> None:
        if self.cache_dir is None:
            return
        path = self._disk_path(key)
        try:
            payload = json.dumps({"key": key, "value": value})
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.cache_dir), suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except OSError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
        except (OSError, TypeError, ValueError):
            # Disk persistence is best-effort; the memory tier already
            # holds the value.
            pass


# -- process-default cache -----------------------------------------------------

_default_lock = threading.Lock()
_default_cache = VminCache()


def get_default_cache() -> VminCache:
    """The process-wide cache used when no explicit cache is passed."""
    return _default_cache


def set_default_cache(cache: VminCache) -> VminCache:
    """Replace the process-wide default cache."""
    global _default_cache
    with _default_lock:
        _default_cache = cache
    return cache


def configure_default_cache(
    cache_dir: Optional[Union[str, os.PathLike]] = None,
    capacity: int = 4096,
) -> VminCache:
    """Install a fresh default cache (optionally disk-backed)."""
    return set_default_cache(VminCache(capacity=capacity, cache_dir=cache_dir))


def ensure_default_cache(
    cache_dir: Optional[Union[str, os.PathLike]] = None,
) -> VminCache:
    """Point the default cache at ``cache_dir``, keeping it when it
    already matches (so accumulated entries and stats survive)."""
    target = Path(cache_dir) if cache_dir is not None else None
    with _default_lock:
        if _default_cache.cache_dir == target:
            return _default_cache
    return configure_default_cache(cache_dir=cache_dir)


def reset_default_cache() -> VminCache:
    """Fresh in-memory default cache (used by tests and new runs)."""
    return configure_default_cache()


@cache_key_producer
def occupancy_of(spec: ChipSpec, cores: Iterable[int]) -> Dict[str, int]:
    """Threads per utilized PMD — the droop-class input of the key."""
    occupancy: Dict[str, int] = {}
    for core in cores:
        pmd = str(spec.pmd_of_core(core))
        occupancy[pmd] = occupancy.get(pmd, 0) + 1
    return occupancy
