"""Ground-truth safe-Vmin model of the simulated silicon.

The real chips' safe Vmin was measured by the paper's characterization
campaign (Section III); here the same relationships are encoded as the
*ground truth* that campaigns and the daemon re-discover:

    Vmin = base(frequency class, droop class)
           + attenuation(active cores) * (core offset + workload delta)

* ``base`` comes from lookup tables: Table II verbatim for X-Gene 3, and
  tables constructed for X-Gene 2 from the paper's factor decomposition
  (Fig. 10: clock division ~12 %, clock skipping ~3 %, core allocation
  ~4 %, workload ~1 % of nominal).
* the static/workload variation term **fades with core count** — the
  paper's central finding: with 4+ active cores the droop noise floor
  dominates and per-core/per-program differences all but vanish
  (Figs. 3 vs 4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..errors import ConfigurationError
from ..platform.chip import Chip, ChipState
from ..platform.specs import ChipSpec, FrequencyClass
from ..units import HertzInt, Millivolts
from .droop import droop_bin_index, droop_ladder
from .variation import CoreVariationMap, make_variation_map

#: Programmatic base-table overrides by chip display name. The built-in
#: chips' tables live in the declarative bundles (``platform/defs``);
#: this dict only holds tables registered via :func:`register_vmin_table`
#: and takes precedence over the bundle registry.
_BASE_TABLES: Dict[str, Dict[FrequencyClass, Tuple[int, ...]]] = {}


def _resolve_base_table(
    spec: ChipSpec,
) -> Dict[FrequencyClass, Tuple[int, ...]]:
    """Base-Vmin table of a chip: override first, then its bundle."""
    table = _BASE_TABLES.get(spec.name)
    if table is not None:
        return table
    from ..platform.registry import model_for_spec

    model = model_for_spec(spec)
    if model is not None:
        return model.vmin_base_mv
    raise ConfigurationError(
        f"no Vmin table for platform {spec.name!r}"
    )


def register_vmin_table(
    spec: ChipSpec,
    table: Dict[FrequencyClass, Tuple[int, ...]],
) -> None:
    """Register the ground-truth base-Vmin table of a custom platform.

    ``table`` maps each reachable frequency class to one base Vmin per
    droop class (ordered mild to severe; the droop-class count follows
    :func:`repro.vmin.droop.droop_ladder`). Values are validated to fit
    under the nominal voltage and to be monotone per row.
    """
    n_classes = len(droop_ladder(spec))
    if FrequencyClass.HIGH not in table or FrequencyClass.SKIP not in table:
        raise ConfigurationError(
            "table needs at least the HIGH and SKIP frequency classes"
        )
    for freq_class, row in table.items():
        if len(row) != n_classes:
            raise ConfigurationError(
                f"{spec.name}: row {freq_class.value} needs "
                f"{n_classes} droop classes, got {len(row)}"
            )
        if list(row) != sorted(row):
            raise ConfigurationError(
                f"{spec.name}: row {freq_class.value} must be "
                f"monotone in the droop class"
            )
        if max(row) > spec.nominal_voltage_mv:
            raise ConfigurationError(
                f"{spec.name}: Vmin above the nominal voltage"
            )
    _BASE_TABLES[spec.name] = {
        freq_class: tuple(int(v) for v in row)
        for freq_class, row in table.items()
    }


def variation_attenuation(n_active_cores: int) -> float:
    """How much of the static/workload Vmin variation survives.

    Single-core runs see the full ±30-40 mV variation (Fig. 4); at 3-4
    active cores at most ~10 mV survives (Fig. 3's "maximum difference is
    only 10 mV"); beyond that the droop floor makes workloads and cores
    indistinguishable.
    """
    if n_active_cores <= 1:
        return 1.0
    if n_active_cores == 2:
        return 0.6
    if n_active_cores <= 4:
        return 0.25
    return 0.08


@dataclass(frozen=True)
class VminBreakdown:
    """Decomposition of one safe-Vmin evaluation, for analysis and tests."""

    base_mv: float
    core_offset_mv: float
    workload_delta_mv: float
    attenuation: float
    total_mv: float
    freq_class: FrequencyClass
    droop_class: int


class VminModel:
    """Safe-Vmin ground truth for one silicon instance."""

    def __init__(
        self,
        spec: ChipSpec,
        silicon_seed: int = 0,
        variation: Optional[CoreVariationMap] = None,
    ):
        self.spec = spec
        self.variation = variation or make_variation_map(spec, silicon_seed)
        self._table = _resolve_base_table(spec)
        self._n_classes = len(droop_ladder(spec))

    @classmethod
    def for_chip(cls, chip: Chip) -> "VminModel":
        """Model matching a live chip's spec and silicon seed."""
        return cls(chip.spec, silicon_seed=chip.silicon_seed)

    def content_key(self) -> Dict[str, object]:
        """Stable payload identifying this ground-truth instance.

        Used by :mod:`repro.vmin.cache` for content-addressed campaign
        memoization: two models with the same base tables and the same
        per-core variation offsets are interchangeable, regardless of
        which seed produced the offsets.
        """
        return {
            "table": {
                freq_class.value: list(row)
                for freq_class, row in sorted(
                    self._table.items(), key=lambda item: item[0].value
                )
            },
            "offsets_mv": list(self.variation.offsets_mv),
        }

    # -- base table -----------------------------------------------------------

    def base_vmin_mv(
        self, freq_class: FrequencyClass, droop_class: int
    ) -> Millivolts:
        """Base Vmin before variation terms, from the lookup tables."""
        if not 0 <= droop_class < self._n_classes:
            raise ConfigurationError(
                f"{self.spec.name}: droop class {droop_class} out of range"
            )
        row = self._table.get(freq_class)
        if row is None:
            # Chips without the clock-division path treat DIVIDE as SKIP
            # (X-Gene 3, Section II.B).
            row = self._table[FrequencyClass.SKIP]
        return float(row[droop_class])

    # -- full evaluation ------------------------------------------------------

    def evaluate(
        self,
        freq_hz: HertzInt,
        active_cores: Iterable[int],
        workload_delta_mv: Millivolts = 0.0,
    ) -> VminBreakdown:
        """Safe Vmin with its decomposition for one configuration.

        ``freq_hz`` is the highest frequency among utilized PMDs (the rail
        must satisfy the most demanding clock domain).
        """
        cores = frozenset(active_cores)
        pmds = {self.spec.pmd_of_core(c) for c in cores}
        droop_class = droop_bin_index(self.spec, max(1, len(pmds)))
        freq_class = self.spec.frequency_class(
            self.spec.nearest_frequency(freq_hz)
        )
        base = self.base_vmin_mv(freq_class, droop_class)
        atten = variation_attenuation(len(cores))
        core_offset = self.variation.max_offset(cores)
        total = base + atten * (core_offset + workload_delta_mv)
        total = min(total, float(self.spec.nominal_voltage_mv))
        return VminBreakdown(
            base_mv=base,
            core_offset_mv=core_offset,
            workload_delta_mv=workload_delta_mv,
            attenuation=atten,
            total_mv=total,
            freq_class=freq_class,
            droop_class=droop_class,
        )

    def safe_vmin_mv(
        self,
        freq_hz: HertzInt,
        active_cores: Iterable[int],
        workload_delta_mv: Millivolts = 0.0,
    ) -> Millivolts:
        """Safe Vmin (mV) for one configuration."""
        return self.evaluate(freq_hz, active_cores, workload_delta_mv).total_mv

    def safe_vmin_for_state(
        self, state: ChipState, workload_delta_mv: Millivolts = 0.0
    ) -> Millivolts:
        """Safe Vmin for a live chip snapshot.

        Uses the highest frequency among utilized PMDs; a fully idle chip
        is evaluated at its configured clocks with no active cores'
        variation term.
        """
        cores = state.active_cores or frozenset({0})
        return self.safe_vmin_mv(
            state.max_active_frequency(), cores, workload_delta_mv
        )

    # -- factor decomposition (Fig. 10) ----------------------------------------

    def factor_decomposition(self) -> Dict[str, float]:
        """Vmin dependence of each factor as a fraction of nominal voltage.

        Reproduces Fig. 10: on X-Gene 2 roughly workload 1 %, core
        allocation 4 %, clock skipping 3 %, clock division 12 %.
        """
        nominal = float(self.spec.nominal_voltage_mv)
        top_class = self._n_classes - 1
        high = self._table[FrequencyClass.HIGH]
        skip = self._table.get(FrequencyClass.SKIP, high)
        divide = self._table.get(FrequencyClass.DIVIDE)

        allocation_span = high[top_class] - high[0]
        skipping_drop = high[top_class] - skip[top_class]
        divide_drop = (
            (skip[top_class] - divide[top_class]) if divide else 0.0
        )
        # Workload effect in multicore runs: the attenuated delta span.
        workload_span = (
            2 * _MULTICORE_WORKLOAD_DELTA_LIMIT_MV
            * variation_attenuation(4)
        )
        return {
            "workload": workload_span / nominal,
            "core_allocation": allocation_span / nominal,
            "clock_skipping": skipping_drop / nominal,
            "clock_division": divide_drop / nominal,
        }


#: Largest single-core workload Vmin delta, mV (Section III.A reports up
#: to ~40 mV total workload variation on X-Gene 2, i.e. about +/-20 mV).
_MULTICORE_WORKLOAD_DELTA_LIMIT_MV = 20.0


def workload_delta_limit_mv() -> Millivolts:
    """Bound on per-benchmark Vmin deltas used by workload profiles."""
    return _MULTICORE_WORKLOAD_DELTA_LIMIT_MV
