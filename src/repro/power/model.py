"""Chip power model: dynamic, leakage, PMD overhead and uncore parts.

Power follows the standard CMOS decomposition the paper's energy
reasoning relies on:

* **dynamic** core power ``~ C * V^2 * f * activity`` — this is what
  voltage scaling (quadratic) and frequency scaling (linear) attack;
* **leakage** ``~ V^k`` per core — always on, since all cores share one
  rail and cannot be power-gated individually;
* **PMD overhead** — clock tree and L2 of each module, scaling with the
  module's own clock; fully-idle PMDs are clock-gated down to their
  floor, which is what makes *clustered* allocations cheaper for
  CPU-intensive programs (Fig. 7);
* **uncore** — L3, fabric and memory controllers. On X-Gene 3 the L3 is
  inside the PCP domain and scales with the rail voltage; on X-Gene 2 it
  is a separate domain at fixed voltage (Section II.A, Fig. 1).

Absolute watts are calibrated to the paper's reported operating points
(Table I TDPs; Tables III/IV average powers), but the *reproduction
claims* rest only on ratios between configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..errors import ConfigurationError
from ..platform.chip import ChipState
from ..platform.specs import ChipSpec
from ..units import Hertz, Millivolts, Watts


@dataclass(frozen=True)
class PowerParams:
    """Calibration constants of one chip's power model."""

    #: Uncore power (L3 + fabric + memory controllers) at nominal V, W.
    uncore_w: float
    #: One core's dynamic power at fmax, nominal V, activity 1.0, W.
    core_dyn_max_w: float
    #: One core's leakage at nominal V, W.
    core_leak_w: float
    #: Per-PMD overhead (clock tree + L2) at fmax, nominal V, W.
    pmd_overhead_w: float
    #: Whether the uncore shares the scaled rail (L3 in PCP domain).
    uncore_on_rail: bool
    #: Residual activity of an idle, clock-gated core.
    idle_activity: float = 0.06
    #: Leakage voltage exponent (leakage ~ V^k).
    leak_exponent: float = 2.0
    #: Uncore share that varies with memory-system utilization.
    uncore_dynamic_share: float = 0.4
    #: Residual fraction of clock-tree power on a fully idle (gated)
    #: PMD at a given clock: automatic clock gating is imperfect.
    gate_factor: float = 0.55
    #: Constant platform power visible to the meter but outside the
    #: scaled rail and clocks: DRAM refresh, SoC standby domain, VRM
    #: losses. Neither voltage nor frequency policies can touch it,
    #: which is what makes voltage savings sub-additive with placement
    #: in the paper's Tables III/IV.
    external_w: float = 0.0


#: Programmatic overrides by chip display name. The built-in chips'
#: calibrated coefficients live in their declarative bundles
#: (``platform/defs/*.toml``); this dict only holds parameters
#: registered via :func:`register_power_params` and takes precedence
#: over the bundle registry.
POWER_PARAMS: Dict[str, PowerParams] = {}


def register_power_params(spec_name: str, params: PowerParams) -> None:
    """Register the power-model constants of a custom platform."""
    if not spec_name:
        raise ConfigurationError("spec_name must be non-empty")
    POWER_PARAMS[spec_name] = params


@dataclass(frozen=True)
class PowerBreakdown:
    """One power evaluation split into its physical parts, in watts."""

    dynamic_w: float
    leakage_w: float
    pmd_overhead_w: float
    uncore_w: float
    external_w: float = 0.0

    @property
    def total_w(self) -> float:
        """Total measured platform power."""
        return (
            self.dynamic_w
            + self.leakage_w
            + self.pmd_overhead_w
            + self.uncore_w
            + self.external_w
        )


class PowerModel:
    """Evaluates chip power for an operating point and per-core loads."""

    def __init__(self, spec: ChipSpec, params: Optional[PowerParams] = None):
        if params is None:
            params = POWER_PARAMS.get(spec.name)
        if params is None:
            from ..platform.registry import model_for_spec

            model = model_for_spec(spec)
            if model is not None:
                params = model.power
        if params is None:
            raise ConfigurationError(
                f"no power parameters for platform {spec.name!r}"
            )
        self.spec = spec
        self.params = params

    # -- component models ---------------------------------------------------

    def _v_ratio(self, voltage_mv: Millivolts) -> float:
        if voltage_mv <= 0:
            raise ConfigurationError("voltage must be positive")
        return voltage_mv / self.spec.nominal_voltage_mv

    def core_dynamic_w(
        self, freq_hz: Hertz, voltage_mv: Millivolts, activity: float
    ) -> Watts:
        """Dynamic power of one core: C * V^2 * f * activity."""
        if activity < 0:
            raise ConfigurationError("activity must be non-negative")
        return (
            self.params.core_dyn_max_w
            * self._v_ratio(voltage_mv) ** 2
            * (freq_hz / self.spec.fmax_hz)
            * activity
        )

    def core_leakage_w(self, voltage_mv: Millivolts) -> Watts:
        """Leakage of one core (always on; the rail is shared)."""
        return (
            self.params.core_leak_w
            * self._v_ratio(voltage_mv) ** self.params.leak_exponent
        )

    def pmd_overhead_w(
        self, freq_hz: Hertz, voltage_mv: Millivolts, gated: bool
    ) -> Watts:
        """Clock-tree + L2 overhead of one PMD.

        A fully idle PMD is clock-gated to a small floor; an active one
        pays the full overhead at its clock.
        """
        scale = self.params.gate_factor if gated else 1.0
        return (
            self.params.pmd_overhead_w
            * self._v_ratio(voltage_mv) ** 2
            * (freq_hz / self.spec.fmax_hz)
            * scale
        )

    def uncore_power_w(
        self, voltage_mv: Millivolts, memory_utilization: float
    ) -> Watts:
        """L3 + fabric + memory-controller power.

        Scales with rail voltage only when the L3 sits in the PCP domain
        (X-Gene 3); the utilization-dependent share models memory-system
        switching activity.
        """
        if not 0.0 <= memory_utilization <= 1.0:
            raise ConfigurationError(
                "memory_utilization must be in [0, 1]"
            )
        base = self.params.uncore_w
        share = self.params.uncore_dynamic_share
        level = (1.0 - share) + share * memory_utilization
        if self.params.uncore_on_rail:
            level *= self._v_ratio(voltage_mv) ** 2
        return base * level

    # -- whole-chip evaluation -------------------------------------------------

    def chip_power(
        self,
        state: ChipState,
        core_activity: Mapping[int, float],
        memory_utilization: float = 0.0,
        leakage_multiplier: float = 1.0,
    ) -> PowerBreakdown:
        """Chip power for a snapshot plus per-core effective activities.

        ``core_activity`` maps busy core ids to their effective switching
        activity (from :func:`repro.perf.model.execution_state`); cores
        missing from the map are idle and draw only their clock-gated
        floor. ``leakage_multiplier`` scales the leakage term for
        off-calibration junction temperatures
        (:meth:`repro.platform.thermal.ThermalModel.leakage_multiplier`).
        """
        if leakage_multiplier <= 0:
            raise ConfigurationError(
                "leakage multiplier must be positive"
            )
        spec = self.spec
        voltage = state.voltage_mv
        active_pmds = state.active_pmds
        dynamic = 0.0
        for core_id in range(spec.n_cores):
            freq = state.frequency_of_core(core_id)
            if core_id in core_activity:
                activity = core_activity[core_id]
            else:
                # Idle core: residual clock toggling; much less when the
                # whole PMD is idle and its clock tree is gated.
                activity = self.params.idle_activity
                if spec.pmd_of_core(core_id) not in active_pmds:
                    activity *= self.params.gate_factor
            dynamic += self.core_dynamic_w(freq, voltage, activity)
        leakage = (
            spec.n_cores * self.core_leakage_w(voltage)
            * leakage_multiplier
        )
        pmd_overhead = 0.0
        active_pmds = state.active_pmds
        for pmd_id in range(spec.n_pmds):
            freq = state.pmd_frequencies_hz[pmd_id]
            pmd_overhead += self.pmd_overhead_w(
                freq, voltage, gated=pmd_id not in active_pmds
            )
        uncore = self.uncore_power_w(voltage, memory_utilization)
        return PowerBreakdown(
            dynamic_w=dynamic,
            leakage_w=leakage,
            pmd_overhead_w=pmd_overhead,
            uncore_w=uncore,
            external_w=self.params.external_w,
        )

    def idle_power_w(self, state: ChipState) -> Watts:
        """Chip power with every core idle at the snapshot's V/F point."""
        return self.chip_power(state, {}, 0.0).total_w

    def max_power_w(self) -> Watts:
        """All-cores-busy power at nominal V, fmax, activity 1 (TDP-ish)."""
        spec = self.spec
        state = ChipState(
            spec=spec,
            voltage_mv=spec.nominal_voltage_mv,
            pmd_frequencies_hz=(spec.fmax_hz,) * spec.n_pmds,
            active_cores=frozenset(range(spec.n_cores)),
        )
        loads = {core: 1.0 for core in range(spec.n_cores)}
        return self.chip_power(state, loads, 1.0).total_w
