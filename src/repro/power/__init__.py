"""Power substrate: chip power model, energy metering, E/D metrics."""

from .energy import (
    EnergyMeter,
    RunEnergy,
    ed2p,
    edp,
    penalty_percent,
    savings_percent,
)
from .model import POWER_PARAMS, PowerBreakdown, PowerModel, PowerParams

__all__ = [
    "EnergyMeter",
    "POWER_PARAMS",
    "PowerBreakdown",
    "PowerModel",
    "PowerParams",
    "RunEnergy",
    "ed2p",
    "edp",
    "penalty_percent",
    "savings_percent",
]
