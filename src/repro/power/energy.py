"""Energy accounting and combined energy/performance metrics (Section V).

Energy is the integral of power over a run; to compare configurations
without rewarding arbitrarily slow ones, the paper uses the
energy-delay-squared product (ED2P = E * D^2), the standard server-class
metric that weighs performance more heavily than EDP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..errors import ConfigurationError
from ..units import Joules, Seconds, Watts


def edp(energy_j: Joules, delay_s: Seconds) -> float:
    """Energy-delay product, J*s."""
    return energy_j * delay_s


def ed2p(energy_j: Joules, delay_s: Seconds) -> float:
    """Energy-delay-squared product, J*s^2 (the paper's metric)."""
    return energy_j * delay_s * delay_s


def savings_percent(baseline: float, improved: float) -> float:
    """Relative saving of ``improved`` vs ``baseline``, in percent.

    Positive when ``improved`` is smaller (better); this is how the
    paper's Tables III/IV report energy and ED2P savings.
    """
    if baseline == 0:
        raise ConfigurationError("baseline value must be non-zero")
    return 100.0 * (baseline - improved) / baseline


def penalty_percent(baseline: float, degraded: float) -> float:
    """Relative increase of ``degraded`` vs ``baseline``, in percent.

    Positive when ``degraded`` is larger; used for completion-time
    penalties (3.2 % / 2.5 % in the paper's evaluation).
    """
    return -savings_percent(baseline, degraded)


@dataclass
class EnergyMeter:
    """Integrates piecewise-constant power into energy over time.

    The system simulator calls :meth:`accumulate` for every interval
    between events; per-interval samples can optionally be kept for
    time-series figures (Figs. 14/15).
    """

    keep_samples: bool = False
    energy_j: float = 0.0
    elapsed_s: float = 0.0
    samples: List[Tuple[float, float, float]] = field(default_factory=list)
    _time_s: float = 0.0

    def accumulate(self, power_w: Watts, dt_s: Seconds) -> None:
        """Add an interval of constant power."""
        if dt_s < 0:
            raise ConfigurationError("interval must be non-negative")
        if power_w < 0:
            raise ConfigurationError("power must be non-negative")
        if dt_s == 0:
            return
        if self.keep_samples:
            self.samples.append((self._time_s, dt_s, power_w))
        self.energy_j += power_w * dt_s
        self.elapsed_s += dt_s
        self._time_s += dt_s

    @property
    def average_power_w(self) -> Watts:
        """Mean power over everything accumulated so far."""
        if self.elapsed_s == 0:
            return 0.0
        return self.energy_j / self.elapsed_s

    def ed2p(self, delay_s: Optional[Seconds] = None) -> float:
        """ED2P using the accumulated energy and (by default) elapsed time."""
        delay = self.elapsed_s if delay_s is None else delay_s
        return ed2p(self.energy_j, delay)


@dataclass(frozen=True)
class RunEnergy:
    """Energy summary of one completed run."""

    duration_s: float
    energy_j: float

    @property
    def average_power_w(self) -> Watts:
        """Mean power over the run."""
        if self.duration_s == 0:
            return 0.0
        return self.energy_j / self.duration_s

    @property
    def edp(self) -> float:
        """Energy-delay product of the run."""
        return edp(self.energy_j, self.duration_s)

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product of the run."""
        return ed2p(self.energy_j, self.duration_s)

    def normalized(self, instances: int) -> "RunEnergy":
        """Energy divided by the number of replicated instances.

        Section II.B: N copies of a single-threaded benchmark execute N
        units of work, so their energy is normalized by N to compare
        fairly with parallel programs that execute one unit.
        """
        if instances < 1:
            raise ConfigurationError("instances must be >= 1")
        return RunEnergy(
            duration_s=self.duration_s, energy_j=self.energy_j / instances
        )
