"""Core-allocation strategies: *clustered* vs *spreaded* threads (Fig. 2).

The paper studies two ways of placing N threads on a chip whose cores come
in pairs (PMDs):

* **clustered** — threads fill consecutive cores, occupying both cores of
  each PMD before touching the next one, so N threads utilize ceil(N/2)
  PMDs;
* **spreaded** — threads land on separate PMDs (one thread per PMD) as
  long as free PMDs exist, so N threads utilize min(N, n_pmds) PMDs.

Utilized-PMD count is the knob that matters for the voltage-droop
magnitude and therefore for the safe Vmin (Table II), while the choice
also changes L2 sharing inside a PMD, which is what makes clustered vs
spreaded a *workload-dependent* energy trade-off (Fig. 7).
"""

from __future__ import annotations

import enum
import functools
import math
from typing import Iterable, List, Sequence, Tuple

from .errors import ConfigurationError, PlacementError
from .platform.specs import ChipSpec


class Allocation(enum.Enum):
    """Thread-to-core allocation strategy (paper Fig. 2)."""

    CLUSTERED = "clustered"
    SPREADED = "spreaded"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def clustered_cores(spec: ChipSpec, nthreads: int) -> Tuple[int, ...]:
    """First ``nthreads`` cores in consecutive order (clustered, Fig. 2)."""
    _check_nthreads(spec, nthreads)
    return tuple(range(nthreads))


def spreaded_cores(spec: ChipSpec, nthreads: int) -> Tuple[int, ...]:
    """One thread per PMD while possible, then second cores (spreaded).

    With ``nthreads <= n_pmds`` every thread gets its own PMD (the paper's
    spreaded configuration). Beyond that, remaining threads fill the
    second core of each PMD in order, converging to the same full-chip
    placement as clustered when every core is needed.
    """
    _check_nthreads(spec, nthreads)
    first_cores = [spec.cores_of_pmd(p)[0] for p in range(spec.n_pmds)]
    second_cores = [
        core
        for p in range(spec.n_pmds)
        for core in spec.cores_of_pmd(p)[1:]
    ]
    return tuple((first_cores + second_cores)[:nthreads])


def cores_for(
    spec: ChipSpec, nthreads: int, allocation: Allocation
) -> Tuple[int, ...]:
    """Core ids for ``nthreads`` under the given allocation strategy."""
    if allocation is Allocation.CLUSTERED:
        return clustered_cores(spec, nthreads)
    if allocation is Allocation.SPREADED:
        return spreaded_cores(spec, nthreads)
    raise ConfigurationError(f"unknown allocation {allocation!r}")


def utilized_pmds(spec: ChipSpec, cores: Iterable[int]) -> Tuple[int, ...]:
    """Sorted PMD ids touched by the given cores."""
    return tuple(sorted({spec.pmd_of_core(c) for c in cores}))


def utilized_pmd_count(
    spec: ChipSpec, nthreads: int, allocation: Allocation
) -> int:
    """Number of PMDs utilized by ``nthreads`` under a strategy.

    Clustered: ceil(N / cores_per_pmd). Spreaded: min(N, n_pmds).
    """
    _check_nthreads(spec, nthreads)
    if allocation is Allocation.CLUSTERED:
        return math.ceil(nthreads / spec.cores_per_pmd)
    return min(nthreads, spec.n_pmds)


def pick_free_cores(
    spec: ChipSpec,
    free_cores: Sequence[int],
    nthreads: int,
    allocation: Allocation,
) -> Tuple[int, ...]:
    """Choose ``nthreads`` cores out of ``free_cores`` under a strategy.

    Unlike :func:`cores_for`, this works on a partially-occupied chip:

    * clustered prefers cores on PMDs that already have a chosen/busy
      sibling, minimising newly-utilized PMDs;
    * spreaded prefers cores on entirely-free PMDs, maximising PMD
      isolation for the placed threads.

    Raises :class:`PlacementError` when not enough cores are free.
    """
    free = sorted(set(free_cores))
    if len(free) < nthreads:
        raise PlacementError(
            f"need {nthreads} cores but only {len(free)} free"
        )
    free_set = set(free)
    siblings = _sibling_map(spec)
    chosen: List[int] = []
    for _ in range(nthreads):
        if allocation is Allocation.CLUSTERED:
            core = _best_clustered_core(spec, siblings, free_set, chosen)
        else:
            core = _best_spreaded_core(spec, siblings, free_set, chosen)
        chosen.append(core)
        free_set.remove(core)
    return tuple(chosen)


def _siblings(spec: ChipSpec, core: int) -> Tuple[int, ...]:
    pmd = spec.pmd_of_core(core)
    return tuple(c for c in spec.cores_of_pmd(pmd) if c != core)


@functools.lru_cache(maxsize=16)
def _sibling_map(spec: ChipSpec) -> Tuple[Tuple[int, ...], ...]:
    """core id -> the other cores of its PMD, for every core.

    The greedy placement ranks every free core once per placed thread,
    so the sibling lookup sits on the daemon's replanning hot path;
    the map is a pure function of the (immutable, hashable) spec.
    """
    return tuple(_siblings(spec, c) for c in range(spec.n_cores))


def _best_clustered_core(spec, siblings, free_set, chosen) -> int:
    # Prefer a free core whose sibling is already busy or chosen (its PMD
    # is utilized anyway), then the lowest-numbered free core.
    def rank(core: int) -> Tuple[int, int]:
        sibling_free = all(s in free_set for s in siblings[core])
        return (1 if sibling_free else 0, core)

    return min(free_set, key=rank)


def _best_spreaded_core(spec, siblings, free_set, chosen) -> int:
    # Prefer a free core on a PMD whose siblings are all free and not
    # already chosen (a fresh PMD), then the lowest-numbered free core.
    chosen_pmds = {spec.pmd_of_core(c) for c in chosen}

    def rank(core: int) -> Tuple[int, int]:
        pmd = spec.pmd_of_core(core)
        fresh = (
            pmd not in chosen_pmds
            and all(s in free_set for s in siblings[core])
        )
        return (0 if fresh else 1, core)

    return min(free_set, key=rank)


def _check_nthreads(spec: ChipSpec, nthreads: int) -> None:
    if not 1 <= nthreads <= spec.n_cores:
        raise ConfigurationError(
            f"{spec.name}: cannot place {nthreads} threads on "
            f"{spec.n_cores} cores"
        )
