"""Discrete-event server simulator: processes, scheduler, traces.

Control policies live in :mod:`repro.policies`; the simulator only
dispatches ``Observation -> Action`` (see :class:`ServerSystem`).
"""

from .engine import Event, EventQueue, SimClock
from .process import (
    ProcessCounters,
    ProcessState,
    SimProcess,
    WorkloadClass,
)
from .scheduler import ClusterScheduler, SpreadScheduler
from .system import (
    ServerSystem,
    SystemResult,
    ViolationRecord,
)
from .tracing import TimelineTrace, TraceSample, moving_average

__all__ = [
    "ClusterScheduler",
    "Event",
    "EventQueue",
    "ProcessCounters",
    "ProcessState",
    "ServerSystem",
    "SimClock",
    "SimProcess",
    "SpreadScheduler",
    "SystemResult",
    "TimelineTrace",
    "TraceSample",
    "ViolationRecord",
    "WorkloadClass",
    "moving_average",
]
