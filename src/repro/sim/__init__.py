"""Discrete-event server simulator: processes, scheduler, governor, traces."""

from .controllers import BaselineController
from .engine import Event, EventQueue, SimClock
from .governor import OndemandGovernor, PerformanceGovernor, PowersaveGovernor
from .process import (
    ProcessCounters,
    ProcessState,
    SimProcess,
    WorkloadClass,
)
from .scheduler import ClusterScheduler, SpreadScheduler
from .system import (
    Controller,
    ServerSystem,
    SystemResult,
    ViolationRecord,
)
from .tracing import TimelineTrace, TraceSample, moving_average

__all__ = [
    "BaselineController",
    "ClusterScheduler",
    "Controller",
    "Event",
    "EventQueue",
    "OndemandGovernor",
    "PerformanceGovernor",
    "PowersaveGovernor",
    "ProcessCounters",
    "ProcessState",
    "ServerSystem",
    "SimClock",
    "SimProcess",
    "SpreadScheduler",
    "SystemResult",
    "TimelineTrace",
    "TraceSample",
    "ViolationRecord",
    "WorkloadClass",
    "moving_average",
]
