"""Time-series tracing for the evaluation figures (Figs. 14 and 15).

The trace samples the running system at a fixed period (1 s in the
paper's plots): instantaneous power, busy cores, running process counts
split by the daemon's classification, rail voltage and mean active
frequency. A moving-average helper reproduces the paper's 1-minute
smoothing of the system-load curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from ..errors import SimulationError


@dataclass(frozen=True, slots=True)
class TraceSample:
    """One sample of the running system."""

    time_s: float
    power_w: float
    busy_cores: int
    running_processes: int
    cpu_intensive: int
    memory_intensive: int
    voltage_mv: int
    mean_active_freq_hz: float


@dataclass(slots=True)
class TimelineTrace:
    """Fixed-period samples of the whole run."""

    period_s: float = 1.0
    samples: List[TraceSample] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise SimulationError("trace period must be positive")

    def append(self, sample: TraceSample) -> None:
        """Add one sample (time must be non-decreasing).

        Equal-time samples are explicitly legal: the simulator may
        emit a sample at an instant where several events coincide
        (e.g. a finish and a monitor tick at the same timestamp). Only
        strictly decreasing — or non-comparable (NaN) — times are
        rejected.
        """
        if math.isnan(sample.time_s):  # NaN never orders
            raise SimulationError("trace sample time must not be NaN")
        if self.samples and not (
            sample.time_s >= self.samples[-1].time_s
        ):
            raise SimulationError(
                "trace sample times must be non-decreasing "
                f"(got {sample.time_s} after {self.samples[-1].time_s})"
            )
        self.samples.append(sample)

    def times(self) -> List[float]:
        """Sample times."""
        return [s.time_s for s in self.samples]

    def power_series(self) -> List[float]:
        """Instantaneous power per sample (Fig. 14)."""
        return [s.power_w for s in self.samples]

    def load_series(self) -> List[int]:
        """Busy-core count per sample (the system-load proxy, Fig. 15)."""
        return [s.busy_cores for s in self.samples]

    def class_series(self) -> List[tuple]:
        """(cpu-intensive, memory-intensive) counts per sample (Fig. 15)."""
        return [(s.cpu_intensive, s.memory_intensive) for s in self.samples]

    def average_power_w(self) -> float:
        """Mean of the sampled power values."""
        if not self.samples:
            return 0.0
        return sum(s.power_w for s in self.samples) / len(self.samples)

    def peak_power_w(self) -> float:
        """Largest sampled power value."""
        if not self.samples:
            return 0.0
        return max(s.power_w for s in self.samples)


def moving_average(
    values: Sequence[float], window: int
) -> List[float]:
    """Trailing moving average, as in the paper's 1-minute load curve.

    The first ``window - 1`` outputs average over what is available.
    """
    if window < 1:
        raise SimulationError("window must be >= 1")
    out: List[float] = []
    acc = 0.0
    for index, value in enumerate(values):
        acc += value
        if index >= window:
            acc -= values[index - window]
        out.append(acc / min(index + 1, window))
    return out
