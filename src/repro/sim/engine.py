"""Minimal discrete-event engine for the server simulation.

The system model is *fluid*: between events every running process makes
progress at a constant rate and the chip draws constant power, so the
simulation only needs to visit the instants where rates change — job
arrivals, job completions, monitor ticks and actuation points. The engine
is a deterministic time-ordered queue with FIFO tie-breaking.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

from ..errors import SimulationError


@dataclass(frozen=True, order=True, slots=True)
class Event:
    """One scheduled event; ordering is (time, insertion sequence)."""

    time_s: float
    seq: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Time-ordered event queue with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._cancelled: set[int] = set()
        self._pending: set[int] = set()
        #: Lifetime schedule/cancel counts; plain ints so the hot loop
        #: stays allocation-free. The simulator flushes them into the
        #: telemetry registry at end of run.
        self.scheduled_total = 0
        self.cancelled_total = 0

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return len(self) > 0

    def schedule(self, time_s: float, kind: str, payload: Any = None) -> Event:
        """Add an event; returns it (its ``seq`` can cancel it later)."""
        if time_s < 0:
            raise SimulationError(f"cannot schedule at negative time {time_s}")
        event = Event(time_s=time_s, seq=next(self._seq), kind=kind,
                      payload=payload)
        heapq.heappush(self._heap, event)
        self._pending.add(event.seq)
        self.scheduled_total += 1
        return event

    def cancel(self, event: Event) -> None:
        """Lazily cancel a scheduled event (no-op if already popped)."""
        if event.seq in self._pending:
            self._cancelled.add(event.seq)
            self._pending.discard(event.seq)
            self.cancelled_total += 1

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or ``None`` when empty."""
        self._drop_cancelled()
        return self._heap[0].time_s if self._heap else None

    def pop(self) -> Event:
        """Remove and return the next live event."""
        self._drop_cancelled()
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        event = heapq.heappop(self._heap)
        self._pending.discard(event.seq)
        return event

    def pop_at(self, time_s: float) -> Optional[Event]:
        """Pop the next live event only if it sits exactly at ``time_s``.

        Used by the simulator to coalesce a batch of same-timestamp
        events into one refresh; returns ``None`` when the queue is
        empty or the next event lies strictly in the future. The
        comparison is exact on purpose: only events at the *identical*
        float instant share a zero-length interval.
        """
        self._drop_cancelled()
        if self._heap and self._heap[0].time_s == time_s:
            event = heapq.heappop(self._heap)
            self._pending.discard(event.seq)
            return event
        return None

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0].seq in self._cancelled:
            self._cancelled.discard(self._heap[0].seq)
            heapq.heappop(self._heap)
        if not self._pending:
            # Every remaining heap entry is a cancelled corpse. Without
            # this, a queue drained by `while queue:` loops (which stop
            # on len(_pending) == 0) accumulates stale seqs forever.
            if self._heap:
                self._heap.clear()
            if self._cancelled:
                self._cancelled.clear()
        elif len(self._cancelled) > 64 and (
            len(self._cancelled) * 2 > len(self._heap)
        ):
            # Cancelled events buried under live ones can never drain
            # through the lazy top-of-heap check; compact once corpses
            # dominate so the sets stay bounded by the live event count.
            self._heap = [
                event
                for event in self._heap
                if event.seq not in self._cancelled
            ]
            heapq.heapify(self._heap)
            self._cancelled.clear()


class SimClock:
    """Monotonic simulation clock."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self._now

    def advance_to(self, time_s: float) -> float:
        """Move the clock forward; returns the elapsed interval."""
        if time_s < self._now - 1e-9:
            raise SimulationError(
                f"clock cannot move backwards ({self._now} -> {time_s})"
            )
        dt = max(0.0, time_s - self._now)
        self._now = max(self._now, time_s)
        return dt
