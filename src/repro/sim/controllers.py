"""Built-in policy controllers: the evaluation's Baseline behaviour.

The Baseline configuration of Section VI.B runs the machine exactly as
shipped: the default (spreading) scheduler places threads, the
``ondemand`` governor drives the clocks, and the rail stays at nominal
voltage. The daemon-driven configurations (Safe-Vmin, Placement, Optimal)
live in :mod:`repro.core.configurations` on top of the same hooks.
"""

from __future__ import annotations

from typing import Optional

from .governor import OndemandGovernor
from .process import SimProcess
from .system import Controller


class BaselineController(Controller):
    """Default Linux settings: ondemand governor, nominal voltage."""

    def __init__(self, governor: Optional[OndemandGovernor] = None):
        super().__init__()
        self.governor = governor or OndemandGovernor()

    def on_start(self) -> None:
        """Park all clocks per the governor before any job arrives."""
        self.governor.apply(self.system.chip, self.system.now)
        self.system.set_voltage(self.system.spec.nominal_voltage_mv)

    def on_process_started(self, process: SimProcess) -> None:
        """Raise the clocks of newly busy PMDs."""
        self.governor.apply(self.system.chip, self.system.now)

    def on_process_finished(self, process: SimProcess) -> None:
        """Drop the clocks of newly idle PMDs."""
        self.governor.apply(self.system.chip, self.system.now)
