"""The server-system simulator: Linux-like process lifecycle on a chip.

:class:`ServerSystem` replays a generated workload (Section VI.B) on a
:class:`~repro.platform.chip.Chip` under a pluggable
:class:`~repro.policies.surfaces.Policy` — the Baseline governor, the
Safe-Vmin trim, or the paper's monitoring daemon. The simulator itself
contains no policy logic: at each control event it builds an
:class:`~repro.policies.surfaces.Observation`, asks the policy to
``decide``, and actuates the returned
:class:`~repro.policies.surfaces.Action` through the one sanctioned
funnel (:func:`repro.policies.actuation.apply_action`). The model is
fluid: between events every running process advances
at a rate set by its profile, its clock, its PMD sharing and the
chip-wide memory contention; power is constant on each interval and
integrates into energy.

The simulator also audits electrical safety: after every state change it
compares the rail voltage against the ground-truth safe Vmin of the new
configuration, recording (or raising on) undervolting violations. The
paper's fail-safe daemon never violates; error-prone predictive policies
do, which is what the fail-safe ablation measures.

The hot path is *incremental*: every model evaluation in the refresh
(contention, execution states, activity map, power, safe-Vmin audit) is
a pure function of inputs tracked by cheap version counters — core
occupancy, per-PMD clocks, the rail voltage and each process's active
behaviour profile. A refresh whose inputs did not change reuses the
cached results, which are bit-identical to a recomputation; only the
finish/phase times (which depend on the advancing clock) are recomputed,
and their cancel+schedule pair is elided when the recomputed time equals
the scheduled one. ``ServerSystem(full_refresh=True)`` — or the
``REPRO_SIM_FULL_REFRESH=1`` environment variable — disables all of it
and runs the original recompute-everything path; the equivalence
property suite asserts both modes produce identical results.
"""

from __future__ import annotations

import os
from collections import Counter, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import SimulationError, SystemCrash
from ..perf.contention import bandwidth_utilization, contention_factor
from ..telemetry import names as metric_names
from ..perf.model import ExecutionState, bandwidth_demand_gbs, execution_state
from ..platform.chip import Chip, ChipState
from ..platform.thermal import ThermalModel
from ..policies.actuation import apply_action
from ..policies.surfaces import Action, Observation, Policy, PolicyEvent
from ..power.energy import EnergyMeter, ed2p
from ..power.model import PowerModel
from ..vmin.droop import DroopModel
from ..vmin.model import VminModel
from ..workloads.generator import Workload
from ..workloads.phases import resolve_benchmark
from ..workloads.profiles import BenchmarkProfile
from .engine import Event, EventQueue, SimClock
from .process import SimProcess, WorkloadClass
from .scheduler import SpreadScheduler
from .tracing import TimelineTrace, TraceSample

#: Remaining-work fractions below this are "done" (float guard).
REMAINING_EPS = 1e-9

#: Bound on the keyed execution-state cache; cleared wholesale when
#: exceeded (distinct (behaviour, freq, nthreads, sharing, contention)
#: operating points seen over one run).
EXEC_STATE_CACHE_MAX = 4096


@dataclass(frozen=True, slots=True)
class ViolationRecord:
    """One interval where the rail sat below the ground-truth safe Vmin."""

    time_s: float
    voltage_mv: int
    required_mv: float

    @property
    def depth_mv(self) -> float:
        """How far below the safe Vmin the rail sat."""
        return self.required_mv - self.voltage_mv


@dataclass(slots=True)
class SystemResult:
    """Outcome of one full workload replay (one Tables III/IV column)."""

    makespan_s: float
    energy_j: float
    trace: Optional[TimelineTrace]
    processes: List[SimProcess]
    violations: List[ViolationRecord]
    voltage_transitions: int
    frequency_transitions: int

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.energy_j / self.makespan_s

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product of the whole workload."""
        return ed2p(self.energy_j, self.makespan_s)

    @property
    def total_migrations(self) -> int:
        """Process migrations performed across the run."""
        return sum(p.migrations for p in self.processes)


def _full_refresh_forced() -> bool:
    """True when the environment forces the recompute-everything oracle."""
    return os.environ.get("REPRO_SIM_FULL_REFRESH", "") not in ("", "0")


class ServerSystem:
    """Replays one workload on one chip under one control policy.

    ``full_refresh=True`` (or ``REPRO_SIM_FULL_REFRESH=1`` in the
    environment) disables the incremental refresh, the execution-state
    cache, reschedule elision and same-timestamp event coalescing, and
    recomputes the entire system state after every event — the original
    hot path, kept as the ground-truth oracle for equivalence tests.
    """

    def __init__(
        self,
        chip: Chip,
        workload: Workload,
        policy: Optional[Policy] = None,
        power_model: Optional[PowerModel] = None,
        vmin_model: Optional[VminModel] = None,
        droop_model: Optional[DroopModel] = None,
        fault_policy: str = "record",
        trace_period_s: Optional[float] = 1.0,
        thermal_model: Optional[ThermalModel] = None,
        full_refresh: bool = False,
    ):
        if fault_policy not in ("record", "raise", "off"):
            raise SimulationError(f"unknown fault policy {fault_policy!r}")
        self.chip = chip
        self.spec = chip.spec
        self.workload = workload
        self.policy = policy or Policy()
        #: Whether the policy wants the post-actuation hook; detected
        #: once so ordinary policies pay nothing per dispatch.
        self._policy_hooked = (
            type(self.policy).on_applied is not Policy.on_applied
        )
        self.power_model = power_model or PowerModel(chip.spec)
        self.vmin_model = vmin_model or VminModel.for_chip(chip)
        self.droop_model = droop_model or DroopModel(chip.spec)
        self.fault_policy = fault_policy
        self.full_refresh = full_refresh or _full_refresh_forced()
        #: Coalescing batches same-time events behind one refresh; the
        #: ``raise`` policy must keep the old one-refresh-per-event flow
        #: so a crash surfaces at the same mid-batch instant it used to.
        self._coalesce = not self.full_refresh and fault_policy != "raise"
        #: Optional junction-temperature tracker; None = the calibration
        #: temperature everywhere (the paper's reporting condition).
        self.thermal = thermal_model
        #: (time, degC) samples when the thermal model is enabled.
        self.temperature_series: List[Tuple[float, float]] = []
        self.scheduler = SpreadScheduler()
        self.clock = SimClock()
        self.events = EventQueue()
        self.meter = EnergyMeter()
        self.trace = (
            TimelineTrace(trace_period_s) if trace_period_s else None
        )
        self._next_sample_s = 0.0
        self.processes: List[SimProcess] = [
            SimProcess(
                pid=job.job_id,
                profile=resolve_benchmark(job.benchmark),
                nthreads=job.nthreads,
                arrival_s=job.start_time_s,
            )
            for job in workload.jobs_sorted()
        ]
        self._by_pid: Dict[int, SimProcess] = {
            p.pid: p for p in self.processes
        }
        self.queue: Deque[SimProcess] = deque()
        self.violations: List[ViolationRecord] = []
        self._finish_events: Dict[int, Event] = {}
        self._phase_events: Dict[int, Event] = {}
        self._proc_states: Dict[int, ExecutionState] = {}
        self._power_w = 0.0
        self._pending_arrivals = 0
        self._crashed = False
        #: Events dispatched per kind + policy dispatch invocations;
        #: preallocated Counter/int slots, flushed into telemetry at
        #: end of run.
        self._event_counts: Counter[str] = Counter()
        self._controller_calls = 0
        # -- incremental-refresh state -----------------------------------
        #: Running processes in ``self.processes`` order, maintained
        #: eagerly at the two membership mutation points (admit/finish).
        self._running: List[SimProcess] = []
        self._order: Dict[int, int] = {
            p.pid: i for i, p in enumerate(self.processes)
        }
        #: Inputs of the last full refresh, reused verbatim while the
        #: version counters below say nothing relevant changed.
        self._state: Optional[ChipState] = None
        self._freqs: Dict[int, int] = {}
        self._behaviours: Dict[int, BenchmarkProfile] = {}
        self._activity_map: Dict[int, float] = {}
        self._bw_util = 0.0
        self._required_base = 0.0
        self._occ_version = -1
        self._freq_version = -1
        self._volt_version = -1
        #: Cached droop-generation inputs (derived from the chip state
        #: and execution states, fixed between refreshes).
        self._droop_pmds = 0
        self._droop_freq = 0
        self._droop_class = None
        self._droop_activity = 0.0
        #: (behaviour id, freq, nthreads, shares_pmd, contention) ->
        #: execution state. Keys hold the behaviour object itself so
        #: its id() stays valid for the cache's lifetime.
        self._exec_cache: Dict[
            Tuple[BenchmarkProfile, int, int, bool, float], ExecutionState
        ] = {}
        self._refreshes_full = 0
        self._refreshes_incremental = 0
        self._reschedules_elided = 0

    # -- public API used by policies and the actuation layer ---------------------

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self.clock.now

    def running_processes(self) -> List[SimProcess]:
        """Processes currently occupying cores."""
        if self.full_refresh:
            return [p for p in self.processes if p.is_running]
        return list(self._running)

    def migrate(self, process: SimProcess, cores: Sequence[int]) -> None:
        """Move a running process to new cores (actuation API)."""
        if not process.is_running:
            raise SimulationError(
                f"pid {process.pid}: cannot migrate a non-running process"
            )
        new = tuple(cores)
        if new == process.cores:
            return
        for core in new:
            holder = self.chip.occupant_of(core)
            if holder is not None and holder != process.pid:
                raise SimulationError(
                    f"core {core} busy with pid {holder}; migration invalid"
                )
        self.chip.release_occupant(process.pid)
        for core in new:
            self.chip.occupy(core, process.pid)
        process.migrate(new)

    def migrate_many(
        self, moves: Dict[SimProcess, Tuple[int, ...]]
    ) -> None:
        """Apply several migrations atomically (two-phase).

        All moving processes release their cores first, then re-occupy
        their targets, so swaps between processes are legal.
        """
        for process in moves:
            if not process.is_running:
                raise SimulationError(
                    f"pid {process.pid}: cannot migrate a non-running process"
                )
            self.chip.release_occupant(process.pid)
        for process, cores in moves.items():
            for core in cores:
                self.chip.occupy(core, process.pid)
            process.migrate(tuple(cores))

    def process_frequency_hz(self, process: SimProcess) -> int:
        """Slowest clock among the PMDs a running process occupies."""
        if not process.cores:
            return self.spec.fmax_hz
        state = self.chip.state()
        return min(state.frequency_of_core(c) for c in process.cores)

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SystemResult:
        """Replay the whole workload and return the run summary."""
        for process in self.processes:
            self.events.schedule(process.arrival_s, "arrival", process.pid)
        self._pending_arrivals = len(self.processes)
        self._dispatch_policy(PolicyEvent.START)
        if self.policy.monitor_period_s:
            self.events.schedule(
                self.policy.monitor_period_s, "tick"
            )
        self._refresh()
        events = self.events
        while events:
            event = events.pop()
            self._integrate_to(event.time_s)
            self.clock.advance_to(event.time_s)
            self._dispatch(event)
            if self._coalesce:
                batched = events.pop_at(event.time_s)
                while batched is not None:
                    # The audited instants of the uncoalesced flow: one
                    # safety check per intermediate same-time event.
                    self._audit_step()
                    self._dispatch(batched)
                    batched = events.pop_at(event.time_s)
            self._refresh()
            if self._crashed:
                break
        makespan = self._makespan()
        # Energy integrates exactly to the last dispatched event — which
        # may trail the last finish by up to one monitor period (idle
        # ticks), but never covers the idle time past the final event
        # even when tracing sampled beyond it.
        result = SystemResult(
            makespan_s=makespan,
            energy_j=self.meter.energy_j,
            trace=self.trace,
            processes=self.processes,
            violations=self.violations,
            voltage_transitions=self.chip.slimpro.transition_count(),
            frequency_transitions=self.chip.cppc.transition_count(),
        )
        if telemetry.enabled():
            self._flush_telemetry(result)
        return result

    # -- event handling ----------------------------------------------------------

    def _dispatch_policy(
        self, event: str, process: Optional[SimProcess] = None
    ) -> Optional[Action]:
        """Consult the policy on one control event and actuate its action.

        The engine's entire contact surface with the control plane: it
        builds the observation, asks ``decide`` and funnels any returned
        action through :func:`~repro.policies.actuation.apply_action` —
        there are no policy-specific branches anywhere in the simulator.
        One increment of ``_controller_calls`` per dispatch keeps the
        ``sim.controller.callbacks`` counter's historical meaning.
        """
        self._controller_calls += 1
        obs = Observation(self, event, process)
        action = self.policy.decide(obs)
        if action is not None:
            apply_action(self, action)
        if self._policy_hooked:
            # ``obs`` is live, so the hook sees the post-actuation state.
            self.policy.on_applied(obs, action)
        return action

    def _dispatch(self, event: Event) -> None:
        self._event_counts[event.kind] += 1
        if event.kind == "arrival":
            self._handle_arrival(self._by_pid[event.payload])
        elif event.kind == "finish":
            self._handle_finish(event)
        elif event.kind == "phase":
            self._handle_phase(event)
        elif event.kind == "tick":
            self._handle_tick()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _handle_arrival(self, process: SimProcess) -> None:
        self._pending_arrivals -= 1
        if not self._try_admit(process):
            self.queue.append(process)

    def _try_admit(self, process: SimProcess) -> bool:
        action = self._dispatch_policy(PolicyEvent.ADMIT, process)
        cores = action.admit_cores if action is not None else None
        if cores is None:
            cores = self.scheduler.select_cores(self.chip, process.nthreads)
        if cores is None:
            return False
        process.start(self.now, tuple(cores))
        for core in process.cores:
            self.chip.occupy(core, process.pid)
        self._running_insert(process)
        self._dispatch_policy(PolicyEvent.STARTED, process)
        return True

    def _running_insert(self, process: SimProcess) -> None:
        """Keep ``_running`` sorted by position in ``self.processes``."""
        order = self._order
        rank = order[process.pid]
        running = self._running
        i = len(running)
        while i > 0 and order[running[i - 1].pid] > rank:
            i -= 1
        running.insert(i, process)

    def _handle_finish(self, event: Event) -> None:
        process = self._by_pid[event.payload]
        current = self._finish_events.get(process.pid)
        if current is None or current.seq != event.seq:
            return  # stale completion superseded by a reschedule
        del self._finish_events[process.pid]
        self.chip.release_occupant(process.pid)
        process.finish(self.now)
        self._running.remove(process)
        self._dispatch_policy(PolicyEvent.FINISHED, process)
        self._admit_queued()

    def _admit_queued(self) -> None:
        while self.queue and self._try_admit(self.queue[0]):
            self.queue.popleft()

    def _handle_phase(self, event: Event) -> None:
        """A process crossed a phase boundary: rates change on refresh.

        The daemon is *not* notified directly — it must observe the
        shifted PMU rates through its monitor, as on real hardware.
        """
        process = self._by_pid[event.payload]
        current = self._phase_events.get(process.pid)
        if current is None or current.seq != event.seq:
            return  # superseded by a reschedule
        del self._phase_events[process.pid]

    def _handle_tick(self) -> None:
        self._dispatch_policy(PolicyEvent.TICK)
        if self.full_refresh:
            busy = any(p.is_running for p in self.processes)
        else:
            busy = bool(self._running)
        work_left = self._pending_arrivals > 0 or bool(self.queue) or busy
        if work_left and self.policy.monitor_period_s:
            self.events.schedule(
                self.now + self.policy.monitor_period_s, "tick"
            )

    # -- fluid integration ---------------------------------------------------------

    def _integrate_to(self, time_s: float) -> None:
        dt = time_s - self.now
        if dt <= 0:
            self._sample_trace_until(time_s)
            return
        oracle = self.full_refresh
        if oracle:
            state = self.chip.state()
            running = self.running_processes()
        else:
            state = self._state if self._state is not None else self.chip.state()
            running = self._running
        proc_states = self._proc_states
        freqs = self._freqs
        pmu = self.chip.pmu
        for process in running:
            exec_state = proc_states[process.pid]
            if oracle:
                freq = self.process_frequency_hz(process)
            else:
                freq = freqs[process.pid]
            cycles = freq * dt * process.nthreads
            accesses = (
                exec_state.l3_rate_per_mcycles * freq * dt / 1e6
            ) * process.nthreads
            process.counters.advance(cycles, accesses)
            for core in process.cores:
                core_freq = state.frequency_of_core(core)
                pmu.core(core).advance(
                    cycles=core_freq * dt,
                    instructions=core_freq * dt * exec_state.effective_activity,
                    l3_accesses=accesses / process.nthreads,
                )
            process.progress(dt / exec_state.duration_s)
        self._accumulate_droops(state, running, dt)
        self.meter.accumulate(self._power_w, dt)
        if self.thermal is not None:
            self.thermal.step(self._power_w, dt)
            self.temperature_series.append(
                (time_s, self.thermal.temperature_c)
            )
        self._sample_trace_until(time_s)

    def _accumulate_droops(
        self,
        state: ChipState,
        running: List[SimProcess],
        dt: float,
    ) -> None:
        if self.full_refresh:
            pmds = state.active_pmds
            if not pmds:
                return
            n_pmds = len(pmds)
            cycles = state.max_active_frequency() * dt
            freq_class = state.worst_active_frequency_class()
            activity = sum(
                self._proc_states[p.pid].effective_activity for p in running
            ) / max(1, len(running))
        else:
            n_pmds = self._droop_pmds
            if not n_pmds:
                return
            cycles = self._droop_freq * dt
            freq_class = self._droop_class
            activity = self._droop_activity
        events = self.droop_model.events_for_interval(
            utilized_pmds=n_pmds,
            cycles=cycles,
            freq_class=freq_class,
            activity=max(0.05, activity),
        )
        for bin_mv, count in events.items():
            self.chip.pmu.record_droops(bin_mv, count)

    def _sample_trace_until(self, time_s: float) -> None:
        if self.trace is None:
            return
        while self._next_sample_s <= time_s + 1e-12:
            counts = self._class_counts()
            if self.full_refresh:
                state = self.chip.state()
                n_running = len(self.running_processes())
            else:
                state = (
                    self._state
                    if self._state is not None
                    else self.chip.state()
                )
                n_running = len(self._running)
            active = state.active_pmds
            mean_freq = (
                sum(state.pmd_frequencies_hz[p] for p in active) / len(active)
                if active
                else self.spec.fmin_hz
            )
            self.trace.append(
                TraceSample(
                    time_s=self._next_sample_s,
                    power_w=self._power_w,
                    busy_cores=len(state.active_cores),
                    running_processes=n_running,
                    cpu_intensive=counts[0],
                    memory_intensive=counts[1],
                    voltage_mv=state.voltage_mv,
                    mean_active_freq_hz=mean_freq,
                )
            )
            self._next_sample_s += self.trace.period_s

    def _class_counts(self) -> Tuple[int, int]:
        cpu = mem = 0
        running = (
            self.running_processes() if self.full_refresh else self._running
        )
        for process in running:
            label = process.observed_class
            if label is WorkloadClass.UNKNOWN:
                label = process.reference_class
            if label is WorkloadClass.MEMORY_INTENSIVE:
                mem += 1
            else:
                cpu += 1
        return cpu, mem

    # -- state refresh ----------------------------------------------------------------

    def _refresh(self) -> None:
        """Recompute rates, power and completion times after any change.

        The incremental path recomputes only what its inputs invalidated:

        * occupancy / per-PMD clock / behaviour-profile changes — full
          recompute (contention couples every process to every other);
        * rail-voltage changes (and thermal coupling) — power and the
          safety audit only; execution states are voltage-independent;
        * nothing changed — completion times (the clock advanced) and
          the safety audit against the cached safe-Vmin level.
        """
        if self.full_refresh:
            self._refreshes_full += 1
            self._recompute_all()
            return
        chip = self.chip
        dirty = (
            chip.occupancy_version != self._occ_version
            or chip.cppc.transition_count() != self._freq_version
        )
        if not dirty:
            behaviours = self._behaviours
            for process in self._running:
                if process.current_profile() is not behaviours[process.pid]:
                    dirty = True
                    break
        if dirty:
            self._refreshes_full += 1
            self._recompute_all()
            return
        self._refreshes_incremental += 1
        state = self._state
        volt_version = chip.slimpro.transition_count()
        if volt_version != self._volt_version:
            self._volt_version = volt_version
            state = chip.state()
            self._state = state
            self._recompute_power(state)
        elif self.thermal is not None:
            # Temperature moves every interval: leakage and the thermal
            # Vmin shift must track it even on otherwise-clean refreshes.
            self._recompute_power(state)
        self._reschedule_completions(self._running)
        self._audit_cached(state)

    def _recompute_all(self) -> None:
        """Full refresh: rebuild every derived quantity from the chip."""
        state = self.chip.state()
        if self.full_refresh:
            running = [p for p in self.processes if p.is_running]
        else:
            running = self._running
        spec = self.spec
        demands: List[float] = []
        freqs: Dict[int, int] = {}
        behaviours: Dict[int, BenchmarkProfile] = {}
        for process in running:
            freq = min(state.frequency_of_core(c) for c in process.cores)
            freqs[process.pid] = freq
            behaviour = process.current_profile()
            behaviours[process.pid] = behaviour
            demand = bandwidth_demand_gbs(behaviour, spec, freq)
            demands.extend([demand] * process.nthreads)
        crowd = contention_factor(spec, demands)
        bw_util = bandwidth_utilization(spec, demands)
        activity_map: Dict[int, float] = {}
        cache = None if self.full_refresh else self._exec_cache
        self._proc_states = {}
        for process in running:
            shares = self._shares_pmd(process)
            behaviour = behaviours[process.pid]
            exec_state = None
            key = (
                behaviour, freqs[process.pid], process.nthreads, shares, crowd
            )
            if cache is not None:
                exec_state = cache.get(key)
            if exec_state is None:
                exec_state = execution_state(
                    behaviour,
                    spec,
                    freqs[process.pid],
                    nthreads=process.nthreads,
                    shares_pmd=shares,
                    contention=crowd,
                )
                if cache is not None:
                    if len(cache) >= EXEC_STATE_CACHE_MAX:
                        cache.clear()
                    cache[key] = exec_state
            self._proc_states[process.pid] = exec_state
            for core in process.cores:
                activity_map[core] = exec_state.effective_activity
        self._state = state
        self._freqs = freqs
        self._behaviours = behaviours
        self._activity_map = activity_map
        self._bw_util = bw_util
        self._occ_version = self.chip.occupancy_version
        self._freq_version = self.chip.cppc.transition_count()
        self._volt_version = self.chip.slimpro.transition_count()
        pmds = state.active_pmds
        self._droop_pmds = len(pmds)
        if pmds:
            self._droop_freq = state.max_active_frequency()
            self._droop_class = state.worst_active_frequency_class()
            self._droop_activity = sum(
                self._proc_states[p.pid].effective_activity for p in running
            ) / max(1, len(running))
        self._recompute_power(state)
        self._reschedule_completions(running)
        self._audit_voltage(state, running)

    def _recompute_power(self, state: ChipState) -> None:
        leak_multiplier = (
            self.thermal.leakage_multiplier()
            if self.thermal is not None
            else 1.0
        )
        self._power_w = self.power_model.chip_power(
            state,
            self._activity_map,
            self._bw_util,
            leakage_multiplier=leak_multiplier,
        ).total_w

    def _shares_pmd(self, process: SimProcess) -> bool:
        for core in process.cores:
            for sibling in self.spec.cores_of_pmd(self.spec.pmd_of_core(core)):
                if sibling != core and self.chip.occupant_of(sibling) is not None:
                    return True
        return False

    def _reschedule_completions(self, running: List[SimProcess]) -> None:
        now = self.now
        elide = not self.full_refresh
        for process in running:
            exec_state = self._proc_states[process.pid]
            remaining_s = max(
                0.0, process.remaining_fraction * exec_state.duration_s
            )
            if process.remaining_fraction <= REMAINING_EPS:
                remaining_s = 0.0
            time_s = now + remaining_s
            old = self._finish_events.get(process.pid)
            if (
                elide
                and old is not None
                and old.time_s == time_s
                and time_s > now
            ):
                # Identical finish instant strictly in the future: the
                # pending event already encodes it; skip the churn.
                self._reschedules_elided += 1
            else:
                if old is not None:
                    self.events.cancel(old)  # reprolint: disable=RL005 -- time changed
                self._finish_events[process.pid] = self.events.schedule(
                    time_s, "finish", process.pid
                )
            self._reschedule_phase(process, exec_state)

    def _reschedule_phase(self, process, exec_state) -> None:
        old = self._phase_events.get(process.pid)
        boundary = process.next_phase_boundary()
        if boundary is None:
            if old is not None:
                del self._phase_events[process.pid]
                self.events.cancel(old)
            return
        # Progress advances at 1/duration done-fractions per second.
        eta_s = (boundary - process.done_fraction) * exec_state.duration_s
        time_s = self.now + max(0.0, eta_s)
        if (
            not self.full_refresh
            and old is not None
            and old.time_s == time_s
            and time_s > self.now
        ):
            self._reschedules_elided += 1
            return
        if old is not None:
            self.events.cancel(old)  # reprolint: disable=RL005 -- time changed
        self._phase_events[process.pid] = self.events.schedule(
            time_s, "phase", process.pid
        )

    def _audit_voltage(
        self, state: ChipState, running: List[SimProcess]
    ) -> None:
        if self.fault_policy == "off" or not running:
            return
        workload_delta = max(
            p.current_profile().vmin_delta_mv for p in running
        )
        required = self.vmin_model.safe_vmin_for_state(
            state, workload_delta_mv=workload_delta
        )
        #: Thermal-free safe level; valid until occupancy, clocks or
        #: behaviours change (it does not depend on the rail voltage).
        self._required_base = required
        if self.thermal is not None:
            required += self.thermal.vmin_shift_mv()
        self._check_rail(state, required)

    def _audit_cached(self, state: ChipState) -> None:
        """Clean-refresh audit against the cached safe-Vmin level."""
        if self.fault_policy == "off" or not self._running:
            return
        required = self._required_base
        if self.thermal is not None:
            required += self.thermal.vmin_shift_mv()
        self._check_rail(state, required)

    def _audit_step(self) -> None:
        """Safety audit between coalesced same-timestamp events.

        The uncoalesced flow refreshed (and audited) after every event;
        coalescing keeps exactly those audit instants so the violation
        record stream is unchanged, without paying for the intermediate
        rate/power recomputations that the zero-length interval never
        observes.
        """
        if self.fault_policy == "off" or not self._running:
            return
        state = self.chip.state()
        workload_delta = max(
            p.current_profile().vmin_delta_mv for p in self._running
        )
        required = self.vmin_model.safe_vmin_for_state(
            state, workload_delta_mv=workload_delta
        )
        if self.thermal is not None:
            required += self.thermal.vmin_shift_mv()
        self._check_rail(state, required)

    def _check_rail(self, state: ChipState, required: float) -> None:
        if state.voltage_mv < required - 1e-9:
            record = ViolationRecord(
                time_s=self.now,
                voltage_mv=state.voltage_mv,
                required_mv=required,
            )
            self.violations.append(record)
            if self.fault_policy == "raise":
                self._crashed = True
                raise SystemCrash(
                    state.voltage_mv,
                    f"rail at {state.voltage_mv} mV below safe Vmin "
                    f"{required:.1f} mV at t={self.now:.3f}s",
                )

    def _makespan(self) -> float:
        finished = [
            p.finish_s for p in self.processes if p.finish_s is not None
        ]
        return max(finished) if finished else self.now

    # -- telemetry ---------------------------------------------------------------

    def _flush_telemetry(self, result: SystemResult) -> None:
        """Publish the run's aggregate counts into the metric registry.

        Called once per completed replay (never inside the event loop),
        so the hot path stays free of telemetry dispatch: the loop only
        bumps plain ints/dicts and this flush converts them into the
        structured counters the run manifest snapshots. Every value is
        derived from simulation state, not wall clock, so snapshots are
        deterministic for a given seed.
        """
        counts = self._event_counts
        telemetry.inc(
            metric_names.SIM_EVENTS_DISPATCHED, sum(counts.values())
        )
        telemetry.inc(
            metric_names.SIM_EVENT_ARRIVALS, counts.get("arrival", 0)
        )
        telemetry.inc(
            metric_names.SIM_EVENT_FINISHES, counts.get("finish", 0)
        )
        telemetry.inc(metric_names.SIM_EVENT_PHASES, counts.get("phase", 0))
        telemetry.inc(metric_names.SIM_EVENT_TICKS, counts.get("tick", 0))
        telemetry.inc(
            metric_names.SIM_EVENTS_SCHEDULED, self.events.scheduled_total
        )
        telemetry.inc(
            metric_names.SIM_EVENTS_CANCELLED, self.events.cancelled_total
        )
        telemetry.inc(
            metric_names.SIM_CONTROLLER_CALLBACKS, self._controller_calls
        )
        # Policies with their own counters (the arbitration stack)
        # publish them here, inside the same once-per-run flush.
        policy_flush = getattr(self.policy, "flush_telemetry", None)
        if policy_flush is not None:
            policy_flush()
        telemetry.inc(metric_names.SIM_VIOLATIONS, len(self.violations))
        telemetry.inc(
            metric_names.SIM_VOLTAGE_TRANSITIONS,
            result.voltage_transitions,
        )
        telemetry.inc(
            metric_names.SIM_FREQUENCY_TRANSITIONS,
            result.frequency_transitions,
        )
        telemetry.inc(metric_names.SIM_RUNS)
        telemetry.inc(metric_names.SIM_REFRESH_FULL, self._refreshes_full)
        telemetry.inc(
            metric_names.SIM_REFRESH_INCREMENTAL,
            self._refreshes_incremental,
        )
        telemetry.inc(
            metric_names.SIM_RESCHEDULE_ELIDED, self._reschedules_elided
        )
        if self.trace is not None:
            telemetry.inc(
                metric_names.SIM_TRACE_SAMPLES, len(self.trace.samples)
            )
        # Simulation time and integrated energy are seed-deterministic,
        # so they may live in gauges (fingerprinted) despite the _s/_j
        # suffixes: they are model outputs, not wall-clock measurements.
        telemetry.set_gauge(metric_names.SIM_MAKESPAN_S, result.makespan_s)
        telemetry.set_gauge(metric_names.SIM_ENERGY_J, result.energy_j)
