"""The server-system simulator: Linux-like process lifecycle on a chip.

:class:`ServerSystem` replays a generated workload (Section VI.B) on a
:class:`~repro.platform.chip.Chip` under a pluggable policy controller —
the Baseline governor, the Safe-Vmin trim, or the paper's monitoring
daemon. The model is fluid: between events every running process advances
at a rate set by its profile, its clock, its PMD sharing and the
chip-wide memory contention; power is constant on each interval and
integrates into energy.

The simulator also audits electrical safety: after every state change it
compares the rail voltage against the ground-truth safe Vmin of the new
configuration, recording (or raising on) undervolting violations. The
paper's fail-safe daemon never violates; error-prone predictive policies
do, which is what the fail-safe ablation measures.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..errors import SimulationError, SystemCrash
from ..perf.contention import bandwidth_utilization, contention_factor
from ..telemetry import names as metric_names
from ..perf.model import ExecutionState, bandwidth_demand_gbs, execution_state
from ..platform.chip import Chip, ChipState
from ..platform.thermal import ThermalModel
from ..power.energy import EnergyMeter, ed2p
from ..power.model import PowerModel
from ..vmin.droop import DroopModel
from ..vmin.model import VminModel
from ..workloads.generator import Workload
from ..workloads.phases import resolve_benchmark
from .engine import Event, EventQueue, SimClock
from .process import SimProcess, WorkloadClass
from .scheduler import SpreadScheduler
from .tracing import TimelineTrace, TraceSample

#: Remaining-work fractions below this are "done" (float guard).
REMAINING_EPS = 1e-9


@dataclass(frozen=True, slots=True)
class ViolationRecord:
    """One interval where the rail sat below the ground-truth safe Vmin."""

    time_s: float
    voltage_mv: int
    required_mv: float

    @property
    def depth_mv(self) -> float:
        """How far below the safe Vmin the rail sat."""
        return self.required_mv - self.voltage_mv


@dataclass(slots=True)
class SystemResult:
    """Outcome of one full workload replay (one Tables III/IV column)."""

    makespan_s: float
    energy_j: float
    trace: Optional[TimelineTrace]
    processes: List[SimProcess]
    violations: List[ViolationRecord]
    voltage_transitions: int
    frequency_transitions: int

    @property
    def average_power_w(self) -> float:
        """Mean power over the run."""
        if self.makespan_s <= 0:
            return 0.0
        return self.energy_j / self.makespan_s

    @property
    def ed2p(self) -> float:
        """Energy-delay-squared product of the whole workload."""
        return ed2p(self.energy_j, self.makespan_s)

    @property
    def total_migrations(self) -> int:
        """Process migrations performed across the run."""
        return sum(p.migrations for p in self.processes)


class Controller:
    """Base policy controller; the Baseline and daemon configs subclass it.

    Hooks run inside the simulator's event handlers; they may reconfigure
    the chip and migrate processes through the system's API, and the
    simulator refreshes all rates afterwards.
    """

    #: Period of ``on_tick`` callbacks; ``None`` disables ticks.
    monitor_period_s: Optional[float] = None

    def __init__(self) -> None:
        self.system: Optional["ServerSystem"] = None

    def attach(self, system: "ServerSystem") -> None:
        """Bind the controller to a system before the run starts."""
        self.system = system

    def on_start(self) -> None:
        """Called once at time zero."""

    def place(self, process: SimProcess) -> Optional[Tuple[int, ...]]:
        """Choose cores for a new process; ``None`` delegates to CFS."""
        return None

    def on_process_started(self, process: SimProcess) -> None:
        """Called after a process began running."""

    def on_process_finished(self, process: SimProcess) -> None:
        """Called after a process completed."""

    def on_tick(self) -> None:
        """Periodic monitor callback (``monitor_period_s``)."""


class ServerSystem:
    """Replays one workload on one chip under one policy controller."""

    def __init__(
        self,
        chip: Chip,
        workload: Workload,
        controller: Optional[Controller] = None,
        power_model: Optional[PowerModel] = None,
        vmin_model: Optional[VminModel] = None,
        droop_model: Optional[DroopModel] = None,
        fault_policy: str = "record",
        trace_period_s: Optional[float] = 1.0,
        thermal_model: Optional[ThermalModel] = None,
    ):
        if fault_policy not in ("record", "raise", "off"):
            raise SimulationError(f"unknown fault policy {fault_policy!r}")
        self.chip = chip
        self.spec = chip.spec
        self.workload = workload
        self.controller = controller or Controller()
        self.power_model = power_model or PowerModel(chip.spec)
        self.vmin_model = vmin_model or VminModel.for_chip(chip)
        self.droop_model = droop_model or DroopModel(chip.spec)
        self.fault_policy = fault_policy
        #: Optional junction-temperature tracker; None = the calibration
        #: temperature everywhere (the paper's reporting condition).
        self.thermal = thermal_model
        #: (time, degC) samples when the thermal model is enabled.
        self.temperature_series: List[Tuple[float, float]] = []
        self.scheduler = SpreadScheduler()
        self.clock = SimClock()
        self.events = EventQueue()
        self.meter = EnergyMeter()
        self.trace = (
            TimelineTrace(trace_period_s) if trace_period_s else None
        )
        self._next_sample_s = 0.0
        self.processes: List[SimProcess] = [
            SimProcess(
                pid=job.job_id,
                profile=resolve_benchmark(job.benchmark),
                nthreads=job.nthreads,
                arrival_s=job.start_time_s,
            )
            for job in workload.jobs_sorted()
        ]
        self._by_pid: Dict[int, SimProcess] = {
            p.pid: p for p in self.processes
        }
        self.queue: Deque[SimProcess] = deque()
        self.violations: List[ViolationRecord] = []
        self._finish_events: Dict[int, Event] = {}
        self._phase_events: Dict[int, Event] = {}
        self._proc_states: Dict[int, ExecutionState] = {}
        self._power_w = 0.0
        self._pending_arrivals = 0
        self._crashed = False
        #: Events dispatched per kind + controller hook invocations;
        #: plain dict/int counts, flushed into telemetry at end of run.
        self._event_counts: Dict[str, int] = {}
        self._controller_calls = 0

    # -- public API used by controllers -----------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time, seconds."""
        return self.clock.now

    def running_processes(self) -> List[SimProcess]:
        """Processes currently occupying cores."""
        return [p for p in self.processes if p.is_running]

    def migrate(self, process: SimProcess, cores: Sequence[int]) -> None:
        """Move a running process to new cores (controller hook API)."""
        if not process.is_running:
            raise SimulationError(
                f"pid {process.pid}: cannot migrate a non-running process"
            )
        new = tuple(cores)
        if new == process.cores:
            return
        for core in new:
            holder = self.chip.occupant_of(core)
            if holder is not None and holder != process.pid:
                raise SimulationError(
                    f"core {core} busy with pid {holder}; migration invalid"
                )
        self.chip.release_occupant(process.pid)
        for core in new:
            self.chip.occupy(core, process.pid)
        process.migrate(new)

    def migrate_many(
        self, moves: Dict[SimProcess, Tuple[int, ...]]
    ) -> None:
        """Apply several migrations atomically (two-phase).

        All moving processes release their cores first, then re-occupy
        their targets, so swaps between processes are legal.
        """
        for process in moves:
            if not process.is_running:
                raise SimulationError(
                    f"pid {process.pid}: cannot migrate a non-running process"
                )
            self.chip.release_occupant(process.pid)
        for process, cores in moves.items():
            for core in cores:
                self.chip.occupy(core, process.pid)
            process.migrate(tuple(cores))

    def set_voltage(self, voltage_mv: float) -> int:
        """Set the shared rail (controller hook API)."""
        return self.chip.set_voltage(voltage_mv, self.now)

    def set_pmd_frequency(self, pmd_id: int, freq_hz: float) -> int:
        """Set one PMD's clock (controller hook API)."""
        return self.chip.set_pmd_frequency(pmd_id, freq_hz, self.now)

    def process_frequency_hz(self, process: SimProcess) -> int:
        """Slowest clock among the PMDs a running process occupies."""
        if not process.cores:
            return self.spec.fmax_hz
        state = self.chip.state()
        return min(state.frequency_of_core(c) for c in process.cores)

    # -- main loop ----------------------------------------------------------------

    def run(self) -> SystemResult:
        """Replay the whole workload and return the run summary."""
        self.controller.attach(self)
        for process in self.processes:
            self.events.schedule(process.arrival_s, "arrival", process.pid)
        self._pending_arrivals = len(self.processes)
        self._controller_calls += 1
        self.controller.on_start()
        if self.controller.monitor_period_s:
            self.events.schedule(
                self.controller.monitor_period_s, "tick"
            )
        self._refresh()
        while self.events:
            event = self.events.pop()
            self._integrate_to(event.time_s)
            self.clock.advance_to(event.time_s)
            self._dispatch(event)
            self._refresh()
            if self._crashed:
                break
        makespan = self._makespan()
        # Charge the idle tail (if tracing sampled past the last finish,
        # energy was already integrated up to the last event only).
        result = SystemResult(
            makespan_s=makespan,
            energy_j=self.meter.energy_j,
            trace=self.trace,
            processes=self.processes,
            violations=self.violations,
            voltage_transitions=self.chip.slimpro.transition_count(),
            frequency_transitions=self.chip.cppc.transition_count(),
        )
        if telemetry.enabled():
            self._flush_telemetry(result)
        return result

    # -- event handling ----------------------------------------------------------

    def _dispatch(self, event: Event) -> None:
        counts = self._event_counts
        counts[event.kind] = counts.get(event.kind, 0) + 1
        if event.kind == "arrival":
            self._handle_arrival(self._by_pid[event.payload])
        elif event.kind == "finish":
            self._handle_finish(event)
        elif event.kind == "phase":
            self._handle_phase(event)
        elif event.kind == "tick":
            self._handle_tick()
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown event kind {event.kind!r}")

    def _handle_arrival(self, process: SimProcess) -> None:
        self._pending_arrivals -= 1
        if not self._try_admit(process):
            self.queue.append(process)

    def _try_admit(self, process: SimProcess) -> bool:
        self._controller_calls += 1
        cores = self.controller.place(process)
        if cores is None:
            cores = self.scheduler.select_cores(self.chip, process.nthreads)
        if cores is None:
            return False
        process.start(self.now, tuple(cores))
        for core in process.cores:
            self.chip.occupy(core, process.pid)
        self._controller_calls += 1
        self.controller.on_process_started(process)
        return True

    def _handle_finish(self, event: Event) -> None:
        process = self._by_pid[event.payload]
        current = self._finish_events.get(process.pid)
        if current is None or current.seq != event.seq:
            return  # stale completion superseded by a reschedule
        del self._finish_events[process.pid]
        self.chip.release_occupant(process.pid)
        process.finish(self.now)
        self._controller_calls += 1
        self.controller.on_process_finished(process)
        self._admit_queued()

    def _admit_queued(self) -> None:
        while self.queue and self._try_admit(self.queue[0]):
            self.queue.popleft()

    def _handle_phase(self, event: Event) -> None:
        """A process crossed a phase boundary: rates change on refresh.

        The daemon is *not* notified directly — it must observe the
        shifted PMU rates through its monitor, as on real hardware.
        """
        process = self._by_pid[event.payload]
        current = self._phase_events.get(process.pid)
        if current is None or current.seq != event.seq:
            return  # superseded by a reschedule
        del self._phase_events[process.pid]

    def _handle_tick(self) -> None:
        self._controller_calls += 1
        self.controller.on_tick()
        work_left = (
            self._pending_arrivals > 0
            or self.queue
            or any(p.is_running for p in self.processes)
        )
        if work_left and self.controller.monitor_period_s:
            self.events.schedule(
                self.now + self.controller.monitor_period_s, "tick"
            )

    # -- fluid integration ---------------------------------------------------------

    def _integrate_to(self, time_s: float) -> None:
        dt = time_s - self.now
        if dt <= 0:
            self._sample_trace_until(time_s)
            return
        state = self.chip.state()
        running = self.running_processes()
        for process in running:
            exec_state = self._proc_states[process.pid]
            freq = self.process_frequency_hz(process)
            cycles = freq * dt * process.nthreads
            accesses = (
                exec_state.l3_rate_per_mcycles * freq * dt / 1e6
            ) * process.nthreads
            process.counters.advance(cycles, accesses)
            for core in process.cores:
                core_freq = state.frequency_of_core(core)
                self.chip.pmu.core(core).advance(
                    cycles=core_freq * dt,
                    instructions=core_freq * dt * exec_state.effective_activity,
                    l3_accesses=accesses / process.nthreads,
                )
            process.progress(dt / exec_state.duration_s)
        self._accumulate_droops(state, running, dt)
        self.meter.accumulate(self._power_w, dt)
        if self.thermal is not None:
            self.thermal.step(self._power_w, dt)
            self.temperature_series.append(
                (time_s, self.thermal.temperature_c)
            )
        self._sample_trace_until(time_s)

    def _accumulate_droops(
        self,
        state: ChipState,
        running: List[SimProcess],
        dt: float,
    ) -> None:
        pmds = state.active_pmds
        if not pmds:
            return
        cycles = state.max_active_frequency() * dt
        activity = sum(
            self._proc_states[p.pid].effective_activity for p in running
        ) / max(1, len(running))
        events = self.droop_model.events_for_interval(
            utilized_pmds=len(pmds),
            cycles=cycles,
            freq_class=state.worst_active_frequency_class(),
            activity=max(0.05, activity),
        )
        for bin_mv, count in events.items():
            self.chip.pmu.record_droops(bin_mv, count)

    def _sample_trace_until(self, time_s: float) -> None:
        if self.trace is None:
            return
        while self._next_sample_s <= time_s + 1e-12:
            counts = self._class_counts()
            state = self.chip.state()
            active = state.active_pmds
            mean_freq = (
                sum(state.pmd_frequencies_hz[p] for p in active) / len(active)
                if active
                else self.spec.fmin_hz
            )
            self.trace.append(
                TraceSample(
                    time_s=self._next_sample_s,
                    power_w=self._power_w,
                    busy_cores=len(state.active_cores),
                    running_processes=len(self.running_processes()),
                    cpu_intensive=counts[0],
                    memory_intensive=counts[1],
                    voltage_mv=state.voltage_mv,
                    mean_active_freq_hz=mean_freq,
                )
            )
            self._next_sample_s += self.trace.period_s

    def _class_counts(self) -> Tuple[int, int]:
        cpu = mem = 0
        for process in self.running_processes():
            label = process.observed_class
            if label is WorkloadClass.UNKNOWN:
                label = process.reference_class
            if label is WorkloadClass.MEMORY_INTENSIVE:
                mem += 1
            else:
                cpu += 1
        return cpu, mem

    # -- state refresh ----------------------------------------------------------------

    def _refresh(self) -> None:
        """Recompute rates, power and completion times after any change."""
        state = self.chip.state()
        running = self.running_processes()
        demands: List[float] = []
        freqs: Dict[int, int] = {}
        behaviours: Dict[int, object] = {}
        for process in running:
            freq = min(state.frequency_of_core(c) for c in process.cores)
            freqs[process.pid] = freq
            behaviour = process.current_profile()
            behaviours[process.pid] = behaviour
            demand = bandwidth_demand_gbs(behaviour, self.spec, freq)
            demands.extend([demand] * process.nthreads)
        crowd = contention_factor(self.spec, demands)
        bw_util = bandwidth_utilization(self.spec, demands)
        activity_map: Dict[int, float] = {}
        self._proc_states = {}
        for process in running:
            shares = self._shares_pmd(process)
            exec_state = execution_state(
                behaviours[process.pid],
                self.spec,
                freqs[process.pid],
                nthreads=process.nthreads,
                shares_pmd=shares,
                contention=crowd,
            )
            self._proc_states[process.pid] = exec_state
            for core in process.cores:
                activity_map[core] = exec_state.effective_activity
        leak_multiplier = (
            self.thermal.leakage_multiplier()
            if self.thermal is not None
            else 1.0
        )
        self._power_w = self.power_model.chip_power(
            state, activity_map, bw_util,
            leakage_multiplier=leak_multiplier,
        ).total_w
        self._reschedule_completions(running)
        self._audit_voltage(state, running)

    def _shares_pmd(self, process: SimProcess) -> bool:
        for core in process.cores:
            for sibling in self.spec.cores_of_pmd(self.spec.pmd_of_core(core)):
                if sibling != core and self.chip.occupant_of(sibling) is not None:
                    return True
        return False

    def _reschedule_completions(self, running: List[SimProcess]) -> None:
        for process in running:
            old = self._finish_events.get(process.pid)
            if old is not None:
                self.events.cancel(old)
            exec_state = self._proc_states[process.pid]
            remaining_s = max(
                0.0, process.remaining_fraction * exec_state.duration_s
            )
            if process.remaining_fraction <= REMAINING_EPS:
                remaining_s = 0.0
            self._finish_events[process.pid] = self.events.schedule(
                self.now + remaining_s, "finish", process.pid
            )
            self._reschedule_phase(process, exec_state)

    def _reschedule_phase(self, process, exec_state) -> None:
        old = self._phase_events.pop(process.pid, None)
        if old is not None:
            self.events.cancel(old)
        boundary = process.next_phase_boundary()
        if boundary is None:
            return
        # Progress advances at 1/duration done-fractions per second.
        eta_s = (boundary - process.done_fraction) * exec_state.duration_s
        self._phase_events[process.pid] = self.events.schedule(
            self.now + max(0.0, eta_s), "phase", process.pid
        )

    def _audit_voltage(
        self, state: ChipState, running: List[SimProcess]
    ) -> None:
        if self.fault_policy == "off" or not running:
            return
        workload_delta = max(
            p.current_profile().vmin_delta_mv for p in running
        )
        required = self.vmin_model.safe_vmin_for_state(
            state, workload_delta_mv=workload_delta
        )
        if self.thermal is not None:
            required += self.thermal.vmin_shift_mv()
        if state.voltage_mv < required - 1e-9:
            record = ViolationRecord(
                time_s=self.now,
                voltage_mv=state.voltage_mv,
                required_mv=required,
            )
            self.violations.append(record)
            if self.fault_policy == "raise":
                self._crashed = True
                raise SystemCrash(
                    state.voltage_mv,
                    f"rail at {state.voltage_mv} mV below safe Vmin "
                    f"{required:.1f} mV at t={self.now:.3f}s",
                )

    def _makespan(self) -> float:
        finished = [
            p.finish_s for p in self.processes if p.finish_s is not None
        ]
        return max(finished) if finished else self.now

    # -- telemetry ---------------------------------------------------------------

    def _flush_telemetry(self, result: SystemResult) -> None:
        """Publish the run's aggregate counts into the metric registry.

        Called once per completed replay (never inside the event loop),
        so the hot path stays free of telemetry dispatch: the loop only
        bumps plain ints/dicts and this flush converts them into the
        structured counters the run manifest snapshots. Every value is
        derived from simulation state, not wall clock, so snapshots are
        deterministic for a given seed.
        """
        counts = self._event_counts
        telemetry.inc(
            metric_names.SIM_EVENTS_DISPATCHED, sum(counts.values())
        )
        telemetry.inc(
            metric_names.SIM_EVENT_ARRIVALS, counts.get("arrival", 0)
        )
        telemetry.inc(
            metric_names.SIM_EVENT_FINISHES, counts.get("finish", 0)
        )
        telemetry.inc(metric_names.SIM_EVENT_PHASES, counts.get("phase", 0))
        telemetry.inc(metric_names.SIM_EVENT_TICKS, counts.get("tick", 0))
        telemetry.inc(
            metric_names.SIM_EVENTS_SCHEDULED, self.events.scheduled_total
        )
        telemetry.inc(
            metric_names.SIM_EVENTS_CANCELLED, self.events.cancelled_total
        )
        telemetry.inc(
            metric_names.SIM_CONTROLLER_CALLBACKS, self._controller_calls
        )
        telemetry.inc(metric_names.SIM_VIOLATIONS, len(self.violations))
        telemetry.inc(
            metric_names.SIM_VOLTAGE_TRANSITIONS,
            result.voltage_transitions,
        )
        telemetry.inc(
            metric_names.SIM_FREQUENCY_TRANSITIONS,
            result.frequency_transitions,
        )
        telemetry.inc(metric_names.SIM_RUNS)
        if self.trace is not None:
            telemetry.inc(
                metric_names.SIM_TRACE_SAMPLES, len(self.trace.samples)
            )
        # Simulation time and integrated energy are seed-deterministic,
        # so they may live in gauges (fingerprinted) despite the _s/_j
        # suffixes: they are model outputs, not wall-clock measurements.
        telemetry.set_gauge(metric_names.SIM_MAKESPAN_S, result.makespan_s)
        telemetry.set_gauge(metric_names.SIM_ENERGY_J, result.energy_j)
