"""Process model of the server simulation.

A :class:`SimProcess` is one issued job: a benchmark profile, a thread
count and an arrival time, plus the mutable execution state the fluid
simulation tracks — assigned cores, remaining work fraction and the
per-process PMU accumulation the daemon classifies from.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import SimulationError
from ..workloads.phases import AnyBenchmark, phase_boundaries, profile_at
from ..workloads.profiles import BenchmarkProfile


class ProcessState(enum.Enum):
    """Lifecycle of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"


class WorkloadClass(enum.Enum):
    """The daemon's process classes (Section IV.B)."""

    UNKNOWN = "unknown"
    CPU_INTENSIVE = "cpu"
    MEMORY_INTENSIVE = "memory"


@dataclass(slots=True)
class ProcessCounters:
    """Per-process PMU accumulation (what the kernel module exposes)."""

    cycles: float = 0.0
    l3_accesses: float = 0.0

    def advance(self, cycles: float, l3_accesses: float) -> None:
        """Accumulate one interval's worth of activity."""
        if cycles < 0 or l3_accesses < 0:
            raise SimulationError("counter deltas must be non-negative")
        self.cycles += cycles
        self.l3_accesses += l3_accesses


@dataclass(eq=False, slots=True)
class SimProcess:
    """One job instance inside the simulation.

    Identity semantics (``eq=False``): two process objects are the same
    process only if they are the same object, and processes are hashable
    as dictionary keys (migration maps, daemon state).
    """

    pid: int
    #: Behaviour description: a static profile or a phased benchmark.
    profile: AnyBenchmark
    nthreads: int
    arrival_s: float
    state: ProcessState = ProcessState.QUEUED
    cores: Tuple[int, ...] = ()
    #: Fraction of the job's work still to do (1.0 at start, 0.0 done).
    remaining_fraction: float = 1.0
    #: The daemon's current belief about the process class.
    observed_class: WorkloadClass = WorkloadClass.UNKNOWN
    counters: ProcessCounters = field(default_factory=ProcessCounters)
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    migrations: int = 0

    @property
    def name(self) -> str:
        """Benchmark name of the job."""
        return self.profile.name

    @property
    def is_running(self) -> bool:
        """True while the job occupies cores."""
        return self.state is ProcessState.RUNNING

    @property
    def done_fraction(self) -> float:
        """Fraction of the job's work already completed."""
        return 1.0 - self.remaining_fraction

    def current_profile(self) -> BenchmarkProfile:
        """Active behaviour profile at the current progress point.

        Static benchmarks return themselves; phased benchmarks return
        the profile of the phase the job is currently in.
        """
        return profile_at(self.profile, self.done_fraction)

    def next_phase_boundary(self) -> Optional[float]:
        """Next done-fraction where the behaviour changes, if any."""
        for boundary in phase_boundaries(self.profile):
            if boundary > self.done_fraction + 1e-9:
                return boundary
        return None

    @property
    def reference_class(self) -> WorkloadClass:
        """Ground-truth class of the *current phase* at the reference
        point.

        Traces of daemon-less configurations (the Baseline of Fig. 15)
        fall back to this, since no classifier runs there.
        """
        if self.current_profile().is_memory_intensive_reference():
            return WorkloadClass.MEMORY_INTENSIVE
        return WorkloadClass.CPU_INTENSIVE

    def start(self, time_s: float, cores: Tuple[int, ...]) -> None:
        """Transition QUEUED -> RUNNING on the given cores."""
        if self.state is not ProcessState.QUEUED:
            raise SimulationError(f"pid {self.pid}: start from {self.state}")
        if len(cores) != self.nthreads:
            raise SimulationError(
                f"pid {self.pid}: {self.nthreads} threads but "
                f"{len(cores)} cores"
            )
        self.state = ProcessState.RUNNING
        self.cores = tuple(cores)
        self.start_s = time_s

    def migrate(self, cores: Tuple[int, ...]) -> None:
        """Move the running job to a different core set."""
        if self.state is not ProcessState.RUNNING:
            raise SimulationError(f"pid {self.pid}: migrate while {self.state}")
        if len(cores) != self.nthreads:
            raise SimulationError(
                f"pid {self.pid}: migration needs {self.nthreads} cores"
            )
        if tuple(cores) != self.cores:
            self.cores = tuple(cores)
            self.migrations += 1

    def finish(self, time_s: float) -> None:
        """Transition RUNNING -> DONE."""
        if self.state is not ProcessState.RUNNING:
            raise SimulationError(f"pid {self.pid}: finish from {self.state}")
        self.state = ProcessState.DONE
        self.cores = ()
        self.remaining_fraction = 0.0
        self.finish_s = time_s

    def progress(self, fraction: float) -> None:
        """Consume a fraction of the remaining work."""
        if fraction < 0:
            raise SimulationError("progress fraction must be non-negative")
        self.remaining_fraction = max(0.0, self.remaining_fraction - fraction)

    def turnaround_s(self) -> float:
        """Arrival-to-finish time of a completed job."""
        if self.finish_s is None:
            raise SimulationError(f"pid {self.pid} has not finished")
        return self.finish_s - self.arrival_s
