"""CPU-frequency governors (the Baseline's ``ondemand`` and friends).

The evaluation's Baseline and Safe-Vmin configurations keep the Linux
``ondemand`` governor enabled (Section VI.B); the Placement and Optimal
configurations disable it and let the daemon drive the clocks. In the
fluid simulation a PMD is either fully busy (a thread occupies one of its
cores) or idle, so ``ondemand``'s utilization ramp collapses to a clean
two-point policy: busy PMDs run at fmax, idle PMDs drop to the floor.
``performance`` and ``powersave`` pin every PMD, and exist mostly for
ablation runs.
"""

from __future__ import annotations

from ..platform.chip import Chip


class OndemandGovernor:
    """The stock ``ondemand`` policy, at chip or PMD granularity.

    ``scope="chip"`` (default) models the machines' default cpufreq
    setup: one frequency policy for the whole package, so any busy core
    drags *every* PMD to fmax. This is the Baseline the paper's
    Placement configuration beats by double digits — per-PMD frequency
    control is exactly one of the knobs the daemon adds.

    ``scope="pmd"`` is an idealised per-module ondemand (each PMD ramps
    independently), used by the governor-scope ablation.
    """

    name = "ondemand"

    def __init__(self, scope: str = "chip"):
        if scope not in ("chip", "pmd"):
            raise ValueError(f"unknown governor scope {scope!r}")
        self.scope = scope

    def apply(self, chip: Chip, time_s: float = 0.0) -> None:
        """Re-evaluate the clocks against the current occupancy."""
        spec = chip.spec
        if self.scope == "chip":
            busy = bool(chip.active_cores)
            target = spec.fmax_hz if busy else spec.fmin_hz
            chip.set_all_frequencies(target, time_s)
            return
        for pmd_id in range(spec.n_pmds):
            if chip.pmd_is_fully_idle(pmd_id):
                chip.set_pmd_frequency(pmd_id, spec.fmin_hz, time_s)
            else:
                chip.set_pmd_frequency(pmd_id, spec.fmax_hz, time_s)


class PerformanceGovernor:
    """Every PMD pinned at fmax."""

    name = "performance"

    def apply(self, chip: Chip, time_s: float = 0.0) -> None:
        """Pin all PMDs to the maximum clock."""
        chip.set_all_frequencies(chip.spec.fmax_hz, time_s)


class PowersaveGovernor:
    """Every PMD pinned at the frequency floor."""

    name = "powersave"

    def apply(self, chip: Chip, time_s: float = 0.0) -> None:
        """Pin all PMDs to the minimum clock."""
        chip.set_all_frequencies(chip.spec.fmin_hz, time_s)
