"""Default (Linux-like) thread placement.

The Baseline configuration of the evaluation runs the machine with
"default scheduler settings": the Linux CFS load balancer spreads runnable
threads across scheduling domains, which on these chips means across PMDs
— each thread lands on an idle PMD while one exists. That is exactly the
*spreaded* allocation of Fig. 2, so the default scheduler is a thin policy
over :func:`repro.allocation.pick_free_cores`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from ..allocation import Allocation, pick_free_cores
from ..platform.chip import Chip


class SpreadScheduler:
    """CFS-like placement: spread threads across PMDs."""

    allocation = Allocation.SPREADED

    def select_cores(
        self, chip: Chip, nthreads: int
    ) -> Optional[Tuple[int, ...]]:
        """Pick cores for a new job, or ``None`` when not enough are free."""
        free = chip.idle_cores
        if len(free) < nthreads:
            return None
        return pick_free_cores(chip.spec, free, nthreads, self.allocation)


class ClusterScheduler:
    """Pack threads onto as few PMDs as possible (ablation baseline)."""

    allocation = Allocation.CLUSTERED

    def select_cores(
        self, chip: Chip, nthreads: int
    ) -> Optional[Tuple[int, ...]]:
        """Pick cores for a new job, or ``None`` when not enough are free."""
        free = chip.idle_cores
        if len(free) < nthreads:
            return None
        return pick_free_cores(chip.spec, free, nthreads, self.allocation)
