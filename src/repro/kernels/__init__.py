"""Batched (array-in/array-out) evaluation kernels.

Every paper artefact sweeps the same closed-form models — safe Vmin,
failure probability, chip power — over an operating-point grid of
(voltage, frequency class, PMD occupancy, workload delta). The scalar
APIs in :mod:`repro.vmin` and :mod:`repro.power` evaluate one point per
Python call, so full characterization campaigns are bounded by
interpreter overhead rather than arithmetic. This package provides NumPy
counterparts that evaluate whole grids in one call:

* :mod:`repro.kernels.vmin` — batched
  :meth:`~repro.vmin.model.VminModel.evaluate` /
  :meth:`~repro.vmin.model.VminModel.safe_vmin_mv`;
* :mod:`repro.kernels.faults` — batched
  :meth:`~repro.vmin.faults.FaultModel.pfail` /
  :meth:`~repro.vmin.faults.FaultModel.outcome_mix`, the analytic
  outcome-count reduction of the campaign protocol, and vectorized
  binomial/multinomial draws for Monte-Carlo (``trials``) mode;
* :mod:`repro.kernels.power` — the batched
  :meth:`~repro.power.model.PowerModel.chip_power` closed form used by
  the energy grids (Figs. 7/11/12).

**Equivalence contract.** Each kernel mirrors the floating-point
operation order of its scalar counterpart (including reduction order,
rounding mode and residue placement), so results are bit-for-bit
identical — not merely close. The scalar APIs remain the reference
implementations; the property tests in ``tests/vmin/test_kernels.py``
assert exact equality, and ``docs/PERFORMANCE.md`` documents the
contract. The scalar-to-kernel mapping itself is recorded in
:mod:`repro.kernels.parity` (:data:`~repro.kernels.parity.PARITY` /
:data:`~repro.kernels.parity.SCALAR_ONLY`) and enforced statically by
``reprolint`` rule RL003 and at runtime by
:func:`~repro.kernels.parity.verify_parity`.
"""

from .faults import (
    MIX_ORDER,
    analytic_failure_counts,
    analytic_outcome_counts,
    multinomial_split,
    outcome_mix_grid,
    pfail_grid,
    sample_outcome_counts,
    width_mv_grid,
)
from .parity import PARITY, SCALAR_ONLY, verify_parity
from .power import PowerGrid, chip_power_grid
from .vmin import VminGrid, evaluate_grid, safe_vmin_grid, safe_vmin_matrix

__all__ = [
    "MIX_ORDER",
    "PARITY",
    "PowerGrid",
    "SCALAR_ONLY",
    "VminGrid",
    "analytic_failure_counts",
    "analytic_outcome_counts",
    "chip_power_grid",
    "evaluate_grid",
    "multinomial_split",
    "outcome_mix_grid",
    "pfail_grid",
    "safe_vmin_grid",
    "safe_vmin_matrix",
    "verify_parity",
    "width_mv_grid",
]
