"""Batched counterparts of the scalar safe-Vmin model.

The ground truth is closed-form over the operating grid
(:mod:`repro.vmin.model`)::

    Vmin = base(freq class, droop class)
           + attenuation(|cores|) * (core offset + workload delta)

clamped to the nominal rail. The kernels here evaluate that expression
for many configurations at once, reusing the scalar model for the cheap
per-configuration discrete lookups (droop class, frequency class, base
table row) and vectorizing the arithmetic, which is where campaign time
goes. The floating-point expression is evaluated in exactly the scalar
order, so totals are bit-for-bit identical to
:meth:`VminModel.evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from .. import telemetry
from ..platform.specs import FrequencyClass
from ..units import HertzInt
from ..telemetry import names as metric_names
from ..vmin.droop import droop_bin_index
from ..vmin.model import VminModel, variation_attenuation

#: One core set: any iterable of core ids.
CoreSet = Iterable[int]


@dataclass(frozen=True, slots=True)
class VminGrid:
    """Decomposition arrays of one batched Vmin evaluation (N points).

    The array fields line up with the scalar
    :class:`~repro.vmin.model.VminBreakdown` attributes; ``total_mv`` is
    the safe Vmin per point.
    """

    base_mv: np.ndarray
    attenuation: np.ndarray
    core_offset_mv: np.ndarray
    workload_delta_mv: np.ndarray
    total_mv: np.ndarray
    droop_class: np.ndarray
    freq_class: Tuple[FrequencyClass, ...]

    def __len__(self) -> int:
        return self.total_mv.shape[0]


class _PointCompiler:
    """Maps (freq, core set) pairs to their discrete model terms.

    The discrete lookups are memoized per unique frequency and per
    unique core set: campaign grids revisit the same handful of
    configurations across the whole benchmark pool.
    """

    def __init__(self, model: VminModel):
        self.model = model
        self._freq_memo: Dict[int, FrequencyClass] = {}
        self._core_memo: Dict[
            Tuple[int, ...], Tuple[int, float, float]
        ] = {}

    def freq_class(self, freq_hz: HertzInt) -> FrequencyClass:
        cached = self._freq_memo.get(freq_hz)
        if cached is None:
            spec = self.model.spec
            cached = spec.frequency_class(spec.nearest_frequency(freq_hz))
            self._freq_memo[freq_hz] = cached
        return cached

    def core_terms(self, cores: Tuple[int, ...]) -> Tuple[int, float, float]:
        """(droop class, attenuation, worst core offset) of a core set."""
        cached = self._core_memo.get(cores)
        if cached is None:
            spec = self.model.spec
            unique = frozenset(cores)
            pmds = {spec.pmd_of_core(c) for c in unique}
            droop_class = droop_bin_index(spec, max(1, len(pmds)))
            cached = (
                droop_class,
                variation_attenuation(len(unique)),
                self.model.variation.max_offset(unique),
            )
            self._core_memo[cores] = cached
        return cached


def _as_list(value: Any, n: int, name: str) -> List[Any]:
    """Broadcast a scalar to length ``n`` or validate a sequence."""
    if isinstance(value, (list, tuple)):
        if len(value) not in (1, n):
            raise ValueError(
                f"{name}: expected length {n}, got {len(value)}"
            )
        return list(value) * (n // len(value)) if len(value) == 1 else list(value)
    return [value] * n


def evaluate_grid(
    model: VminModel,
    freq_hz: Union[int, Sequence[int]],
    cores: Union[CoreSet, Sequence[CoreSet]],
    workload_delta_mv: Union[float, Sequence[float]] = 0.0,
    compiler: Optional[_PointCompiler] = None,
) -> VminGrid:
    """Batched :meth:`VminModel.evaluate` over N configurations.

    ``freq_hz``, ``cores`` and ``workload_delta_mv`` are each either one
    value (shared by every point) or a sequence of N values; ``cores``
    entries are core-id iterables. Returns per-point decomposition
    arrays whose totals match the scalar evaluation bit for bit.
    """
    core_sets = _normalize_core_sets(cores)
    n = max(
        len(core_sets),
        len(freq_hz) if isinstance(freq_hz, (list, tuple)) else 1,
        len(workload_delta_mv)
        if isinstance(workload_delta_mv, (list, tuple))
        else 1,
    )
    if len(core_sets) not in (1, n):
        raise ValueError(
            f"cores: expected {n} core sets, got {len(core_sets)}"
        )
    if len(core_sets) == 1:
        core_sets = core_sets * n
    freqs = _as_list(freq_hz, n, "freq_hz")
    deltas = _as_list(workload_delta_mv, n, "workload_delta_mv")
    telemetry.observe(metric_names.KERNELS_VMIN_BATCH, n)

    compile_ = compiler or _PointCompiler(model)
    base = np.empty(n, dtype=np.float64)
    atten = np.empty(n, dtype=np.float64)
    offset = np.empty(n, dtype=np.float64)
    droop = np.empty(n, dtype=np.int64)
    classes: List[FrequencyClass] = []
    for i in range(n):
        fclass = compile_.freq_class(freqs[i])
        droop_class, attenuation, core_offset = compile_.core_terms(
            core_sets[i]
        )
        base[i] = model.base_vmin_mv(fclass, droop_class)
        atten[i] = attenuation
        offset[i] = core_offset
        droop[i] = droop_class
        classes.append(fclass)
    delta = np.asarray(deltas, dtype=np.float64)
    # Same expression, same order as the scalar model:
    # total = min(base + atten * (core_offset + delta), nominal).
    total = np.minimum(
        base + atten * (offset + delta),
        float(model.spec.nominal_voltage_mv),
    )
    return VminGrid(
        base_mv=base,
        attenuation=atten,
        core_offset_mv=offset,
        workload_delta_mv=delta,
        total_mv=total,
        droop_class=droop,
        freq_class=tuple(classes),
    )


def _normalize_core_sets(cores: Any) -> List[Tuple[int, ...]]:
    """Normalize ``cores`` to a list of core-id tuples."""
    seq = list(cores)
    if seq and all(isinstance(c, (int, np.integer)) for c in seq):
        return [tuple(int(c) for c in seq)]
    return [tuple(int(c) for c in entry) for entry in seq]


def safe_vmin_grid(
    model: VminModel,
    freq_hz: Union[int, Sequence[int]],
    cores: Union[CoreSet, Sequence[CoreSet]],
    workload_delta_mv: Union[float, Sequence[float]] = 0.0,
) -> np.ndarray:
    """Batched :meth:`VminModel.safe_vmin_mv`: safe Vmin (mV) per point."""
    return evaluate_grid(model, freq_hz, cores, workload_delta_mv).total_mv


def safe_vmin_matrix(
    model: VminModel,
    freq_hz: int,
    core_sets: Sequence[CoreSet],
    workload_deltas_mv: Sequence[float],
) -> np.ndarray:
    """Safe-Vmin matrix over core sets x workload deltas at one frequency.

    Returns shape ``(len(core_sets), len(workload_deltas_mv))`` — the
    outer-product grid the policy-table reduction consumes. Entry
    ``[s, d]`` equals
    ``model.safe_vmin_mv(freq_hz, core_sets[s], workload_deltas_mv[d])``
    exactly.
    """
    compile_ = _PointCompiler(model)
    fclass = compile_.freq_class(freq_hz)
    sets = [tuple(int(c) for c in entry) for entry in core_sets]
    base = np.empty(len(sets), dtype=np.float64)
    atten = np.empty(len(sets), dtype=np.float64)
    offset = np.empty(len(sets), dtype=np.float64)
    for i, entry in enumerate(sets):
        droop_class, attenuation, core_offset = compile_.core_terms(entry)
        base[i] = model.base_vmin_mv(fclass, droop_class)
        atten[i] = attenuation
        offset[i] = core_offset
    delta = np.asarray(list(workload_deltas_mv), dtype=np.float64)
    return np.minimum(
        base[:, None] + atten[:, None] * (offset[:, None] + delta[None, :]),
        float(model.spec.nominal_voltage_mv),
    )
