"""Kernel/scalar parity registry.

The batched kernels in :mod:`repro.kernels` mirror the scalar models
(:mod:`repro.vmin.model`, :mod:`repro.vmin.faults`,
:mod:`repro.power.model`) bit for bit over grids of operating points.
This registry makes the mirroring an explicit, checkable contract:

* :data:`PARITY` maps every scalar callable that *has* a batched
  mirror to the kernel implementing it;
* :data:`SCALAR_ONLY` lists the scalar callables that deliberately
  have none, each with the reason.

``reprolint`` rule RL003 statically cross-checks both tables against
the source: a new public scalar callable must land in one of them, a
renamed kernel invalidates its ``PARITY`` entry, and a stale key is
flagged at its line here. :func:`verify_parity` re-validates the same
contract at runtime (the unit tests call it), so a registry that
drifts from the importable truth fails fast in both worlds.
"""

from __future__ import annotations

import importlib
from typing import Dict, List, Tuple

#: scalar callable -> the batched kernel mirroring it.
PARITY: Dict[str, str] = {
    "repro.vmin.model.VminModel.evaluate": (
        "repro.kernels.vmin.evaluate_grid"
    ),
    "repro.vmin.model.VminModel.safe_vmin_mv": (
        "repro.kernels.vmin.safe_vmin_grid"
    ),
    "repro.vmin.model.VminModel.safe_vmin_for_state": (
        "repro.kernels.vmin.safe_vmin_matrix"
    ),
    "repro.vmin.faults.FaultModel.width_mv": (
        "repro.kernels.faults.width_mv_grid"
    ),
    "repro.vmin.faults.FaultModel.pfail": (
        "repro.kernels.faults.pfail_grid"
    ),
    "repro.vmin.faults.FaultModel.depth_fraction": (
        "repro.kernels.faults._depth_fraction"
    ),
    "repro.vmin.faults.FaultModel.outcome_mix": (
        "repro.kernels.faults.outcome_mix_grid"
    ),
    "repro.vmin.faults.FaultModel.sample_outcome": (
        "repro.kernels.faults.sample_outcome_counts"
    ),
    "repro.power.model.PowerModel.chip_power": (
        "repro.kernels.power.chip_power_grid"
    ),
}

#: scalar callables with no batched mirror, and why none is needed.
SCALAR_ONLY: Dict[str, str] = {
    "repro.vmin.model.register_vmin_table": (
        "registry mutation (adds a chip table); not a numeric"
        " evaluation"
    ),
    "repro.vmin.model.variation_attenuation": (
        "closed-form scalar already inlined by evaluate_grid's"
        " per-point compiler"
    ),
    "repro.vmin.model.workload_delta_limit_mv": (
        "constant accessor; kernels take the delta as an input axis"
    ),
    "repro.vmin.model.VminModel.content_key": (
        "cache fingerprint payload consumed by repro.vmin.cache;"
        " not per-point math"
    ),
    "repro.vmin.model.VminModel.base_vmin_mv": (
        "per-frequency table lookup folded into evaluate_grid"
    ),
    "repro.vmin.model.VminModel.factor_decomposition": (
        "report-time diagnostic dict; never evaluated over grids"
    ),
    "repro.vmin.faults.FaultModel.unsafe_region": (
        "returns an UnsafeRegion object; the numeric part is"
        " width_mv_grid"
    ),
    "repro.vmin.faults.FaultModel.raise_for_outcome": (
        "control flow (raises VoltageFault); nothing to batch"
    ),
    "repro.vmin.faults.FaultModel.probability_all_pass": (
        "(1 - pfail) ** runs convenience; batched callers compose"
        " pfail_grid with analytic_failure_counts"
    ),
    "repro.power.model.register_power_params": (
        "registry mutation (adds chip power params); not a numeric"
        " evaluation"
    ),
    "repro.power.model.PowerModel.core_dynamic_w": (
        "component term folded into chip_power_grid"
    ),
    "repro.power.model.PowerModel.core_leakage_w": (
        "component term folded into chip_power_grid"
    ),
    "repro.power.model.PowerModel.pmd_overhead_w": (
        "component term folded into chip_power_grid"
    ),
    "repro.power.model.PowerModel.uncore_power_w": (
        "component term folded into chip_power_grid"
    ),
    "repro.power.model.PowerModel.idle_power_w": (
        "scalar convenience over chip_power at the idle state"
    ),
    "repro.power.model.PowerModel.max_power_w": (
        "scalar envelope bound used for validation, not swept"
    ),
}


def _resolve(dotted: str) -> object:
    """Import the object named by ``dotted`` (module.attr[.attr])."""
    parts = dotted.split(".")
    for split in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:split])
        try:
            module = importlib.import_module(module_name)
        except ImportError:
            continue
        obj: object = module
        try:
            for attr in parts[split:]:
                obj = getattr(obj, attr)
        except AttributeError:
            break
        return obj
    raise LookupError(f"cannot resolve {dotted!r}")


def verify_parity() -> List[Tuple[str, str]]:
    """Runtime check of the registry against importable reality.

    Returns the ``(scalar, kernel)`` pairs of :data:`PARITY` after
    asserting every name on either side of the registry resolves to a
    callable and that no name sits in both tables. Raises
    :class:`LookupError` on a dangling name, :class:`ValueError` on a
    structural violation.
    """
    overlap = sorted(set(PARITY) & set(SCALAR_ONLY))
    if overlap:
        raise ValueError(
            f"names in both PARITY and SCALAR_ONLY: {overlap}"
        )
    for name, reason in SCALAR_ONLY.items():
        if not reason.strip():
            raise ValueError(f"SCALAR_ONLY[{name!r}] has no reason")
        if not callable(_resolve(name)):
            raise ValueError(f"SCALAR_ONLY key {name!r} not callable")
    pairs: List[Tuple[str, str]] = []
    for scalar, kernel in PARITY.items():
        if not callable(_resolve(scalar)):
            raise ValueError(f"PARITY key {scalar!r} not callable")
        if not callable(_resolve(kernel)):
            raise ValueError(f"PARITY value {kernel!r} not callable")
        pairs.append((scalar, kernel))
    return pairs
