"""Batched counterparts of the scalar fault model.

Vectorizes :meth:`FaultModel.pfail` and :meth:`FaultModel.outcome_mix`
over arbitrary (voltage, safe Vmin, droop class) grids, plus the two
outcome-count reductions of the campaign protocol
(:meth:`VminCampaign._run_level`):

* **analytic** — expected counts with the campaign's exact rounding:
  half-to-even per failure type, rounding residue assigned to the
  dominant type;
* **trials** — vectorized binomial failure draws and batched
  multinomial type splits for Monte-Carlo mode.

All analytic arithmetic mirrors the scalar operation order, so results
are bit-for-bit identical to the scalar fault model.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from .. import telemetry
from ..telemetry import names as metric_names
from ..vmin.faults import (
    FAULT_OUTCOMES,
    OUTCOME_CRASH,
    OUTCOME_HANG,
    OUTCOME_SDC,
    OUTCOME_TIMEOUT,
    FaultModel,
)

#: Failure-type order of the batched mix arrays. This is the iteration
#: order of the scalar ``outcome_mix`` dict, which matters: the analytic
#: rounding residue goes to the *first* maximal type in this order.
MIX_ORDER = (OUTCOME_CRASH, OUTCOME_SDC, OUTCOME_HANG, OUTCOME_TIMEOUT)

#: MIX_ORDER column of each FAULT_OUTCOMES tag, and vice versa (used to
#: translate trials-mode multinomial draws between the two orders).
_MIX_COL_OF_FAULT = tuple(MIX_ORDER.index(tag) for tag in FAULT_OUTCOMES)
_FAULT_COL_OF_MIX = tuple(FAULT_OUTCOMES.index(tag) for tag in MIX_ORDER)


def width_mv_grid(
    fault_model: FaultModel, droop_class: np.ndarray
) -> np.ndarray:
    """Batched :meth:`FaultModel.width_mv`: unsafe-region width per class."""
    return np.maximum(
        fault_model.MIN_WIDTH_MV,
        fault_model.MAX_WIDTH_MV
        - fault_model.WIDTH_STEP_MV * np.asarray(droop_class),
    )


def pfail_grid(
    fault_model: FaultModel,
    voltage_mv: np.ndarray,
    safe_vmin_mv: np.ndarray,
    droop_class: np.ndarray,
) -> np.ndarray:
    """Batched :meth:`FaultModel.pfail` over broadcastable arrays.

    Zero at and above the safe Vmin, one at and below the crash point,
    the smoothstep of Fig. 5 in between — evaluated with the scalar
    expression order, so every element equals the scalar ``pfail``.
    """
    depth = np.asarray(safe_vmin_mv, dtype=np.float64) - np.asarray(
        voltage_mv
    )
    telemetry.observe(metric_names.KERNELS_FAULTS_BATCH, depth.size)
    x = depth / width_mv_grid(fault_model, droop_class)
    smooth = x * x * (3.0 - 2.0 * x)
    return np.where(x <= 0.0, 0.0, np.where(x >= 1.0, 1.0, smooth))


def _depth_fraction(
    fault_model: FaultModel,
    voltage_mv: np.ndarray,
    safe_vmin_mv: np.ndarray,
    droop_class: np.ndarray,
) -> np.ndarray:
    depth = np.asarray(safe_vmin_mv, dtype=np.float64) - np.asarray(
        voltage_mv
    )
    width = width_mv_grid(fault_model, droop_class)
    return np.minimum(1.0, np.maximum(0.0, depth / width))


def outcome_mix_grid(
    fault_model: FaultModel,
    voltage_mv: np.ndarray,
    safe_vmin_mv: np.ndarray,
    droop_class: np.ndarray,
) -> np.ndarray:
    """Batched :meth:`FaultModel.outcome_mix`.

    Returns an array with one trailing axis of length 4 holding the
    conditional failure-type distribution in :data:`MIX_ORDER`.
    """
    x = _depth_fraction(fault_model, voltage_mv, safe_vmin_mv, droop_class)
    crash = 0.15 + 0.65 * x
    sdc = np.maximum(0.05, 0.55 - 0.40 * x)
    hang = 0.12 * (1.0 - 0.5 * x)
    timeout = np.maximum(0.0, 1.0 - crash - sdc - hang)
    total = crash + sdc + hang + timeout
    return np.stack(
        [crash / total, sdc / total, hang / total, timeout / total],
        axis=-1,
    )


def analytic_failure_counts(pfail: np.ndarray, runs: int) -> np.ndarray:
    """Batched expected failure counts with the campaign's rounding.

    ``failures = round(pfail * runs)`` (half to even), forced to at
    least one whenever ``pfail > 0`` — the failure-count half of the
    analytic branch of ``VminCampaign._run_level``.
    """
    pfail = np.asarray(pfail, dtype=np.float64)
    failures = np.rint(pfail * runs).astype(np.int64)
    return np.where(pfail > 0.0, np.maximum(failures, 1), failures)


def analytic_outcome_counts(
    pfail: np.ndarray, mix: np.ndarray, runs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Expected (failures, per-type split) with the campaign's rounding.

    Mirrors the analytic branch of ``VminCampaign._run_level`` exactly:
    failures via :func:`analytic_failure_counts`; the per-type split
    rounds each share half-to-even and assigns the integer residue to
    the dominant (first maximal, in :data:`MIX_ORDER`) failure type.

    ``pfail`` has any shape; ``mix`` must append one axis of length 4 in
    :data:`MIX_ORDER`. Returns ``failures`` (same shape as ``pfail``,
    int64) and ``split`` (shape of ``mix``, int64).
    """
    failures = analytic_failure_counts(pfail, runs)
    split = np.rint(failures[..., None] * mix).astype(np.int64)
    residue = failures - split.sum(axis=-1)
    dominant = np.argmax(mix, axis=-1)
    np.put_along_axis(
        split,
        dominant[..., None],
        np.take_along_axis(split, dominant[..., None], axis=-1)
        + residue[..., None],
        axis=-1,
    )
    return failures, split


def multinomial_split(
    rng: np.random.Generator, failures: np.ndarray, mix: np.ndarray
) -> np.ndarray:
    """Batched multinomial split of failure counts into failure types.

    ``mix`` appends one :data:`MIX_ORDER` axis to the shape of
    ``failures``. Draws in ``FAULT_OUTCOMES`` order like the scalar
    trials branch, then reorders the columns back to :data:`MIX_ORDER`.
    """
    pvals = np.take(
        np.asarray(mix, dtype=np.float64), _MIX_COL_OF_FAULT, axis=-1
    )
    draws = rng.multinomial(np.asarray(failures), pvals)
    return np.take(draws, _FAULT_COL_OF_MIX, axis=-1).astype(np.int64)


def sample_outcome_counts(
    rng: np.random.Generator,
    pfail: np.ndarray,
    mix: np.ndarray,
    runs: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo (failures, per-type split) with vectorized draws.

    One binomial draw per grid point and one batched multinomial split
    across the whole grid, instead of one Python-level RNG call per
    voltage level. The draws are deterministic for a given generator
    state but do **not** reproduce the scalar trials-mode stream, which
    interleaves draws level by level.

    Returns ``failures`` (shape of ``pfail``) and ``split`` (shape of
    ``mix``, :data:`MIX_ORDER` columns), both int64.
    """
    pfail = np.asarray(pfail, dtype=np.float64)
    failures = rng.binomial(runs, pfail).astype(np.int64)
    return failures, multinomial_split(rng, failures, mix)
