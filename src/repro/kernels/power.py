"""Batched counterpart of the scalar chip power model.

Vectorizes :meth:`PowerModel.chip_power` for the configuration shape the
energy grids (Figs. 7/11/12) sweep: one uniform chip clock per
configuration, one shared effective activity for the configuration's
active cores, idle cores at their (possibly clock-gated) floor.

**Bit-exactness note.** NumPy's ``**`` does not reproduce CPython's
``float.__pow__`` bitwise (``arr ** 2`` lowers to ``arr * arr`` while the
scalar model goes through libm ``pow``), so the two voltage powers
(``vr ** 2`` and ``vr ** leak_exponent``) are evaluated with Python
floats per *unique* voltage and scattered back over the grid. Campaign
grids only visit a handful of distinct voltages, so this costs nothing
and keeps every total identical to the scalar model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence, Union

import numpy as np

from .. import telemetry
from ..errors import ConfigurationError
from ..power.model import PowerModel
from ..telemetry import names as metric_names

#: One active-core set: any iterable of core ids.
CoreSet = Iterable[int]


@dataclass(frozen=True, slots=True)
class PowerGrid:
    """One batched power evaluation split into its physical parts (W).

    Array fields line up with the scalar
    :class:`~repro.power.model.PowerBreakdown` attributes, one element
    per configuration; ``total_w`` is precomputed with the scalar
    summation order.
    """

    dynamic_w: np.ndarray
    leakage_w: np.ndarray
    pmd_overhead_w: np.ndarray
    uncore_w: np.ndarray
    external_w: np.ndarray
    total_w: np.ndarray

    def __len__(self) -> int:
        return self.total_w.shape[0]


def _scalar_pow_by_unique(values: np.ndarray, exponent: float) -> np.ndarray:
    """``values ** exponent`` via CPython ``float.__pow__`` per unique value.

    Keeps the batched voltage powers bit-identical to the scalar model
    (see module docstring).
    """
    unique, inverse = np.unique(values, return_inverse=True)
    powered = np.array(
        [float(v) ** exponent for v in unique], dtype=np.float64
    )
    return powered[inverse]


def _as_array(value: Any, n: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=np.float64)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"{name}: expected shape ({n},), got {arr.shape}")
    return arr


def chip_power_grid(
    power_model: PowerModel,
    voltage_mv: Union[float, Sequence[float]],
    freq_hz: Union[float, Sequence[float]],
    activity: Union[float, Sequence[float]],
    active_core_sets: Sequence[CoreSet],
    memory_utilization: Union[float, Sequence[float]] = 0.0,
    leakage_multiplier: Union[float, Sequence[float]] = 1.0,
) -> PowerGrid:
    """Batched :meth:`PowerModel.chip_power` over N configurations.

    Configuration ``i`` runs the chip at ``voltage_mv[i]`` with every PMD
    clocked at ``freq_hz[i]``, the cores of ``active_core_sets[i]`` busy
    at effective activity ``activity[i]``, and memory-system utilization
    ``memory_utilization[i]`` — exactly the shape
    :meth:`EnergyRunner.measure` evaluates. Scalars broadcast to all N.
    Totals are bit-for-bit identical to the scalar evaluation.
    """
    n = len(active_core_sets)
    telemetry.observe(metric_names.KERNELS_POWER_BATCH, n)
    spec = power_model.spec
    params = power_model.params
    voltage = _as_array(voltage_mv, n, "voltage_mv")
    freq = _as_array(freq_hz, n, "freq_hz")
    act = _as_array(activity, n, "activity")
    mem = _as_array(memory_utilization, n, "memory_utilization")
    mult = _as_array(leakage_multiplier, n, "leakage_multiplier")
    if np.any(voltage <= 0):
        raise ConfigurationError("voltage must be positive")
    if np.any(act < 0):
        raise ConfigurationError("activity must be non-negative")
    if np.any((mem < 0.0) | (mem > 1.0)):
        raise ConfigurationError("memory_utilization must be in [0, 1]")
    if np.any(mult <= 0):
        raise ConfigurationError("leakage multiplier must be positive")

    core_active = np.zeros((n, spec.n_cores), dtype=bool)
    pmd_active = np.zeros((n, spec.n_pmds), dtype=bool)
    for i, cores in enumerate(active_core_sets):
        for core in cores:
            core_active[i, int(core)] = True
            pmd_active[i, spec.pmd_of_core(int(core))] = True

    vr = voltage / spec.nominal_voltage_mv
    vr2 = _scalar_pow_by_unique(vr, 2)
    fr = freq / spec.fmax_hz

    # Dynamic power, accumulated core by core in the scalar order
    # (np.sum's pairwise reduction would round differently).
    base_dyn = params.core_dyn_max_w * vr2 * fr
    idle = params.idle_activity
    gated_idle = idle * params.gate_factor
    dynamic = np.zeros(n, dtype=np.float64)
    for core in range(spec.n_cores):
        pmd = spec.pmd_of_core(core)
        core_act = np.where(
            core_active[:, core],
            act,
            np.where(pmd_active[:, pmd], idle, gated_idle),
        )
        dynamic = dynamic + base_dyn * core_act

    core_leak = params.core_leak_w * _scalar_pow_by_unique(
        vr, params.leak_exponent
    )
    leakage = spec.n_cores * core_leak * mult

    base_pmd = params.pmd_overhead_w * vr2 * fr
    pmd_overhead = np.zeros(n, dtype=np.float64)
    for pmd in range(spec.n_pmds):
        scale = np.where(pmd_active[:, pmd], 1.0, params.gate_factor)
        pmd_overhead = pmd_overhead + base_pmd * scale

    share = params.uncore_dynamic_share
    level = (1.0 - share) + share * mem
    if params.uncore_on_rail:
        level = level * vr2
    uncore = params.uncore_w * level

    external = np.full(n, params.external_w, dtype=np.float64)
    total = dynamic + leakage + pmd_overhead + uncore + external
    return PowerGrid(
        dynamic_w=dynamic,
        leakage_w=leakage,
        pmd_overhead_w=pmd_overhead,
        uncore_w=uncore,
        external_w=external,
        total_w=total,
    )
