"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so
client code can catch the whole family with a single ``except`` clause.
Fault-model exceptions (:class:`VoltageFault` and its subclasses) model the
abnormal behaviours the paper observes when a chip operates below its safe
Vmin (Section III.B): silent data corruptions, crashes, hangs and process
timeouts.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class ConfigurationError(ReproError):
    """An invalid platform, workload or policy configuration was requested."""


class VoltageRangeError(ConfigurationError):
    """A voltage outside the regulator's supported range was requested."""


class FrequencyRangeError(ConfigurationError):
    """A frequency outside the chip's supported range was requested."""


class PlacementError(ReproError):
    """The placement engine could not satisfy an allocation request."""


class SchedulingError(ReproError):
    """The scheduler could not find cores for a runnable process."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class CharacterizationError(ReproError):
    """A Vmin characterization campaign was misconfigured."""


class VoltageFault(ReproError):
    """Base class for abnormal behaviours below the safe Vmin.

    The paper (Section III.A) counts a voltage level as *unsafe* when any
    of these behaviours occurs: hardware error notifications, silent data
    corruptions, process timeouts, system crashes or thread hangs.
    """

    #: Short machine-readable tag used in characterization reports.
    kind = "fault"

    def __init__(self, voltage_mv: float, message: str = ""):
        self.voltage_mv = voltage_mv
        text = message or (
            f"{self.kind} at {voltage_mv:.0f} mV (below safe Vmin)"
        )
        super().__init__(text)


class SilentDataCorruption(VoltageFault):
    """Program completed but produced a wrong result (SDC)."""

    kind = "sdc"


class SystemCrash(VoltageFault):
    """The whole system crashed and must be power-cycled."""

    kind = "crash"


class ThreadHang(VoltageFault):
    """One or more threads hung; the run never completes."""

    kind = "hang"


class ProcessTimeout(VoltageFault):
    """The process exceeded its timeout budget."""

    kind = "timeout"
