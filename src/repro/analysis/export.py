"""CSV export for downstream plotting pipelines.

Every experiment renders plain-text tables for the terminal; these
helpers write the same data as CSV so the figures can be re-plotted with
any external tool (the repository itself stays plotting-library-free).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, Sequence, Union

from ..errors import ConfigurationError
from ..sim.tracing import TimelineTrace

PathLike = Union[str, Path]


def write_csv(
    path: PathLike,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write one table as CSV; returns the written path."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise ConfigurationError(
                    f"row width {len(row)} != header width {len(headers)}"
                )
            writer.writerow(row)
    return target


def trace_to_csv(path: PathLike, trace: TimelineTrace) -> Path:
    """Export a run's timeline trace (Figs. 14/15 source data)."""
    return write_csv(
        path,
        (
            "time_s",
            "power_w",
            "busy_cores",
            "running_processes",
            "cpu_intensive",
            "memory_intensive",
            "voltage_mv",
            "mean_active_freq_hz",
        ),
        (
            (
                s.time_s,
                s.power_w,
                s.busy_cores,
                s.running_processes,
                s.cpu_intensive,
                s.memory_intensive,
                s.voltage_mv,
                s.mean_active_freq_hz,
            )
            for s in trace.samples
        ),
    )


def series_to_csv(
    path: PathLike,
    pairs: Iterable[Sequence[object]],
    x_label: str = "x",
    y_label: str = "y",
) -> Path:
    """Export an (x, y) series."""
    return write_csv(path, (x_label, y_label), pairs)
