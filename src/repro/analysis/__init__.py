"""Analysis helpers: statistics and plain-text table rendering."""

from .export import series_to_csv, trace_to_csv, write_csv
from .stats import (
    compare_to_paper,
    geometric_mean,
    mean,
    relative_error,
    span,
    within,
)
from .tables import format_series, format_table

__all__ = [
    "compare_to_paper",
    "format_series",
    "format_table",
    "geometric_mean",
    "series_to_csv",
    "trace_to_csv",
    "write_csv",
    "mean",
    "relative_error",
    "span",
    "within",
]
