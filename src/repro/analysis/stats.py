"""Small statistics helpers used across experiments and tests."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List

from ..errors import ConfigurationError


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    data = list(values)
    if not data:
        raise ConfigurationError("geometric mean of empty sequence")
    if any(v <= 0 for v in data):
        raise ConfigurationError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in data) / len(data))


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean."""
    data = list(values)
    if not data:
        raise ConfigurationError("mean of empty sequence")
    return sum(data) / len(data)


def span(values: Iterable[float]) -> float:
    """max - min of a sequence."""
    data = list(values)
    if not data:
        raise ConfigurationError("span of empty sequence")
    return max(data) - min(data)


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / |reference|."""
    if reference == 0:
        raise ConfigurationError("reference must be non-zero")
    return abs(measured - reference) / abs(reference)


def within(measured: float, reference: float, tolerance: float) -> bool:
    """True when measured is within ``tolerance`` (relative) of reference."""
    return relative_error(measured, reference) <= tolerance


def compare_to_paper(
    measured: Dict[str, float],
    paper: Dict[str, float],
) -> List[Dict[str, float]]:
    """Side-by-side comparison rows for EXPERIMENTS.md-style reports."""
    rows = []
    for key in paper:
        if key not in measured:
            raise ConfigurationError(f"missing measurement for {key!r}")
        rows.append(
            {
                "metric": key,
                "paper": paper[key],
                "measured": measured[key],
                "rel_err": relative_error(measured[key], paper[key])
                if paper[key]
                else 0.0,
            }
        )
    return rows
