"""Plain-text rendering of experiment tables and series.

Every experiment module renders through these helpers so the benchmark
harness and the CLI print the paper's tables and figure-series in one
consistent format.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from ..errors import ConfigurationError


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned ASCII table."""
    str_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ConfigurationError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)).rstrip()
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip()
        )
    return "\n".join(lines)


def format_series(
    name: str,
    pairs: Iterable[Sequence[object]],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render an (x, y) series as a two-column table."""
    return format_table((x_label, y_label), pairs, title=name)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e6 or magnitude < 1e-3:
            return f"{value:.3e}"
        if magnitude >= 100:
            return f"{value:.1f}"
        return f"{value:.3g}"
    return str(value)
