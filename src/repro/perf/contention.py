"""Shared-resource contention primitives (Sections IV.B, Fig. 8).

Two sharing effects shape the paper's results:

* **memory-bandwidth contention** — all cores share the L3/DRAM path;
  when the sum of the running threads' bandwidth demands exceeds what
  the memory system sustains, every thread's memory-stall time inflates
  proportionally. This is what collapses CG/FT under full-chip
  multiprogramming in Fig. 8 while leaving namd/EP untouched;
* **L2 sharing inside a PMD** — the two cores of a PMD share a 256 KB
  L2, so *clustered* allocations slow memory-sensitive programs down
  relative to *spreaded* ones (the Fig. 7 trade-off).
"""

from __future__ import annotations

from typing import Iterable

from ..errors import ConfigurationError
from ..platform.specs import ChipSpec

#: Maximum memory-time inflation from sharing a PMD's L2 (reached at
#: ``l2_sensitivity == 1``). Calibrated against Fig. 7's -10..+14 % span.
L2_SHARING_PENALTY = 0.60

#: Dynamic-activity factor of a core while stalled on memory, relative
#: to its compute-phase activity. These cores do not aggressively
#: clock-gate stalled pipelines, so a waiting core still toggles a large
#: share of its clock tree and window logic.
STALL_ACTIVITY = 0.50


def l2_sharing_factor(l2_sensitivity: float, shares_pmd: bool) -> float:
    """Memory-time multiplier for one thread's L2-sharing situation."""
    if not 0.0 <= l2_sensitivity <= 1.0:
        raise ConfigurationError("l2_sensitivity must be in [0, 1]")
    if not shares_pmd:
        return 1.0
    return 1.0 + L2_SHARING_PENALTY * l2_sensitivity


def bandwidth_capacity_gbs(spec: ChipSpec) -> float:
    """Sustainable memory bandwidth of the chip, GB/s."""
    return spec.memory_bandwidth_bps / 1e9


def contention_factor(
    spec: ChipSpec, demands_gbs: Iterable[float]
) -> float:
    """Memory-time inflation when demands exceed the chip's bandwidth.

    Demands are the *uncontended* per-thread bandwidth needs; when their
    sum stays within capacity nothing inflates (factor 1.0), beyond it
    every thread's memory time stretches by the oversubscription ratio.
    """
    total = 0.0
    for demand in demands_gbs:
        if demand < 0:
            raise ConfigurationError("bandwidth demand must be >= 0")
        total += demand
    capacity = bandwidth_capacity_gbs(spec)
    if capacity <= 0:
        raise ConfigurationError(f"{spec.name}: no memory bandwidth")
    return max(1.0, total / capacity)


def bandwidth_utilization(
    spec: ChipSpec, demands_gbs: Iterable[float]
) -> float:
    """Fraction of the memory system's capacity in use, clipped to 1."""
    total = sum(demands_gbs)
    return min(1.0, total / bandwidth_capacity_gbs(spec))
