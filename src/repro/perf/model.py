"""Execution-time model under frequency scaling and sharing (Section IV.B).

The paper's performance reasoning rests on one decomposition: a program's
runtime splits into a **core-bound part** (pipeline + L1 + L2), which
scales inversely with the core clock, and a **memory-bound part** (L3 +
DRAM stalls), which does not — the L3 and DRAM live in their own clock
domains. CPU-intensive programs therefore pay the full price of frequency
reduction while memory-intensive programs barely notice it, which is the
lever the daemon pulls.

This module turns a :class:`~repro.workloads.profiles.BenchmarkProfile`
plus an operating point (chip, frequency, thread count, PMD sharing,
contention) into durations, instantaneous execution-state fractions,
PMU-visible L3 rates and effective switching activity. Thread semantics
follow Section II.B: *parallel* programs split one unit of work across N
threads; *replicated* (SPEC) runs execute N full units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..errors import ConfigurationError
from ..platform.specs import ChipSpec
from ..workloads.profiles import REFERENCE_FREQ_HZ, BenchmarkProfile
from .contention import STALL_ACTIVITY, l2_sharing_factor

#: Programmatic overrides of the memory-path slowdown by chip display
#: name. The built-in chips' calibration lives in their declarative
#: bundles (``platform/defs/*.toml``, ``[perf] mem_time_scale``); this
#: dict takes precedence over the bundle registry.
MEM_TIME_SCALE: Dict[str, float] = {}
_DEFAULT_MEM_SCALE = 1.0


def mem_time_scale(spec: ChipSpec) -> float:
    """Memory-path slowdown of a chip relative to the reference."""
    override = MEM_TIME_SCALE.get(spec.name)
    if override is not None:
        return override
    from ..platform.registry import model_for_spec

    model = model_for_spec(spec)
    if model is not None:
        return model.perf.mem_time_scale
    return _DEFAULT_MEM_SCALE


@dataclass(frozen=True)
class ThreadWork:
    """Work assigned to one thread of a job.

    ``cpu_cycles`` is frequency-invariant; ``mem_time_s`` is already
    scaled to the target chip's memory path but *not* yet inflated by
    L2 sharing or bandwidth contention (those depend on runtime state).
    """

    cpu_cycles: float
    mem_time_s: float
    l3_accesses: float


def thread_work(
    profile: BenchmarkProfile, spec: ChipSpec, nthreads: int
) -> ThreadWork:
    """Per-thread work of a job with ``nthreads`` threads on ``spec``.

    Parallel programs divide one unit of work (imperfectly, per the
    profile's parallel efficiency); replicated programs give every
    instance a full unit. L3 accesses follow the same split.
    """
    if nthreads < 1:
        raise ConfigurationError("nthreads must be >= 1")
    solo_cycles = profile.ref_time_s * REFERENCE_FREQ_HZ
    accesses = profile.l3_rate_per_mcycles * solo_cycles / 1e6
    cpu_cycles = profile.cpu_cycles
    mem_s = profile.mem_time_s * mem_time_scale(spec)
    if profile.parallel and nthreads > 1:
        share = 1.0 / (nthreads * profile.parallel_efficiency)
        return ThreadWork(
            cpu_cycles=cpu_cycles * share,
            mem_time_s=mem_s * share,
            l3_accesses=accesses * share,
        )
    return ThreadWork(
        cpu_cycles=cpu_cycles, mem_time_s=mem_s, l3_accesses=accesses
    )


def solo_slowdown(
    profile: BenchmarkProfile, spec: ChipSpec, freq_hz: float
) -> float:
    """Single-thread slowdown at ``freq_hz`` vs the reference point.

    Only the core-bound part stretches with a slower clock; this is the
    decomposition behind Figs. 11/12's CPU- vs memory-intensive split.
    """
    if freq_hz <= 0:
        raise ConfigurationError("freq_hz must be positive")
    return (
        profile.cpu_fraction * (REFERENCE_FREQ_HZ / freq_hz)
        + profile.mem_fraction * mem_time_scale(spec)
    )


def bandwidth_demand_gbs(
    profile: BenchmarkProfile, spec: ChipSpec, freq_hz: float
) -> float:
    """Uncontended bandwidth demand of one running thread at ``freq_hz``.

    A fixed number of bytes moves per unit of work; a slower clock
    stretches the run, thinning the demand proportionally. (Per-thread
    demand is thread-count-invariant for parallel programs: 1/N of the
    bytes in 1/N of the time.)
    """
    return profile.bandwidth_gbs / solo_slowdown(profile, spec, freq_hz)


@dataclass(frozen=True)
class ExecutionState:
    """Instantaneous execution state of one thread at an operating point."""

    #: Wall seconds to finish the thread's whole work if this state held.
    duration_s: float
    #: Fraction of wall time spent in the core-bound part.
    cpu_share: float
    #: PMU-visible L3 accesses per million cycles in this state.
    l3_rate_per_mcycles: float
    #: Effective switching activity (drives dynamic power and droops).
    effective_activity: float

    @property
    def mem_share(self) -> float:
        """Fraction of wall time stalled on the lower memory hierarchy."""
        return 1.0 - self.cpu_share


def execution_state(
    profile: BenchmarkProfile,
    spec: ChipSpec,
    freq_hz: float,
    nthreads: int = 1,
    shares_pmd: bool = False,
    contention: float = 1.0,
) -> ExecutionState:
    """Evaluate one thread's execution state at an operating point.

    ``contention`` is the chip-wide memory-time inflation factor
    (:func:`~repro.perf.contention.contention_factor`); ``shares_pmd``
    says whether the thread's PMD sibling core is also busy (clustered
    allocations and full-chip runs).
    """
    if freq_hz <= 0:
        raise ConfigurationError("freq_hz must be positive")
    if contention < 1.0:
        raise ConfigurationError("contention factor cannot be below 1")
    work = thread_work(profile, spec, nthreads)
    cpu_s = work.cpu_cycles / freq_hz
    mem_s = (
        work.mem_time_s
        * l2_sharing_factor(profile.l2_sensitivity, shares_pmd)
        * contention
    )
    duration = cpu_s + mem_s
    cpu_share = cpu_s / duration if duration > 0 else 1.0
    cycles = freq_hz * duration
    l3_rate = 1e6 * work.l3_accesses / cycles if cycles > 0 else 0.0
    effective_activity = profile.activity * (
        cpu_share + STALL_ACTIVITY * (1.0 - cpu_share)
    )
    return ExecutionState(
        duration_s=duration,
        cpu_share=cpu_share,
        l3_rate_per_mcycles=l3_rate,
        effective_activity=effective_activity,
    )


def job_duration_s(
    profile: BenchmarkProfile,
    spec: ChipSpec,
    freq_hz: float,
    nthreads: int = 1,
    shares_pmd: bool = False,
    contention: float = 1.0,
) -> float:
    """Wall-clock duration of a whole job at a fixed operating point.

    All threads of a homogeneous job finish together (same per-thread
    work, same state), so the job duration equals the thread duration.
    """
    return execution_state(
        profile, spec, freq_hz, nthreads, shares_pmd, contention
    ).duration_s


def multi_instance_performance_ratio(
    profile: BenchmarkProfile, spec: ChipSpec, freq_hz: Optional[int] = None
) -> float:
    """Fig. 8 metric: solo time divided by time under full-chip copies.

    Runs one instance per core (replicated semantics even for parallel
    programs, matching the paper's "multiple copies of the same program
    on all cores" protocol) and reports T(1 instance) / T(N instances).
    Memory-intensive programs land well below 1; CPU-intensive programs
    stay near 1.
    """
    from .contention import contention_factor  # local to avoid cycle noise

    freq = freq_hz if freq_hz is not None else spec.fmax_hz
    solo = execution_state(profile, spec, freq, nthreads=1).duration_s
    demand = bandwidth_demand_gbs(profile, spec, freq)
    crowd = contention_factor(spec, [demand] * spec.n_cores)
    crowded = execution_state(
        profile,
        spec,
        freq,
        nthreads=1,
        shares_pmd=True,
        contention=crowd,
    ).duration_s
    return solo / crowded
