"""Performance substrate: frequency scaling, thread semantics, contention."""

from .contention import (
    L2_SHARING_PENALTY,
    STALL_ACTIVITY,
    bandwidth_capacity_gbs,
    bandwidth_utilization,
    contention_factor,
    l2_sharing_factor,
)
from .model import (
    MEM_TIME_SCALE,
    ExecutionState,
    ThreadWork,
    bandwidth_demand_gbs,
    execution_state,
    job_duration_s,
    mem_time_scale,
    multi_instance_performance_ratio,
    solo_slowdown,
    thread_work,
)

__all__ = [
    "ExecutionState",
    "L2_SHARING_PENALTY",
    "MEM_TIME_SCALE",
    "STALL_ACTIVITY",
    "ThreadWork",
    "bandwidth_capacity_gbs",
    "bandwidth_demand_gbs",
    "bandwidth_utilization",
    "contention_factor",
    "execution_state",
    "job_duration_s",
    "l2_sharing_factor",
    "mem_time_scale",
    "multi_instance_performance_ratio",
    "solo_slowdown",
    "thread_work",
]
