"""Benches for the extension studies: chip variation, phases, capping."""

from repro.policies.daemon import OnlineMonitoringDaemon
from repro.policies.powercap import CappedDaemonPolicy, PowerCapPolicy
from repro.experiments import variation_study
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.sim.system import ServerSystem
from repro.workloads.generator import (
    JobSpec,
    ServerWorkloadGenerator,
    Workload,
)

from conftest import run_once


def test_variation_study(benchmark):
    """Chip-to-chip variation + the golden-die deployment trap."""
    result = run_once(
        benchmark,
        variation_study.run,
        "xgene2",
        seeds=(0, 3, 5),
        duration_s=1800.0,
        workload_seed=3,
    )
    assert result.own_table_always_safe()
    assert result.foreign_table_unsafe_chips() >= 1
    benchmark.extra_info["single_core_spread_mv"] = round(
        result.single_core_spread_mv(), 1
    )
    benchmark.extra_info["full_chip_spread_mv"] = round(
        result.full_chip_spread_mv(), 1
    )
    benchmark.extra_info["golden_die_unsafe_on"] = (
        result.foreign_table_unsafe_chips()
    )


def test_phased_workload_tracking(benchmark):
    """The daemon tracking phase changes (Fig. 13 case b)."""
    spec = xgene2_spec()
    workload = Workload(
        jobs=(
            JobSpec(0, "setup-then-crunch", 2, 0.0),
            JobSpec(1, "stream-compute", 1, 10.0),
            JobSpec(2, "sawtooth", 2, 20.0),
        ),
        duration_s=900.0,
        max_cores=8,
        seed=0,
    )

    def run():
        daemon = OnlineMonitoringDaemon(spec)
        result = ServerSystem(Chip(spec), workload, daemon).run()
        return result, daemon

    result, daemon = run_once(benchmark, run)
    assert result.violations == []
    assert daemon.retunes >= 4  # several phase transitions tracked
    benchmark.extra_info["retunes"] = daemon.retunes
    benchmark.extra_info["violations"] = len(result.violations)


def test_power_capping(benchmark):
    """RAPL-style capping vs the budget-aware daemon."""
    spec = xgene3_spec()
    workload = ServerWorkloadGenerator(max_cores=32, seed=9).generate(
        900.0
    )
    cap_w = 28.0

    def run():
        capped = ServerSystem(
            Chip(spec), workload, PowerCapPolicy(spec, cap_w)
        ).run()
        smart = ServerSystem(
            Chip(spec), workload, CappedDaemonPolicy(spec, cap_w)
        ).run()
        return capped, smart

    capped, smart = run_once(benchmark, run)
    assert smart.energy_j < capped.energy_j
    assert smart.violations == []
    benchmark.extra_info["capped_baseline_energy_j"] = round(
        capped.energy_j
    )
    benchmark.extra_info["capped_daemon_energy_j"] = round(smart.energy_j)
    benchmark.extra_info["daemon_saves_under_budget_pct"] = round(
        100 * (capped.energy_j - smart.energy_j) / capped.energy_j, 1
    )


def test_thermal_margins(benchmark):
    """The ambient sweep: leakage growth and the thermal guard."""
    from repro.experiments import thermal_study

    result = run_once(
        benchmark,
        thermal_study.run,
        "xgene3",
        ambients_c=(15.0, 45.0, 80.0),
        duration_s=600.0,
    )
    assert result.rows[0].violations == 0
    assert result.rows[-1].violations > 0
    benchmark.extra_info["energy_increase_pct"] = round(
        result.energy_increase_pct(), 1
    )
    benchmark.extra_info["first_unsafe_ambient_c"] = (
        result.first_unsafe_ambient_c()
    )
    benchmark.extra_info["guard_needed_mv"] = [
        round(r.guard_needed_mv, 1) for r in result.rows
    ]
