#!/usr/bin/env python
"""Compare a pytest-benchmark run against the committed baseline.

CI machines differ in absolute speed, so raw medians cannot be compared
across hosts. Instead this script normalizes by the *median speed ratio*
across all shared benchmarks — the typical "this host vs the baseline
host" factor — and flags only benchmarks that regressed by more than the
threshold relative to that factor. A uniform slowdown (slower runner)
passes; a single bench that got 30% worse than its peers fails.

Usage:

    # fail CI when any bench regressed >30% vs the committed baseline
    python benchmarks/compare_benchmarks.py compare bench.json \
        --baseline benchmarks/baseline_medians.json

    # refresh the committed baseline from a fresh full run
    python benchmarks/compare_benchmarks.py update bench.json \
        --baseline benchmarks/baseline_medians.json

Both commands accept raw pytest-benchmark ``--benchmark-json`` output;
``update`` strips it down to the committed ``{fullname: median}`` form.
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
from pathlib import Path

#: A bench fails when its median exceeds the host-normalized baseline by
#: more than this factor.
DEFAULT_THRESHOLD = 1.30

#: Benches faster than this are dominated by timer noise; they are
#: reported but never fail the comparison.
MIN_RELIABLE_SECONDS = 1e-4


def load_medians(path: Path) -> dict:
    """Read ``{fullname: median_seconds}`` from either JSON format."""
    data = json.loads(path.read_text())
    if "benchmarks" in data:  # raw pytest-benchmark output
        return {
            bench["fullname"]: bench["stats"]["median"]
            for bench in data["benchmarks"]
        }
    return {name: float(median) for name, median in data["medians"].items()}


def update(current: dict, baseline_path: Path) -> int:
    baseline_path.write_text(
        json.dumps(
            {
                "comment": (
                    "Committed benchmark baseline: median seconds per "
                    "bench. Refresh with "
                    "`python benchmarks/compare_benchmarks.py update`."
                ),
                "medians": dict(sorted(current.items())),
            },
            indent=2,
        )
        + "\n"
    )
    print(f"wrote {len(current)} baseline medians to {baseline_path}")
    return 0


def compare(current: dict, baseline: dict, threshold: float) -> int:
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("error: no benchmarks in common with the baseline")
        return 2
    missing = sorted(set(baseline) - set(current))
    ratios = {name: current[name] / baseline[name] for name in shared}
    host_factor = statistics.median(ratios.values())

    print(f"{len(shared)} shared benchmarks; host speed factor "
          f"{host_factor:.3f}x vs baseline\n")
    failures = []
    for name in shared:
        normalized = ratios[name] / host_factor
        noisy = baseline[name] < MIN_RELIABLE_SECONDS
        flag = " "
        if normalized > threshold:
            flag = "~" if noisy else "!"
            if not noisy:
                failures.append((name, normalized))
        print(f"{flag} {normalized:6.2f}x  {current[name]:12.6f}s  {name}")
    for name in missing:
        print(f"? missing from run: {name}")

    if failures:
        print(f"\nFAIL: {len(failures)} benchmark(s) regressed more than "
              f"{(threshold - 1.0) * 100:.0f}% vs baseline:")
        for name, normalized in failures:
            print(f"  {name}: {normalized:.2f}x")
        return 1
    print(f"\nOK: no benchmark regressed more than "
          f"{(threshold - 1.0) * 100:.0f}% vs baseline")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("command", choices=("compare", "update"))
    parser.add_argument("run_json", type=Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--baseline", type=Path,
                        default=Path(__file__).parent
                        / "baseline_medians.json")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="failure ratio after host normalization "
                             f"(default {DEFAULT_THRESHOLD})")
    args = parser.parse_args(argv)

    current = load_medians(args.run_json)
    if args.command == "update":
        return update(current, args.baseline)
    return compare(current, load_medians(args.baseline), args.threshold)


if __name__ == "__main__":
    sys.exit(main())
