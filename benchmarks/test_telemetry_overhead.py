"""Disabled-telemetry overhead bound on the kernel-layer hot path.

The telemetry fast path is one attribute load plus one branch per
instrumented call site. This bench pins the PR's overhead claim: the
characterization pipeline through the instrumented kernels with
telemetry *disabled* (the default) must run within ``MAX_OVERHEAD`` of
the same pipeline with every telemetry entry point stubbed to a bare
no-op — i.e. the cost of having the instrumentation compiled in is
noise.

This is deliberately a plain timing test (no ``benchmark`` fixture), so
it never contributes rows to ``bench_results.json`` and cannot shift
the committed regression baseline.

When ``TELEMETRY_SNAPSHOT_OUT`` is set (the CI bench-regression job
sets it), one extra enabled pass dumps its metric snapshot there as a
build artifact — a quick look at what the kernels actually record.
"""

from __future__ import annotations

import json
import os
import time

from repro import telemetry
from repro.allocation import Allocation
from repro.platform.specs import xgene2_spec
from repro.units import ghz
from repro.vmin.cache import VminCache
from repro.vmin.characterize import VminCampaign
from repro.workloads.suites import characterization_set

#: Max allowed slowdown of the disabled fast path vs stubbed-out
#: telemetry (1.05 == 5%, the PR's acceptance bound).
MAX_OVERHEAD = 1.05

#: Interleaved timing rounds; the minimum of each side is compared.
ROUNDS = 5


class _NoopContext:
    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return None


_NOOP_CONTEXT = _NoopContext()


def _noop(*args, **kwargs):
    return None


def _noop_span(*args, **kwargs):
    return _NOOP_CONTEXT


def _campaign_inputs():
    """A kernel-heavy pipeline: batch search + scan + pfail curves."""
    spec = xgene2_spec()
    campaign = VminCampaign(
        spec, step_mv=2, cache=VminCache(capacity=0), use_kernels=True
    )
    pool = characterization_set()
    points = [
        campaign.point(
            profile.name,
            nthreads,
            allocation,
            freq_hz,
            workload_delta_mv=profile.vmin_delta_mv,
        )
        for nthreads, allocation in (
            (spec.n_cores, Allocation.CLUSTERED),
            (spec.n_cores // 2, Allocation.SPREADED),
        )
        for freq_hz in (ghz(2.4), ghz(1.2), ghz(0.9))
        for profile in pool
    ]
    axis = range(spec.nominal_voltage_mv, spec.min_voltage_mv - 1, -1)
    return campaign, points, axis


def _pipeline(campaign, points, axis):
    searches = campaign.measure_safe_vmin_batch(points)
    campaign.scan_unsafe_region_batch(
        points,
        safe_vmins_mv=[search.safe_vmin_mv for search in searches],
    )
    campaign.pfail_curves(points, axis)
    return searches


def _best_of(fn, rounds=1):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_disabled_telemetry_overhead_under_bound(monkeypatch):
    campaign, points, axis = _campaign_inputs()
    run = lambda: _pipeline(campaign, points, axis)  # noqa: E731

    # Warm both paths (numpy dispatch, memo tables) before timing.
    run()

    telemetry.disable()
    stubbed_s = float("inf")
    disabled_s = float("inf")
    # Interleave the two variants so clock drift hits both equally.
    for _ in range(ROUNDS):
        with monkeypatch.context() as patch:
            patch.setattr(telemetry, "inc", _noop)
            patch.setattr(telemetry, "observe", _noop)
            patch.setattr(telemetry, "set_gauge", _noop)
            patch.setattr(telemetry, "span", _noop_span)
            stubbed_s = min(stubbed_s, _best_of(run))
        disabled_s = min(disabled_s, _best_of(run))

    overhead = disabled_s / stubbed_s
    print(
        f"telemetry overhead: disabled {disabled_s:.4f}s vs "
        f"stubbed {stubbed_s:.4f}s ({(overhead - 1.0) * 100.0:+.2f}%)"
    )
    assert overhead < MAX_OVERHEAD, (
        f"disabled-telemetry fast path costs {(overhead - 1.0) * 100.0:.1f}%"
        f" on the kernel pipeline (bound: {(MAX_OVERHEAD - 1.0) * 100.0:.0f}%)"
    )


def test_enabled_pass_records_kernel_metrics(tmp_path):
    """Enabled telemetry sees the kernel batches; optional CI artifact."""
    campaign, points, axis = _campaign_inputs()
    with telemetry.session() as registry:
        _pipeline(campaign, points, axis)
        snapshot = registry.snapshot()
    batches = snapshot["histograms"].get(
        telemetry.names.KERNELS_VMIN_BATCH, {"count": 0}
    )
    assert batches["count"] > 0
    out = os.environ.get("TELEMETRY_SNAPSHOT_OUT")
    if out:
        with open(out, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
