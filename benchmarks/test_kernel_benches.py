"""Regression benches for the vectorized kernel layer.

The campaign bench pins the PR's headline claim: a cold (cache-less)
characterization pipeline through :mod:`repro.kernels` must run at
least 5x faster than the scalar reference loops it replaced — and
return identical results. The pipeline is what a cold ``run-all``
actually executes per platform: the safe-Vmin search and unsafe-region
scan of every Fig. 3/4 point, the Fig. 5 pfail curves, and the
worst-case policy-table sweep — at a denser-than-default protocol
(2 mV search steps, 1 mV curve axis, full 25-benchmark pool) so the
scalar baseline is long enough to time reliably.
"""

import time

from repro.allocation import Allocation, cores_for
from repro.experiments.energy_runner import EnergyRunner
from repro.kernels import safe_vmin_matrix
from repro.platform.specs import xgene2_spec
from repro.units import ghz
from repro.vmin.cache import VminCache
from repro.vmin.characterize import VminCampaign
from repro.workloads.suites import characterization_set

from conftest import run_once

#: Dense campaign protocol shared by the scalar and vectorized runs.
BENCH_STEP_MV = 2
BENCH_FREQS = (ghz(2.4), ghz(1.2), ghz(0.9))
#: Minimum cold-pipeline speedup the kernels must deliver.
MIN_CAMPAIGN_SPEEDUP = 5.0


def _bench_campaign(spec, use_kernels):
    """Fresh cache-less campaign plus the full Fig. 3-style point list."""
    campaign = VminCampaign(
        spec,
        step_mv=BENCH_STEP_MV,
        cache=VminCache(capacity=0),
        use_kernels=use_kernels,
    )
    pool = characterization_set()
    points = []
    for nthreads in (spec.n_cores, spec.n_cores // 2):
        allocation = (
            Allocation.CLUSTERED
            if nthreads == spec.n_cores
            else Allocation.SPREADED
        )
        for freq_hz in BENCH_FREQS:
            for profile in pool:
                points.append(
                    campaign.point(
                        profile.name,
                        nthreads,
                        allocation,
                        freq_hz,
                        workload_delta_mv=profile.vmin_delta_mv,
                    )
                )
    return campaign, points


def _sweep_inputs(spec):
    """Policy-style worst-case sweep: every config x workload delta."""
    core_sets = [
        cores_for(spec, nthreads, allocation)
        for nthreads in range(1, spec.n_cores + 1)
        for allocation in (Allocation.CLUSTERED, Allocation.SPREADED)
    ]
    deltas = [p.vmin_delta_mv for p in characterization_set()]
    return core_sets, deltas


def _curve_axis(spec):
    return range(spec.nominal_voltage_mv, spec.min_voltage_mv - 1, -1)


def _run_scalar_pipeline(campaign, points):
    spec = campaign.spec
    searches = [campaign._measure_safe_vmin_scalar(point) for point in points]
    scans = [
        campaign._scan_unsafe_region_scalar(
            point, safe_vmin_mv=search.safe_vmin_mv
        )
        for point, search in zip(points, searches)
    ]
    axis = _curve_axis(spec)
    curves = [campaign.pfail_curve(point, axis) for point in points]
    core_sets, deltas = _sweep_inputs(spec)
    model = campaign.vmin_model
    sweep = [
        [
            [model.safe_vmin_mv(freq_hz, cores, delta) for delta in deltas]
            for cores in core_sets
        ]
        for freq_hz in spec.frequency_steps()
    ]
    return searches, scans, curves, sweep


def _run_vectorized_pipeline(campaign, points):
    spec = campaign.spec
    searches = campaign.measure_safe_vmin_batch(points)
    scans = campaign.scan_unsafe_region_batch(
        points,
        safe_vmins_mv=[search.safe_vmin_mv for search in searches],
    )
    curves = campaign.pfail_curves(points, _curve_axis(spec))
    core_sets, deltas = _sweep_inputs(spec)
    sweep = [
        safe_vmin_matrix(campaign.vmin_model, freq_hz, core_sets, deltas)
        for freq_hz in spec.frequency_steps()
    ]
    return searches, scans, curves, sweep


def test_cold_characterization_campaign_vectorized(benchmark, spec2):
    """Cold characterization pipeline through the kernels vs scalar loops."""
    scalar_campaign, points = _bench_campaign(spec2, use_kernels=False)
    kernel_campaign, _ = _bench_campaign(spec2, use_kernels=True)
    # Untimed warmup of both paths (imports, numpy ufunc dispatch and
    # adaptive-interpreter specialization all land on the first pass),
    # then best-of-3 timings so one scheduler hiccup cannot skew the
    # recorded ratio.
    _run_scalar_pipeline(scalar_campaign, points)
    _run_vectorized_pipeline(kernel_campaign, points)
    scalar_s = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        ref_searches, ref_scans, ref_curves, ref_sweep = (
            _run_scalar_pipeline(scalar_campaign, points)
        )
        scalar_s = min(scalar_s, time.perf_counter() - start)

    timing = {"seconds": float("inf")}

    def vectorized():
        start = time.perf_counter()
        result = _run_vectorized_pipeline(kernel_campaign, points)
        timing["seconds"] = min(
            timing["seconds"], time.perf_counter() - start
        )
        return result

    searches, scans, curves, sweep = benchmark.pedantic(
        vectorized, rounds=3, iterations=1
    )

    assert [s.safe_vmin_mv for s in searches] == [
        s.safe_vmin_mv for s in ref_searches
    ]
    assert [s.crash_voltage_mv for s in scans] == [
        s.crash_voltage_mv for s in ref_scans
    ]
    assert curves == ref_curves
    assert [m.tolist() for m in sweep] == ref_sweep
    speedup = scalar_s / timing["seconds"]
    benchmark.extra_info["points"] = len(searches)
    benchmark.extra_info["step_mv"] = BENCH_STEP_MV
    benchmark.extra_info["scalar_seconds"] = round(scalar_s, 4)
    benchmark.extra_info["vectorized_seconds"] = round(
        timing["seconds"], 4
    )
    benchmark.extra_info["speedup_vs_scalar"] = round(speedup, 2)
    assert speedup >= MIN_CAMPAIGN_SPEEDUP


def test_cold_characterization_campaign_scalar_reference(benchmark, spec2):
    """The scalar pipeline itself, kept as the comparison baseline."""
    campaign, points = _bench_campaign(spec2, use_kernels=False)
    searches, scans, curves, sweep = run_once(
        benchmark, _run_scalar_pipeline, campaign, points
    )
    benchmark.extra_info["points"] = len(searches)
    benchmark.extra_info["step_mv"] = BENCH_STEP_MV
    assert len(scans) == len(searches) == len(curves)
    assert len(sweep) == len(campaign.spec.frequency_steps())


def test_energy_measure_batch_grid(benchmark, spec2):
    """One-call energy sweep over the thread x allocation x freq grid."""
    spec = spec2
    configs = [
        (nthreads, allocation, freq_hz)
        for nthreads in range(1, spec.n_cores + 1)
        for allocation in (Allocation.CLUSTERED, Allocation.SPREADED)
        for freq_hz in BENCH_FREQS
    ]
    pool = characterization_set()

    def batched():
        runner = EnergyRunner(spec, cache=VminCache(capacity=0))
        return [
            runner.measure_batch(profile, configs) for profile in pool
        ]

    grids = run_once(benchmark, batched)

    # Cold per-config loop for the recorded speedup (same runner class,
    # scalar entry point, fresh cache so nothing is amortized).
    start = time.perf_counter()
    runner = EnergyRunner(spec, cache=VminCache(capacity=0))
    scalar = [
        [runner.measure(profile, *config) for config in configs]
        for profile in pool
    ]
    scalar_s = time.perf_counter() - start

    assert [
        [m.energy_j for m in row] for row in grids
    ] == [[m.energy_j for m in row] for row in scalar]
    benchmark.extra_info["configs"] = len(configs)
    benchmark.extra_info["benchmarks"] = len(pool)
    benchmark.extra_info["scalar_seconds"] = round(scalar_s, 4)
    benchmark.extra_info["measurements"] = len(pool) * len(configs)


def test_policy_table_from_characterization(benchmark):
    """Policy-table construction (batched safe-Vmin matrix underneath)."""
    from repro.core.policy import VminPolicyTable
    from repro.vmin.cache import get_default_cache, set_default_cache

    previous = get_default_cache()
    set_default_cache(VminCache(capacity=0))
    try:
        table = run_once(
            benchmark, VminPolicyTable.from_characterization, xgene2_spec()
        )
    finally:
        set_default_cache(previous)
    assert table is not None


def test_platform_registry_resolution(benchmark):
    """Declarative-bundle resolution across every consumer model layer.

    Registry lookups happen once per model construction — outside the
    kernel hot loops — so a cold resolve of every registered platform
    through every consumer (Vmin, power, droop, faults, thermal) must
    stay cheap. New in the registry PR: no committed baseline entry,
    the bench records the cost going forward.
    """
    from repro.platform.registry import get_platform, platform_keys
    from repro.platform.thermal import ThermalModel
    from repro.power.model import PowerModel
    from repro.vmin.droop import DroopModel
    from repro.vmin.faults import FaultModel
    from repro.vmin.model import VminModel

    def resolve_all():
        models = []
        for key in platform_keys():
            spec = get_platform(key).spec
            models.append(
                (
                    VminModel(spec),
                    PowerModel(spec),
                    DroopModel(spec),
                    FaultModel(spec=spec),
                    ThermalModel(spec),
                )
            )
        return models

    models = benchmark(resolve_all)
    assert len(models) == len(platform_keys())
