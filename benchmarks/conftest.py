"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one paper table/figure, asserts its shape
against the paper's claims, and attaches the measured headline numbers to
``benchmark.extra_info`` so the JSON output doubles as a
paper-vs-measured record (summarised in EXPERIMENTS.md).
"""

from __future__ import annotations

import pytest

from repro.core.policy import VminPolicyTable
from repro.platform.specs import xgene2_spec, xgene3_spec

#: Workload length used by the evaluation benches. The paper runs one
#: hour; these benches default to a quarter hour so the whole harness
#: stays in CI budgets while preserving the savings structure. Override
#: with the full 3600 s for the EXPERIMENTS.md numbers.
EVALUATION_DURATION_S = 900.0
EVALUATION_SEED = 42


@pytest.fixture(scope="session")
def spec2():
    """X-Gene 2 spec."""
    return xgene2_spec()


@pytest.fixture(scope="session")
def spec3():
    """X-Gene 3 spec."""
    return xgene3_spec()


@pytest.fixture(scope="session")
def policy2():
    """Characterization-backed policy table for X-Gene 2."""
    return VminPolicyTable.from_characterization(xgene2_spec())


@pytest.fixture(scope="session")
def policy3():
    """Characterization-backed policy table for X-Gene 3."""
    return VminPolicyTable.from_characterization(xgene3_spec())


def run_once(benchmark, func, *args, **kwargs):
    """Benchmark an expensive regenerator with a single round."""
    return benchmark.pedantic(
        func, args=args, kwargs=kwargs, rounds=1, iterations=1
    )
