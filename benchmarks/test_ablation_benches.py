"""Ablation benches for the design choices DESIGN.md calls out.

Each ablation replays the same generated workload under policy variants
and records the energy/safety consequences in ``extra_info``.
"""

import pytest

from repro.core.classifier import L3RateClassifier
from repro.policies.daemon import OnlineMonitoringDaemon
from repro.core.placement import PlacementEngine
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.policies.governors import BaselinePolicy
from repro.sim.system import ServerSystem
from repro.units import ghz
from repro.workloads.generator import ServerWorkloadGenerator

DURATION_S = 900.0
SEED = 42


@pytest.fixture(scope="module")
def workload2():
    return ServerWorkloadGenerator(max_cores=8, seed=SEED).generate(
        DURATION_S
    )


@pytest.fixture(scope="module")
def workload3():
    return ServerWorkloadGenerator(max_cores=32, seed=SEED).generate(
        DURATION_S
    )


def replay(spec, workload, controller):
    chip = Chip(spec)
    return ServerSystem(chip, workload, controller).run()


class PredictorPolicy:
    """A daemon policy backed by the regression Vmin predictor.

    Models the literature's prediction schemes the paper rejects
    (Section VI.A): at decision time the predictor does not know which
    program will run, so it predicts for a typical profile — and its
    tail error becomes undervolting.
    """

    def __init__(self, spec, predictor, guard_mv: int = 0):
        from repro.workloads.suites import get_benchmark

        self.spec = spec
        self.predictor = predictor
        self.guard_mv = guard_mv
        self._typical = get_benchmark("gcc")

    def safe_voltage_mv(self, utilized_pmds: int, freq_hz: int) -> int:
        from repro.allocation import Allocation, cores_for

        nthreads = min(
            self.spec.n_cores,
            max(1, utilized_pmds) * self.spec.cores_per_pmd,
        )
        cores = cores_for(self.spec, nthreads, Allocation.CLUSTERED)
        predicted = self.predictor.predict_mv(
            cores,
            self.spec.nearest_frequency(freq_hz),
            self._typical,
            self.guard_mv,
        )
        bounded = min(float(self.spec.nominal_voltage_mv), predicted)
        return int(max(self.spec.min_voltage_mv, round(bounded)))


def test_ablation_failsafe(benchmark, policy2, workload2):
    """Fail-safe measured table vs regression Vmin prediction.

    The paper's argument: predictors "are error-prone and can lead to
    system failures in real microprocessors". The fitted least-squares
    predictor is accurate on average but undervolts on its error tail;
    the measured table never does.
    """
    from repro.vmin.model import VminModel
    from repro.vmin.prediction import VminPredictor

    spec = xgene2_spec()

    def run_both():
        safe = replay(
            spec, workload2, OnlineMonitoringDaemon(spec, policy=policy2)
        )
        model = VminModel(spec)
        predictor = VminPredictor(spec)
        predictor.fit(
            predictor.sample_configurations(model, fraction=0.4, seed=1)
        )
        predictive_policy = PredictorPolicy(spec, predictor)
        predictive = replay(
            spec,
            workload2,
            OnlineMonitoringDaemon(spec, policy=predictive_policy),
        )
        return safe, predictive, predictor, model

    safe, predictive, predictor, model = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    assert not safe.violations
    assert predictive.violations  # the predictor undervolts
    benchmark.extra_info["failsafe_violations"] = len(safe.violations)
    benchmark.extra_info["predictor_violations"] = len(
        predictive.violations
    )
    benchmark.extra_info["predictor_energy_delta_pct"] = round(
        100 * (safe.energy_j - predictive.energy_j) / predictive.energy_j,
        2,
    )
    benchmark.extra_info["predictor_guard_to_be_safe_mv"] = round(
        predictor.required_guard_mv(model), 1
    )


def test_ablation_threshold(benchmark, policy3, workload3):
    """Sweep the classification threshold around the paper's 3K."""
    spec = xgene3_spec()

    def sweep():
        results = {}
        for threshold in (500.0, 1500.0, 3000.0, 6000.0, 12000.0):
            daemon = OnlineMonitoringDaemon(
                spec,
                policy=policy3,
                classifier=L3RateClassifier(threshold=threshold),
            )
            results[threshold] = replay(spec, workload3, daemon)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    energies = {t: r.energy_j for t, r in results.items()}
    benchmark.extra_info["energy_j_by_threshold"] = {
        str(int(t)): round(e) for t, e in energies.items()
    }
    # The paper's threshold should be at or near the sweep's optimum.
    best = min(energies, key=energies.get)
    assert energies[3000.0] <= 1.05 * energies[best]
    benchmark.extra_info["best_threshold"] = int(best)


def test_ablation_allocation(benchmark, policy3, workload3):
    """Class-aware allocation vs cluster-everything / spread-everything.

    Threshold extremes force degenerate policies: an infinite threshold
    classifies everything CPU-intensive (cluster all at fmax); a near-zero
    threshold classifies everything memory-intensive (spread all at the
    memory clock).
    """
    spec = xgene3_spec()

    def sweep():
        variants = {
            "class_aware": L3RateClassifier(threshold=3000.0),
            "cluster_all": L3RateClassifier(threshold=1e9),
            "spread_all": L3RateClassifier(threshold=1e-3),
        }
        return {
            name: replay(
                spec,
                workload3,
                OnlineMonitoringDaemon(
                    spec, policy=policy3, classifier=classifier
                ),
            )
            for name, classifier in variants.items()
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    energy = {n: r.energy_j for n, r in results.items()}
    makespan = {n: r.makespan_s for n, r in results.items()}
    benchmark.extra_info["energy_j"] = {
        n: round(e) for n, e in energy.items()
    }
    benchmark.extra_info["makespan_s"] = {
        n: round(m, 1) for n, m in makespan.items()
    }
    # Class-aware saves energy against cluster-everything without the
    # wholesale slowdown of spread-everything-at-low-clock.
    assert energy["class_aware"] < energy["cluster_all"]
    assert makespan["class_aware"] < makespan["spread_all"]


def test_ablation_monitor_period(benchmark, policy3, workload3):
    """Sweep the daemon's monitor period (the paper's 300-500 ms)."""
    spec = xgene3_spec()

    def sweep():
        results = {}
        for period in (0.1, 0.4, 2.0, 10.0):
            daemon = OnlineMonitoringDaemon(
                spec, policy=policy3, monitor_period_s=period
            )
            results[period] = (replay(spec, workload3, daemon), daemon)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["energy_j_by_period"] = {
        str(p): round(r.energy_j) for p, (r, _) in results.items()
    }
    benchmark.extra_info["retunes_by_period"] = {
        str(p): d.retunes for p, (_, d) in results.items()
    }
    # Slower monitoring delays classification and costs energy.
    assert (
        results[0.4][0].energy_j <= 1.05 * results[10.0][0].energy_j
    )


def test_ablation_objective(benchmark, policy2, workload2):
    """Energy-only vs ED2P-balanced choice of the memory clock.

    The paper picks the ED2P point (0.9 GHz on X-Gene 2) rather than the
    absolute energy minimum (the 300 MHz floor), accepting slightly more
    energy for far less delay.
    """
    spec = xgene2_spec()

    def sweep():
        results = {}
        for label, mem_freq in (
            ("ed2p_0.9GHz", ghz(0.9)),
            ("energy_0.3GHz", spec.fmin_hz),
            ("half_1.2GHz", ghz(1.2)),
        ):
            engine = PlacementEngine(
                spec, policy=policy2, mem_freq_hz=mem_freq
            )
            daemon = OnlineMonitoringDaemon(
                spec, policy=policy2, engine=engine
            )
            results[label] = replay(spec, workload2, daemon)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    benchmark.extra_info["energy_j"] = {
        n: round(r.energy_j) for n, r in results.items()
    }
    benchmark.extra_info["ed2p"] = {
        n: f"{r.ed2p:.3e}" for n, r in results.items()
    }
    # The paper's point beats both alternatives on ED2P.
    assert results["ed2p_0.9GHz"].ed2p <= results["energy_0.3GHz"].ed2p
    assert results["ed2p_0.9GHz"].ed2p <= results["half_1.2GHz"].ed2p


def test_ablation_governor_scope(benchmark, workload3):
    """Chip-wide vs per-PMD ondemand as the Baseline.

    Quantifies how much of the Placement savings comes from adding
    per-PMD frequency control that the stock chip-wide policy lacks.
    """
    spec = xgene3_spec()

    def sweep():
        chip_scope = replay(
            spec,
            workload3,
            BaselinePolicy(scope="chip"),
        )
        pmd_scope = replay(
            spec,
            workload3,
            BaselinePolicy(scope="pmd"),
        )
        return chip_scope, pmd_scope

    chip_scope, pmd_scope = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )
    assert pmd_scope.energy_j < chip_scope.energy_j
    benchmark.extra_info["baseline_energy_j"] = {
        "chip_scope": round(chip_scope.energy_j),
        "pmd_scope": round(pmd_scope.energy_j),
    }
    benchmark.extra_info["pmd_scope_saves_pct"] = round(
        100
        * (chip_scope.energy_j - pmd_scope.energy_j)
        / chip_scope.energy_j,
        1,
    )
