"""Benches for the system evaluation: Tables I-IV and Figs. 14/15."""

from repro.experiments import (
    fig14_power_timeline as fig14,
    fig15_load_timeline as fig15,
    table1,
    table2,
    tables34,
)

from conftest import EVALUATION_DURATION_S, EVALUATION_SEED, run_once


def test_table1_platforms(benchmark):
    """Table I: platform parameters."""
    result = benchmark(table1.run)
    rows = result.rows()
    assert ("CPU", "8 cores", "32 cores") in rows
    benchmark.extra_info["parameters"] = len(rows)


def test_table2_policy(benchmark, policy3):
    """Table II: the droop-class policy table vs the paper's values."""
    result = benchmark(table2.run, "xgene3", policy3)
    deltas = [
        row.vmin_high_mv - row.paper_high_mv
        for row in result.rows
        if row.paper_high_mv
    ]
    assert all(abs(d) <= 40 for d in deltas)
    benchmark.extra_info["abs_delta_to_paper_mv"] = [
        abs(d) for d in deltas
    ]


def test_table3_xgene2(benchmark):
    """Table III: the four-configuration evaluation on X-Gene 2."""
    result = run_once(
        benchmark,
        tables34.run,
        "xgene2",
        duration_s=EVALUATION_DURATION_S,
        seed=EVALUATION_SEED,
    )
    rows = {r.config: r for r in result.evaluation.rows()}
    assert (
        rows["optimal"].energy_savings_pct
        > rows["placement"].energy_savings_pct
        > 0
    )
    benchmark.extra_info["energy_savings_pct"] = {
        name: round(rows[name].energy_savings_pct, 1)
        for name in ("safe_vmin", "placement", "optimal")
    }
    benchmark.extra_info["paper_energy_savings_pct"] = {
        "safe_vmin": 11.6,
        "placement": 18.3,
        "optimal": 25.2,
    }
    benchmark.extra_info["time_penalty_pct"] = round(
        rows["optimal"].time_penalty_pct, 1
    )
    benchmark.extra_info["paper_time_penalty_pct"] = 3.2


def test_table4_xgene3(benchmark):
    """Table IV: the four-configuration evaluation on X-Gene 3."""
    result = run_once(
        benchmark,
        tables34.run,
        "xgene3",
        duration_s=EVALUATION_DURATION_S,
        seed=EVALUATION_SEED,
    )
    rows = {r.config: r for r in result.evaluation.rows()}
    assert (
        rows["optimal"].energy_savings_pct
        > rows["placement"].energy_savings_pct
        > 0
    )
    benchmark.extra_info["energy_savings_pct"] = {
        name: round(rows[name].energy_savings_pct, 1)
        for name in ("safe_vmin", "placement", "optimal")
    }
    benchmark.extra_info["paper_energy_savings_pct"] = {
        "safe_vmin": 10.9,
        "placement": 13.4,
        "optimal": 22.3,
    }
    benchmark.extra_info["time_penalty_pct"] = round(
        rows["optimal"].time_penalty_pct, 1
    )
    benchmark.extra_info["paper_time_penalty_pct"] = 2.5


def test_fig14_power_timeline(benchmark):
    """Fig. 14: Baseline vs Optimal power traces."""
    result = run_once(
        benchmark,
        fig14.run,
        "xgene3",
        duration_s=EVALUATION_DURATION_S,
        seed=EVALUATION_SEED,
    )
    base, opt = result.average_power()
    assert opt < base
    benchmark.extra_info["avg_power_w"] = {
        "baseline": round(base, 2),
        "optimal": round(opt, 2),
    }
    benchmark.extra_info["paper_avg_power_w"] = {
        "baseline": 36.49,
        "optimal": 27.63,
    }


def test_fig15_load_timeline(benchmark):
    """Fig. 15: system load and process-class traces."""
    result = run_once(
        benchmark,
        fig15.run,
        "xgene3",
        duration_s=EVALUATION_DURATION_S,
        seed=EVALUATION_SEED,
    )
    assert result.has_both_classes()
    assert 0 < result.peak_load() <= 32
    benchmark.extra_info["peak_busy_cores"] = result.peak_load()
