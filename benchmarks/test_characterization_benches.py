"""Benches for the characterization artefacts: Figs. 3, 4, 5, 6 and 10."""

from repro.experiments import (
    fig3_vmin_characterization as fig3,
    fig4_core_variation as fig4,
    fig5_pfail as fig5,
    fig6_droops as fig6,
    fig10_factors as fig10,
)
from repro.units import ghz

from conftest import run_once


def test_fig3_vmin_characterization_xgene2(benchmark):
    """Fig. 3 (top): the full 25-benchmark Vmin campaign on X-Gene 2."""
    result = run_once(benchmark, fig3.run, "xgene2")
    assert len(result.rows) == 150
    spread = result.config_spread_mv(8, ghz(2.4))
    assert spread <= 10
    benchmark.extra_info["workload_spread_mv_8T_2.4GHz"] = spread
    benchmark.extra_info["vmin_CG_8T_2.4GHz_mv"] = result.vmin_of(
        "CG", 8, ghz(2.4)
    )
    benchmark.extra_info["vmin_CG_8T_0.9GHz_mv"] = result.vmin_of(
        "CG", 8, ghz(0.9)
    )


def test_fig3_vmin_characterization_xgene3(benchmark):
    """Fig. 3 (bottom): the campaign on X-Gene 3."""
    result = run_once(benchmark, fig3.run, "xgene3")
    assert len(result.rows) == 150
    vmin_32t = result.vmin_of("CG", 32, ghz(3.0))
    assert 820 <= vmin_32t <= 850  # Table II says 830 mV
    benchmark.extra_info["vmin_CG_32T_3GHz_mv"] = vmin_32t
    benchmark.extra_info["paper_vmin_32T_3GHz_mv"] = 830


def test_fig4_core_variation(benchmark):
    """Fig. 4: per-core safe regions and the robust-PMD2 pattern."""
    result = run_once(benchmark, fig4.run, "xgene2")
    assert result.most_robust_pmd() == 2
    benchmark.extra_info["core_to_core_spread_mv"] = (
        result.core_to_core_spread_mv()
    )
    benchmark.extra_info["workload_spread_mv"] = result.workload_spread_mv()
    benchmark.extra_info["paper_core_spread_mv"] = 30
    benchmark.extra_info["paper_workload_spread_mv"] = 40


def test_fig5_pfail_curves(benchmark):
    """Fig. 5: the pfail curves and the allocation shift."""
    result = run_once(benchmark, fig5.run, "xgene3")
    full = result.curve("32T")
    spread = result.curve("16T(spreaded)")
    clustered = result.curve("16T(clustered)")
    assert full.safe_vmin_mv() == spread.safe_vmin_mv()
    assert clustered.safe_vmin_mv() < full.safe_vmin_mv()
    benchmark.extra_info["safe_vmin_32T_mv"] = full.safe_vmin_mv()
    benchmark.extra_info["safe_vmin_16T_clustered_mv"] = (
        clustered.safe_vmin_mv()
    )


def test_fig6_droop_detections(benchmark):
    """Fig. 6: droop-rate ceiling bins per allocation."""
    result = run_once(benchmark, fig6.run, "xgene3")
    top = (55, 65)
    assert min(result.rates("32T", top).values()) > 1.0
    assert max(result.rates("16T(clustered)", top).values()) < 0.1
    benchmark.extra_info["droops_32T_top_bin_mean"] = sum(
        result.rates("32T", top).values()
    ) / 25


def test_fig10_factor_decomposition(benchmark):
    """Fig. 10: Vmin factor magnitudes vs the paper's 1/4/3/12 %."""
    result = benchmark(fig10.run, "xgene2")
    measured = {k: round(100 * v, 1) for k, v in result.factors.items()}
    benchmark.extra_info["measured_pct"] = measured
    benchmark.extra_info["paper_pct"] = {
        "workload": 1,
        "core_allocation": 4,
        "clock_skipping": 3,
        "clock_division": 12,
    }
    assert abs(measured["clock_division"] - 12) <= 2
