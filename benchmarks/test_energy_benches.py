"""Benches for the energy/performance studies: Figs. 7, 8, 9, 11, 12."""

from repro.experiments import (
    fig7_allocation_energy as fig7,
    fig8_contention as fig8,
    fig9_l3c_rates as fig9,
    fig11_energy as fig11,
    fig12_ed2p as fig12,
)
from repro.units import ghz

from conftest import run_once


def test_fig7_allocation_energy(benchmark):
    """Fig. 7: clustered vs spreaded 4T energy on X-Gene 2."""
    result = benchmark(fig7.run, "xgene2")
    low, high = result.span()
    assert low < 0 < high
    benchmark.extra_info["span_pct"] = (round(low, 1), round(high, 1))
    benchmark.extra_info["paper_span_pct"] = (-9.6, 14.2)


def test_fig8_contention_ratios(benchmark):
    """Fig. 8: full-chip multiprogramming ratios."""
    result = benchmark(fig8.run, "xgene3")
    assert result.ratio_of("CG") < 0.5
    assert result.ratio_of("namd") > 0.95
    benchmark.extra_info["ratio_CG"] = round(result.ratio_of("CG"), 3)
    benchmark.extra_info["ratio_namd"] = round(result.ratio_of("namd"), 3)


def test_fig9_l3c_rates(benchmark):
    """Fig. 9: classification rates and the 3K threshold."""
    result = benchmark(fig9.run, "xgene3")
    assert result.classes_stable()
    mem = result.memory_intensive_set()
    assert "CG" in mem and "namd" not in mem
    benchmark.extra_info["memory_intensive_count"] = len(mem)
    benchmark.extra_info["rate_CG_32T"] = round(result.rate_of("CG", 32))
    benchmark.extra_info["rate_namd_32T"] = round(
        result.rate_of("namd", 32), 1
    )


def test_fig11_energy_xgene2(benchmark):
    """Fig. 11 (top): the X-Gene 2 energy grid at per-config safe Vmin."""
    result = run_once(benchmark, fig11.run, "xgene2")
    assert result.best_frequency("CG", 8) == ghz(0.9)
    assert result.energy_of("milc", 8, ghz(1.2)) < result.energy_of(
        "milc", 8, ghz(2.4)
    )
    benchmark.extra_info["energy_CG_8T_by_freq_j"] = {
        "2.4GHz": round(result.energy_of("CG", 8, ghz(2.4)), 1),
        "1.2GHz": round(result.energy_of("CG", 8, ghz(1.2)), 1),
        "0.9GHz": round(result.energy_of("CG", 8, ghz(0.9)), 1),
    }


def test_fig11_energy_xgene3(benchmark):
    """Fig. 11 (bottom): the X-Gene 3 energy grid."""
    result = run_once(benchmark, fig11.run, "xgene3")
    assert result.energy_of("CG", 32, ghz(1.5)) < result.energy_of(
        "CG", 32, ghz(3.0)
    )
    assert result.best_frequency("namd", 32) == ghz(3.0)
    benchmark.extra_info["energy_CG_32T_by_freq_j"] = {
        "3GHz": round(result.energy_of("CG", 32, ghz(3.0)), 1),
        "1.5GHz": round(result.energy_of("CG", 32, ghz(1.5)), 1),
    }


def test_fig12_ed2p_xgene2(benchmark):
    """Fig. 12 (top): ED2P inversion between the workload classes."""
    result = run_once(benchmark, fig12.run, "xgene2")
    assert result.best_frequency("namd", 8) == ghz(2.4)
    assert result.best_frequency("CG", 8) == ghz(0.9)
    benchmark.extra_info["best_freq_namd_8T"] = "2.4GHz"
    benchmark.extra_info["best_freq_CG_8T"] = "0.9GHz"


def test_fig12_ed2p_xgene3(benchmark):
    """Fig. 12 (bottom): the same inversion on X-Gene 3."""
    result = run_once(benchmark, fig12.run, "xgene3")
    assert result.best_frequency("EP", 32) == ghz(3.0)
    assert result.best_frequency("FT", 32) == ghz(1.5)
    benchmark.extra_info["best_freq_EP_32T"] = "3GHz"
    benchmark.extra_info["best_freq_FT_32T"] = "1.5GHz"
