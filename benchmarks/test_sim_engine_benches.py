"""Benches for the simulator hot path (the incremental-refresh engine).

Two single-workload replays isolate the event loop from the rest of the
evaluation pipeline:

* **daemon-on** — the paper's full monitoring daemon (``optimal``),
  whose frequent monitor ticks are exactly the clean refreshes the
  incremental engine elides; this is the bench the ≥3x hot-path
  speedup target is measured on;
* **ondemand baseline** — the stock governor (``baseline``), dominated
  by arrival/finish/phase events that genuinely dirty the state, as a
  lower bound on what incrementality can save.

Both assert the replay's invariants so a future regression cannot trade
correctness for speed silently.

A third bench pins the control-plane refactor's overhead claim: the
engine's single contact surface with a policy (fresh
:class:`~repro.policies.surfaces.Observation` per event, ``decide``
indirection, the ``on_applied`` hook check) must cost <5% of the
daemon-on replay versus the leanest possible calling convention — the
shape of the pre-refactor ``Controller`` callbacks, whose committed
pre-refactor median is the ``test_sim_daemon_on_xgene3`` baseline row
policed by ``compare_benchmarks.py``.
"""

import time

from repro.core.configurations import run_configuration
from repro.platform.chip import Chip
from repro.platform.specs import get_spec
from repro.policies.actuation import apply_action
from repro.policies.registry import resolve_policy
from repro.policies.surfaces import Observation, PolicyEvent
from repro.sim.system import ServerSystem
from repro.workloads.generator import ServerWorkloadGenerator

from conftest import EVALUATION_DURATION_S, EVALUATION_SEED, run_once

import pytest

#: Max allowed slowdown of the dispatched engine vs the direct-call
#: harness (1.05 == 5%, the refactor's acceptance bound).
MAX_DISPATCH_OVERHEAD = 1.05

#: Interleaved timing rounds; the minimum of each side is compared.
DISPATCH_ROUNDS = 5


@pytest.fixture(scope="module")
def workload3():
    """One deterministic 900 s server workload for the 32-core chip."""
    spec = get_spec("xgene3")
    generator = ServerWorkloadGenerator(
        max_cores=spec.n_cores, seed=EVALUATION_SEED
    )
    return generator.generate(EVALUATION_DURATION_S)


def test_sim_daemon_on_xgene3(benchmark, workload3, policy3):
    """Daemon-on replay: monitor ticks dominate the event stream."""
    result = run_once(
        benchmark,
        run_configuration,
        "xgene3",
        workload3,
        "optimal",
        policy=policy3,
    )
    assert result.violations == []
    assert all(p.finish_s is not None for p in result.processes)
    assert result.energy_j > 0
    benchmark.extra_info["processes"] = len(result.processes)
    benchmark.extra_info["makespan_s"] = result.makespan_s


def test_sim_ondemand_baseline_xgene3(benchmark, workload3, policy3):
    """Baseline replay: mostly state-dirtying arrival/finish events."""
    result = run_once(
        benchmark,
        run_configuration,
        "xgene3",
        workload3,
        "baseline",
        policy=policy3,
    )
    assert all(p.finish_s is not None for p in result.processes)
    assert result.energy_j > 0
    benchmark.extra_info["processes"] = len(result.processes)
    benchmark.extra_info["makespan_s"] = result.makespan_s


def _direct_call_harness(system):
    """The leanest policy calling convention the engine could have.

    Models the pre-refactor ``Controller`` callback shape: no per-event
    observation allocation (one reused live view, fields mutated in
    place — valid because :class:`Observation` is stateless) and no
    ``on_applied`` hook check. The delta against the real
    ``_dispatch_policy`` is therefore exactly the dispatch glue the
    control-plane refactor added.
    """
    obs = Observation(system, PolicyEvent.START)

    def dispatch(event, process=None):
        system._controller_calls += 1
        obs.event = event
        obs.process = process
        action = system.policy.decide(obs)
        if action is not None:
            apply_action(system, action)
        return action

    return dispatch


def _daemon_replay(spec, workload, table, direct=False):
    policy = resolve_policy("daemon", spec, table=table)
    system = ServerSystem(Chip(spec), workload, policy=policy)
    if direct:
        system._dispatch_policy = _direct_call_harness(system)
    return system.run()


def test_policy_dispatch_overhead(workload3, policy3):
    """Observation/decide/actuate glue costs <5% of the daemon-on replay.

    Deliberately a plain timing test (no ``benchmark`` fixture) so it
    never contributes rows to ``bench_results.json`` or shifts the
    committed regression baseline.
    """
    spec = get_spec("xgene3")

    dispatched = _daemon_replay(spec, workload3, policy3)
    direct = _daemon_replay(spec, workload3, policy3, direct=True)
    # The harness is a pure calling-convention change: both replays
    # must make bit-identical decisions.
    assert direct.energy_j == dispatched.energy_j
    assert direct.makespan_s == dispatched.makespan_s
    assert direct.voltage_transitions == dispatched.voltage_transitions

    dispatched_s = float("inf")
    direct_s = float("inf")
    # Interleave the two variants so clock drift hits both equally.
    for _ in range(DISPATCH_ROUNDS):
        started = time.perf_counter()
        _daemon_replay(spec, workload3, policy3, direct=True)
        direct_s = min(direct_s, time.perf_counter() - started)
        started = time.perf_counter()
        _daemon_replay(spec, workload3, policy3)
        dispatched_s = min(dispatched_s, time.perf_counter() - started)

    overhead = dispatched_s / direct_s
    print(
        f"policy dispatch overhead: dispatched {dispatched_s:.4f}s vs "
        f"direct {direct_s:.4f}s ({(overhead - 1.0) * 100.0:+.2f}%)"
    )
    assert overhead < MAX_DISPATCH_OVERHEAD, (
        f"policy dispatch costs {(overhead - 1.0) * 100.0:.1f}% on the "
        f"daemon-on replay (bound: "
        f"{(MAX_DISPATCH_OVERHEAD - 1.0) * 100.0:.0f}%)"
    )
