"""Benches for the simulator hot path (the incremental-refresh engine).

Two single-workload replays isolate the event loop from the rest of the
evaluation pipeline:

* **daemon-on** — the paper's full monitoring daemon (``optimal``),
  whose frequent monitor ticks are exactly the clean refreshes the
  incremental engine elides; this is the bench the ≥3x hot-path
  speedup target is measured on;
* **ondemand baseline** — the stock governor (``baseline``), dominated
  by arrival/finish/phase events that genuinely dirty the state, as a
  lower bound on what incrementality can save.

Both assert the replay's invariants so a future regression cannot trade
correctness for speed silently.
"""

from repro.core.configurations import run_configuration
from repro.platform.specs import get_spec
from repro.workloads.generator import ServerWorkloadGenerator

from conftest import EVALUATION_DURATION_S, EVALUATION_SEED, run_once

import pytest


@pytest.fixture(scope="module")
def workload3():
    """One deterministic 900 s server workload for the 32-core chip."""
    spec = get_spec("xgene3")
    generator = ServerWorkloadGenerator(
        max_cores=spec.n_cores, seed=EVALUATION_SEED
    )
    return generator.generate(EVALUATION_DURATION_S)


def test_sim_daemon_on_xgene3(benchmark, workload3, policy3):
    """Daemon-on replay: monitor ticks dominate the event stream."""
    result = run_once(
        benchmark,
        run_configuration,
        "xgene3",
        workload3,
        "optimal",
        policy=policy3,
    )
    assert result.violations == []
    assert all(p.finish_s is not None for p in result.processes)
    assert result.energy_j > 0
    benchmark.extra_info["processes"] = len(result.processes)
    benchmark.extra_info["makespan_s"] = result.makespan_s


def test_sim_ondemand_baseline_xgene3(benchmark, workload3, policy3):
    """Baseline replay: mostly state-dirtying arrival/finish events."""
    result = run_once(
        benchmark,
        run_configuration,
        "xgene3",
        workload3,
        "baseline",
        policy=policy3,
    )
    assert all(p.finish_s is not None for p in result.processes)
    assert result.energy_j > 0
    benchmark.extra_info["processes"] = len(result.processes)
    benchmark.extra_info["makespan_s"] = result.makespan_s
