"""Reprolint incremental-analysis benches: cold sweep vs warm cache.

The whole-program analyzer persists per-file summaries (keyed by
content hash) plus the import graph under ``.reprolint-cache/``. A
warm run over an unchanged tree must re-analyze **zero** files and
come back at least :data:`MIN_SPEEDUP` times faster than the cold
sweep — that contract is pinned here, on a synthetic project so the
numbers do not drift with repo size.

``test_reprolint_cold_analysis`` / ``test_reprolint_warm_analysis``
contribute rows to the committed regression baseline; the speedup
pin is a plain timing test (no ``benchmark`` fixture) so flaky CI
machines shift neither the baseline nor the ratio's two sides
independently.
"""

from __future__ import annotations

import shutil
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
TOOLS_DIR = REPO_ROOT / "tools"
if str(TOOLS_DIR) not in sys.path:
    sys.path.insert(0, str(TOOLS_DIR))

from reprolint.driver import analyze_paths  # noqa: E402
from reprolint.rules import ALL_RULES, PROGRAM_RULES  # noqa: E402

#: Modules in the synthetic project (each imports its predecessor, so
#: the dependency chain is as deep as the project is wide).
N_MODULES = 40

#: Warm run must beat the cold sweep by at least this factor.
MIN_SPEEDUP = 5.0

#: Interleaved timing rounds; the minimum of each side is compared.
ROUNDS = 3

#: Extra helper functions per module, so per-file *analysis* cost
#: (parse + summary build + unit flow) dominates the warm run's fixed
#: per-file cost (content hash + cached-summary decode).
HELPERS_PER_MODULE = 12

_MODULE_BODY = '''\
"""Synthetic module {i} for the reprolint benches."""
{imports}


def supply_{i}_mv(margin_mv: float) -> float:
    rail_mv = 850.0 + margin_mv
    return rail_mv


def step_{i}(margin_mv: float) -> float:
    local_mv = supply_{i}_mv(margin_mv)
    {call}
    return local_mv
'''

_HELPER_BODY = '''\


def helper_{i}_{j}(level_mv: float, scale: float) -> float:
    biased_mv = level_mv + {j}.0
    shifted_mv = biased_mv - scale * {j}.0
    total_mv = biased_mv + shifted_mv
    return supply_{i}_mv(total_mv)
'''


def _make_project(root: Path) -> Path:
    """A package of ``N_MODULES`` files with a linear import chain."""
    project = root / "proj"
    project.mkdir()
    (project / "pyproject.toml").write_text("[project]\nname = 'proj'\n")
    for i in range(N_MODULES):
        if i == 0:
            imports, call = "", "pass"
        else:
            imports = f"from mod_{i - 1} import step_{i - 1}"
            call = f"step_{i - 1}(local_mv)"
        body = _MODULE_BODY.format(i=i, imports=imports, call=call)
        body += "".join(
            _HELPER_BODY.format(i=i, j=j)
            for j in range(HELPERS_PER_MODULE)
        )
        (project / f"mod_{i}.py").write_text(body)
    return project


def _run(project: Path, cache_dir: Path):
    return analyze_paths(
        [project],
        ALL_RULES,
        program_rules=PROGRAM_RULES,
        root=project,
        cache_dir=cache_dir,
    )


def _best_of(fn, rounds=1):
    best = float("inf")
    for _ in range(rounds):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_reprolint_cold_analysis(benchmark, tmp_path):
    """Full whole-program sweep with an empty cache, every round."""
    project = _make_project(tmp_path)
    cache_dir = project / ".reprolint-cache"

    def setup():
        shutil.rmtree(cache_dir, ignore_errors=True)
        return (), {}

    findings, stats = benchmark.pedantic(
        lambda: _run(project, cache_dir), setup=setup, rounds=3
    )
    assert findings == []
    assert stats.files_analyzed == stats.files_total == N_MODULES


def test_reprolint_warm_analysis(benchmark, tmp_path):
    """Unchanged tree: hash check + cached summaries, zero re-analysis."""
    project = _make_project(tmp_path)
    cache_dir = project / ".reprolint-cache"
    _run(project, cache_dir)  # prime

    findings, stats = benchmark(lambda: _run(project, cache_dir))
    assert findings == []
    assert stats.files_analyzed == 0
    assert stats.files_from_cache == N_MODULES


def test_reprolint_warm_speedup_over_cold(tmp_path):
    """The warm run analyzes 0 files and is >= MIN_SPEEDUP x faster."""
    project = _make_project(tmp_path)
    cache_dir = project / ".reprolint-cache"

    def cold():
        shutil.rmtree(cache_dir, ignore_errors=True)
        return _run(project, cache_dir)

    cold()  # warm interpreter-level caches (ast, import machinery)
    cold_s = float("inf")
    warm_s = float("inf")
    # Interleave the variants so clock drift hits both equally. Each
    # cold round leaves a fresh cache for the warm round to hit.
    for _ in range(ROUNDS):
        cold_s = min(cold_s, _best_of(cold))
        _, warm_stats = _run(project, cache_dir)
        warm_s = min(warm_s, _best_of(lambda: _run(project, cache_dir)))

    assert warm_stats.files_analyzed == 0
    assert warm_stats.files_from_cache == N_MODULES
    speedup = cold_s / warm_s
    print(
        f"reprolint cold {cold_s:.4f}s vs warm {warm_s:.4f}s "
        f"({speedup:.1f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"warm incremental run is only {speedup:.1f}x faster than the "
        f"cold sweep (bound: {MIN_SPEEDUP:.0f}x)"
    )
