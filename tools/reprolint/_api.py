"""Shared public surface, re-exported by both package entry shims.

The real package lives in ``tools/reprolint``; a thin shim package at
the repository root points its ``__path__`` here so that
``python -m reprolint`` works from a fresh checkout without installing
anything. Both ``__init__`` modules just do ``from ._api import *``.
"""

from __future__ import annotations

from .cache import AnalysisCache, CACHE_DIR_NAME
from .callgraph import Program, dependents_closure
from .cli import main
from .driver import AnalysisStats, analyze_file, analyze_paths
from .engine import (
    Finding,
    ProgramRule,
    ProjectRule,
    Rule,
    SourceFile,
    SUPPRESSION_RULE_ID,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES, PROGRAM_RULES, PROJECT_RULES, RULE_BY_ID
from .sarif import render_sarif
from .symbols import FileSummary, build_summary
from .unitflow import ResolvedUnit, resolve_term

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "AnalysisStats",
    "CACHE_DIR_NAME",
    "FileSummary",
    "Finding",
    "PROGRAM_RULES",
    "PROJECT_RULES",
    "Program",
    "ProgramRule",
    "ProjectRule",
    "RULE_BY_ID",
    "ResolvedUnit",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "SourceFile",
    "analyze_file",
    "analyze_paths",
    "build_summary",
    "dependents_closure",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
    "render_sarif",
    "resolve_term",
]
