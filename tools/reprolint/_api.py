"""Shared public surface, re-exported by both package entry shims.

The real package lives in ``tools/reprolint``; a thin shim package at
the repository root points its ``__path__`` here so that
``python -m reprolint`` works from a fresh checkout without installing
anything. Both ``__init__`` modules just do ``from ._api import *``.
"""

from __future__ import annotations

from .cli import main
from .engine import (
    Finding,
    ProjectRule,
    Rule,
    SourceFile,
    SUPPRESSION_RULE_ID,
    lint_file,
    lint_paths,
    lint_source,
)
from .rules import ALL_RULES, PROJECT_RULES, RULE_BY_ID

__all__ = [
    "ALL_RULES",
    "Finding",
    "PROJECT_RULES",
    "ProjectRule",
    "RULE_BY_ID",
    "Rule",
    "SUPPRESSION_RULE_ID",
    "SourceFile",
    "lint_file",
    "lint_paths",
    "lint_source",
    "main",
]
