"""Rule registry: every reprolint rule, in rule-id order."""

from __future__ import annotations

from typing import Dict, List, Union

from ..effects import EffectPropagation
from ..engine import ProgramRule, ProjectRule, Rule
from ..unitflow import UnitFlow
from .actuation import ActuationFunnel
from .determinism import Determinism
from .hygiene import HotPathHygiene
from .parity import KernelScalarParity
from .platform import PlatformNameDiscipline
from .purity import CacheKeyPurity
from .telemetry import TelemetryNameDiscipline
from .units import UnitsDiscipline

#: Per-file rules, instantiated once.
ALL_RULES: List[Rule] = [
    UnitsDiscipline(),
    Determinism(),
    CacheKeyPurity(),
    HotPathHygiene(),
    TelemetryNameDiscipline(),
    PlatformNameDiscipline(),
    ActuationFunnel(),
]

#: Cross-file project rules.
PROJECT_RULES: List[ProjectRule] = [
    KernelScalarParity(),
]

#: Whole-program rules (run over the assembled call graph).
PROGRAM_RULES: List[ProgramRule] = [
    UnitFlow(),
    EffectPropagation(),
]

#: id -> rule, for ``--select`` and ``--list-rules``.
RULE_BY_ID: Dict[str, Union[Rule, ProjectRule, ProgramRule]] = {
    rule.rule_id: rule
    for rule in (*ALL_RULES, *PROJECT_RULES, *PROGRAM_RULES)
}

__all__ = [
    "ALL_RULES",
    "PROGRAM_RULES",
    "PROJECT_RULES",
    "RULE_BY_ID",
    "ActuationFunnel",
    "CacheKeyPurity",
    "Determinism",
    "EffectPropagation",
    "HotPathHygiene",
    "KernelScalarParity",
    "PlatformNameDiscipline",
    "TelemetryNameDiscipline",
    "UnitFlow",
    "UnitsDiscipline",
]
