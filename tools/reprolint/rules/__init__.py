"""Rule registry: every reprolint rule, in rule-id order."""

from __future__ import annotations

from typing import Dict, List, Union

from ..engine import ProjectRule, Rule
from .determinism import Determinism
from .hygiene import HotPathHygiene
from .parity import KernelScalarParity
from .platform import PlatformNameDiscipline
from .purity import CacheKeyPurity
from .telemetry import TelemetryNameDiscipline
from .units import UnitsDiscipline

#: Per-file rules, instantiated once.
ALL_RULES: List[Rule] = [
    UnitsDiscipline(),
    Determinism(),
    CacheKeyPurity(),
    HotPathHygiene(),
    TelemetryNameDiscipline(),
    PlatformNameDiscipline(),
]

#: Cross-file project rules.
PROJECT_RULES: List[ProjectRule] = [
    KernelScalarParity(),
]

#: id -> rule, for ``--select`` and ``--list-rules``.
RULE_BY_ID: Dict[str, Union[Rule, ProjectRule]] = {
    rule.rule_id: rule for rule in (*ALL_RULES, *PROJECT_RULES)
}

__all__ = [
    "ALL_RULES",
    "PROJECT_RULES",
    "RULE_BY_ID",
    "CacheKeyPurity",
    "Determinism",
    "HotPathHygiene",
    "KernelScalarParity",
    "PlatformNameDiscipline",
    "TelemetryNameDiscipline",
    "UnitsDiscipline",
]
