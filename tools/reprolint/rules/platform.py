"""RL007 — platform chip-name discipline.

Chip identity is owned by the declarative platform registry
(``repro.platform``): specs are loaded from spec files and addressed by
stable keys (``xgene2``, ``xgene3``). A display-name literal spelled
out anywhere else — a ``spec.name == "X-Gene 3"`` comparison, a table
header, an f-string — re-couples that code to one chip and silently
breaks for platforms registered purely as spec files. Two checks:

* **name comparisons** — ``==`` / ``!=`` against a banned chip literal
  is dispatch-by-display-name; resolve a registry key instead
  (``platform_key_for_spec(spec) == "xgene3"``).
* **literals** — any other string constant containing a banned chip
  name, including f-string fragments. Docstrings are exempt (prose,
  not dispatch); sites that genuinely need the display name (e.g.
  tests of the display-name lookup itself) carry a reasoned
  suppression.

Unlike most rules the check also runs over test code: tests pinned to
a display name are exactly how chip-coupling survives refactors.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from ..config import PLATFORM_NAME_LITERALS, PLATFORM_PACKAGE
from ..engine import Finding, Rule, SourceFile


def _banned_literal(value: object) -> Optional[str]:
    """The banned chip name contained in a string value, if any."""
    if not isinstance(value, str):
        return None
    for name in PLATFORM_NAME_LITERALS:
        if name in value:
            return name
    return None


def _docstring_constants(tree: ast.Module) -> Set[int]:
    """``id``s of the Constant nodes that are docstrings."""
    out: Set[int] = set()
    scopes = (
        ast.Module,
        ast.ClassDef,
        ast.FunctionDef,
        ast.AsyncFunctionDef,
    )
    for node in ast.walk(tree):
        if not isinstance(node, scopes):
            continue
        body = node.body
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            out.add(id(body[0].value))
    return out


class PlatformNameDiscipline(Rule):
    """RL007: chip display names stay inside ``repro.platform``."""

    rule_id = "RL007"
    title = "platform chip-name discipline"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not self._in_scope(source):
            return
        docstrings = _docstring_constants(source.tree)
        consumed: Set[int] = set()
        for node in ast.walk(source.tree):
            # ast.walk visits parents before their children, so a
            # Compare/JoinedStr claims its literals before the plain
            # Constant branch can see them.
            if isinstance(node, ast.Compare):
                yield from self._check_compare(source, node, consumed)
            elif isinstance(node, ast.JoinedStr):
                yield from self._check_fstring(source, node, consumed)
            elif (
                isinstance(node, ast.Constant)
                and id(node) not in consumed
                and id(node) not in docstrings
            ):
                literal = _banned_literal(node.value)
                if literal is not None:
                    yield self.finding(
                        source,
                        node,
                        f"chip display-name literal `{literal}` outside "
                        f"`{PLATFORM_PACKAGE}`; resolve it through the "
                        "registry (get_platform(key).spec.name)",
                    )

    def _in_scope(self, source: SourceFile) -> bool:
        if source.module == PLATFORM_PACKAGE or source.module.startswith(
            PLATFORM_PACKAGE + "."
        ):
            # The registry and its spec loaders own display names.
            return False
        return source.is_test or source.module.startswith("repro.")

    def _check_compare(
        self, source: SourceFile, node: ast.Compare, consumed: Set[int]
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            for operand in (left, right):
                if not isinstance(operand, ast.Constant):
                    continue
                literal = _banned_literal(operand.value)
                if literal is None:
                    continue
                consumed.add(id(operand))
                yield self.finding(
                    source,
                    node,
                    f"comparison against chip name `{literal}` is "
                    "dispatch by display name; compare registry keys "
                    "(platform_key_for_spec(spec) == ...) instead",
                )

    def _check_fstring(
        self, source: SourceFile, node: ast.JoinedStr, consumed: Set[int]
    ) -> Iterator[Finding]:
        hit: Optional[str] = None
        for value in node.values:
            if isinstance(value, ast.Constant):
                consumed.add(id(value))
                if hit is None:
                    hit = _banned_literal(value.value)
        if hit is not None:
            # Anchored at the JoinedStr: inner-constant positions are
            # not stable across 3.10/3.11 vs PEP-701 interpreters.
            yield self.finding(
                source,
                node,
                f"chip display-name literal `{hit}` outside "
                f"`{PLATFORM_PACKAGE}`; resolve it through the "
                "registry (get_platform(key).spec.name)",
            )
