"""RL010 — actuation funnel discipline.

Hardware set-points are owned by the control plane: policies *describe*
the change they want as an :class:`~repro.policies.surfaces.Action`,
arbitration merges and clamps it, and one funnel
(``repro.policies.actuation.apply_action``) performs the SLIMpro and
CPPC writes in fail-safe order. A direct mutator call anywhere else —
``chip.set_voltage(...)`` in an experiment, ``cppc.request(...)`` in a
governor — bypasses both the stack arbitration and the mandatory
safe-Vmin clamp, which is exactly the class of bug the clamp exists to
make impossible.

The check flags any call whose attribute name is a known actuation
mutator (rail writes, per-PMD and chip-wide frequency requests) in
``repro.*`` modules outside ``repro.platform`` — the device models
themselves own their mutators. Inside ``repro.policies`` only the
actuation funnel is sanctioned, and it says so with reasoned
suppressions; every other policy module must return Actions. Test code
is exempt (tests drive the devices directly to characterize them).
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..config import (
    ACTUATION_FUNNEL,
    ACTUATION_METHODS,
    PLATFORM_PACKAGE,
)
from ..engine import Finding, Rule, SourceFile


class ActuationFunnel(Rule):
    """RL010: hardware mutators are called only via the actuation funnel."""

    rule_id = "RL010"
    title = "actuation funnel discipline"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if not self._in_scope(source):
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ACTUATION_METHODS:
                continue
            yield self.finding(
                source,
                node,
                f"direct actuation call `{func.attr}()` outside "
                f"`{PLATFORM_PACKAGE}`; emit an Action and route it "
                f"through `{ACTUATION_FUNNEL}`",
            )

    def _in_scope(self, source: SourceFile) -> bool:
        if source.is_test:
            # Tests characterize the device models directly.
            return False
        module = source.module
        if module == PLATFORM_PACKAGE or module.startswith(
            PLATFORM_PACKAGE + "."
        ):
            # The device models own their mutators.
            return False
        return module == "repro" or module.startswith("repro.")
