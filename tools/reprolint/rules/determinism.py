"""RL002 — determinism in the simulation/characterization core.

Campaign results are memoized content-addressed (``repro.vmin.cache``)
and the orchestrator's merged output is golden-diffed byte for byte, so
the modules listed in :data:`~reprolint.config.DETERMINISTIC_MODULES`
must be bit-reproducible run to run. Flagged here:

* **unseeded RNG construction** — ``random.Random()`` /
  ``np.random.default_rng()`` with no arguments;
* **global RNG streams** — module-level ``random.*`` /
  ``np.random.*`` draws (any caller anywhere perturbs the stream);
* **wall-clock reads** — ``time.time()``, ``datetime.now()`` …: their
  values leak into results and cache payloads;
* **set iteration** — iterating a ``set``/``frozenset`` literal or
  constructor is hash-order dependent (and changes with
  ``PYTHONHASHSEED``); sort first.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ..astutil import ImportAliases, dotted_name
from ..config import (
    DETERMINISTIC_MODULES,
    GLOBAL_NP_RANDOM_FUNCS,
    GLOBAL_RANDOM_FUNCS,
    WALL_CLOCK_CALLS,
)
from ..engine import Finding, Rule, SourceFile


def in_deterministic_scope(module: str) -> bool:
    """Whether a module must stay bit-reproducible."""
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in DETERMINISTIC_MODULES
    )


class Determinism(Rule):
    """RL002: no hidden nondeterminism in reproducible modules."""

    rule_id = "RL002"
    title = "determinism"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test or not in_deterministic_scope(source.module):
            return
        aliases = ImportAliases(source.tree)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(source, aliases, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                yield from self._check_set_iteration(source, node)

    # -- RNG and wall-clock calls ---------------------------------------------

    def _check_call(
        self,
        source: SourceFile,
        aliases: ImportAliases,
        node: ast.Call,
    ) -> Iterator[Finding]:
        origin = _call_origin(aliases, node.func)
        if origin is None:
            return
        module, func = origin
        if module == "random" and func == "Random" and not node.args:
            yield self.finding(
                source,
                node,
                "unseeded random.Random(): pass an explicit seed so "
                "runs replay identically",
            )
        elif (
            module in ("numpy.random", "random")
            and func == "default_rng"
            and not node.args
        ):
            yield self.finding(
                source,
                node,
                "unseeded default_rng(): pass an explicit seed so "
                "runs replay identically",
            )
        elif module == "random" and func in GLOBAL_RANDOM_FUNCS:
            yield self.finding(
                source,
                node,
                f"module-level random.{func}() draws from the shared "
                "global stream; thread an explicit random.Random(seed)",
            )
        elif module == "numpy.random" and func in GLOBAL_NP_RANDOM_FUNCS:
            yield self.finding(
                source,
                node,
                f"np.random.{func}() uses numpy's global state; use a "
                "seeded np.random.default_rng(seed)",
            )
        elif (module.split(".")[-1], func) in WALL_CLOCK_CALLS:
            yield self.finding(
                source,
                node,
                f"wall-clock read {module}.{func}() in a deterministic "
                "module; results and cache keys must not depend on it",
            )

    # -- set iteration ---------------------------------------------------------

    def _check_set_iteration(
        self,
        source: SourceFile,
        node: "ast.For | ast.comprehension",
    ) -> Iterator[Finding]:
        iterable = node.iter
        reason = _set_expression(iterable)
        if reason is None:
            return
        target = iterable if isinstance(node, ast.comprehension) else node
        yield self.finding(
            source,
            target,
            f"iteration over {reason} is hash-order dependent (varies "
            "with PYTHONHASHSEED); wrap it in sorted()",
        )


def _call_origin(
    aliases: ImportAliases, func: ast.AST
) -> Optional[Tuple[str, str]]:
    """(origin module, function name) of a call target, if resolvable."""
    name = dotted_name(func)
    if name is None:
        return None
    parts = name.split(".")
    head, rest = parts[0], parts[1:]
    origin = aliases.module_of(head)
    if origin is not None and rest:
        return ".".join([origin] + rest[:-1]), rest[-1]
    imported = aliases.object_of(head)
    if imported is not None:
        base, leaf = imported.rsplit(".", 1)
        if not rest:
            # from random import choice; choice(...)
            return base, leaf
        # from datetime import datetime; datetime.now(...)
        return imported, rest[-1]
    return None


def _set_expression(node: ast.AST) -> Optional[str]:
    """Describe ``node`` when it is a direct set expression."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset"):
            return f"{node.func.id}(...)"
    return None
