"""RL001 — units discipline.

The library's unit conventions (mV / Hz / W, see ``repro.units``) only
survive if conversions stay explicit. Two checks:

* **magic conversions** — ``freq / 1e9``, ``voltage * 1000`` and
  friends: a bare power-of-ten next to a unit-bearing name silently
  re-scales a physical quantity. Route it through a ``repro.units``
  helper (``hz_to_ghz``, ``ghz``, ``mhz``, ``mv_to_v``, ``v_to_mv``)
  or the named constants (``MHZ``, ``GHZ``).
* **suffix contradictions** — calling a helper with an argument whose
  unit suffix contradicts the helper's input unit, e.g.
  ``mv_to_v(rail_v)`` or ``hz_to_ghz(freq_ghz)``: one of the two is
  lying about its unit.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import expr_identifier, name_tokens, unit_suffix
from ..config import (
    HELPER_FORBIDDEN_SUFFIXES,
    MAGIC_FACTORS,
    UNIT_SUFFIXES,
    UNIT_TOKENS,
    UNITS_EXEMPT_MODULES,
)
from ..engine import Finding, Rule, SourceFile

#: Suggested helper per (unit family, factor, operation) — the message
#: names the idiomatic replacement where one exists.
_SUGGESTIONS = {
    ("freq", 1e9, "div"): "repro.units.hz_to_ghz()",
    ("freq", 1e9, "mult"): "repro.units.ghz() or `* repro.units.GHZ`",
    ("freq", 1e6, "mult"): "repro.units.mhz() or `* repro.units.MHZ`",
    ("freq", 1e6, "div"): "`/ repro.units.MHZ`",
    ("volt", 1e3, "div"): "repro.units.mv_to_v()",
    ("volt", 1e3, "mult"): "repro.units.v_to_mv()",
    ("volt", 1e-3, "mult"): "repro.units.mv_to_v()",
}


def _unit_family(identifier: str) -> str:
    tokens = set(name_tokens(identifier))
    if tokens & {"mv", "volt", "volts", "voltage", "voltages"}:
        return "volt"
    if tokens & {"watt", "watts", "power"}:
        return "power"
    return "freq"


def _is_unit_bearing(identifier: str) -> bool:
    return bool(set(name_tokens(identifier)) & UNIT_TOKENS)


class UnitsDiscipline(Rule):
    """RL001: unit conversions must go through ``repro.units``."""

    rule_id = "RL001"
    title = "units discipline"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.module in UNITS_EXEMPT_MODULES:
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Mult, ast.Div)
            ):
                yield from self._check_magic(source, node)
            elif isinstance(node, ast.Call):
                yield from self._check_suffix(source, node)

    # -- magic power-of-ten conversions ---------------------------------------

    def _check_magic(
        self, source: SourceFile, node: ast.BinOp
    ) -> Iterator[Finding]:
        pairs = [(node.left, node.right), (node.right, node.left)]
        if isinstance(node.op, ast.Div):
            # Only `value / factor` re-scales; `factor / value` is a
            # rate inversion, not a unit conversion.
            pairs = [(node.left, node.right)]
        for value_node, factor_node in pairs:
            factor = _const_factor(factor_node)
            if factor is None or factor not in MAGIC_FACTORS:
                continue
            identifier = expr_identifier(value_node)
            if identifier is None or not _is_unit_bearing(identifier):
                continue
            op = "div" if isinstance(node.op, ast.Div) else "mult"
            family = _unit_family(identifier)
            suggestion = _SUGGESTIONS.get((family, factor, op))
            hint = f"; use {suggestion}" if suggestion else (
                "; use a repro.units helper or named constant"
            )
            op_char = "/" if op == "div" else "*"
            yield self.finding(
                source,
                node,
                f"magic unit conversion `{identifier} {op_char} "
                f"{_format_factor(factor)}`{hint}",
            )
            return

    # -- helper argument suffix contradictions --------------------------------

    def _check_suffix(
        self, source: SourceFile, node: ast.Call
    ) -> Iterator[Finding]:
        helper = expr_identifier(node.func)
        forbidden = HELPER_FORBIDDEN_SUFFIXES.get(helper or "")
        if forbidden is None or not node.args:
            return
        arg = node.args[0]
        # Only bare names/attributes carry a meaningful suffix; a call
        # like `fmt_freq(ghz(2.4))` is the *correct* idiom (ghz()
        # returns Hz), so its callee name proves nothing.
        if not isinstance(arg, (ast.Name, ast.Attribute)):
            return
        identifier = expr_identifier(arg)
        if identifier is None:
            return
        suffix = unit_suffix(identifier)
        if suffix in UNIT_SUFFIXES and suffix in forbidden:
            yield self.finding(
                source,
                node,
                f"`{helper}({identifier})`: argument suffix "
                f"`_{suffix}` contradicts the helper's input unit",
            )


def _const_factor(node: ast.AST) -> Optional[float]:
    """Positive power-of-ten constant value, or None."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None


def _format_factor(factor: float) -> str:
    if factor >= 1:
        return str(int(factor))
    return f"{factor:g}"
