"""RL004 — cache-key purity.

The Vmin cache is content-addressed: a key must be a pure function of
its inputs, or two runs with identical specs silently read different
cache entries (or worse, the same entry for different work). Functions
marked ``@cache_key_producer`` therefore may not:

* read environment variables (``os.environ``, ``os.getenv``);
* read wall-clock or monotonic time;
* read module-level mutable state via ``global`` declarations.

The decorator itself (defined in ``repro.vmin.cache``) is a no-op
marker at runtime; its entire value is making this rule checkable.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import ImportAliases, decorator_name, dotted_name
from ..config import CACHE_KEY_DECORATOR, WALL_CLOCK_CALLS
from ..engine import Finding, Rule, SourceFile


class CacheKeyPurity(Rule):
    """RL004: ``@cache_key_producer`` functions must be pure."""

    rule_id = "RL004"
    title = "cache-key purity"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        aliases = ImportAliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if not any(
                decorator_name(dec) == CACHE_KEY_DECORATOR
                for dec in node.decorator_list
            ):
                continue
            yield from self._check_body(source, aliases, node)

    def _check_body(
        self,
        source: SourceFile,
        aliases: ImportAliases,
        func: ast.AST,
    ) -> Iterator[Finding]:
        # `os.environ.get(...)` matches as a call AND as nested
        # attribute reads, all anchored at the same column — report one
        # finding per location.
        seen = set()
        for node in ast.walk(func):
            anchor = (
                getattr(node, "lineno", 0),
                getattr(node, "col_offset", -1),
            )
            if anchor in seen:
                continue
            if isinstance(node, ast.Global):
                seen.add(anchor)
                yield self.finding(
                    source,
                    node,
                    f"cache-key producer `{func.name}` declares "
                    f"`global {', '.join(node.names)}`: keys must be "
                    "pure functions of their arguments",
                )
            elif isinstance(node, ast.Call):
                impurity = self._call_impurity(aliases, node)
                if impurity is not None:
                    seen.add(anchor)
                    yield self.finding(
                        source,
                        node,
                        f"cache-key producer `{func.name}` {impurity}; "
                        "keys must be pure functions of their arguments",
                    )
            elif isinstance(node, (ast.Attribute, ast.Subscript)):
                env = self._environ_read(aliases, node)
                if env is not None:
                    seen.add(anchor)
                    yield self.finding(
                        source,
                        node,
                        f"cache-key producer `{func.name}` reads "
                        f"{env}; keys must be pure functions of their "
                        "arguments",
                    )

    def _call_impurity(
        self, aliases: ImportAliases, node: ast.Call
    ) -> Optional[str]:
        name = dotted_name(node.func)
        if name is None:
            return None
        parts = name.split(".")
        head = aliases.module_of(parts[0]) or parts[0]
        resolved = ".".join([head] + parts[1:])
        leaf = parts[-1]
        base = resolved.rsplit(".", 1)[0].split(".")[-1] if len(
            resolved.split(".")
        ) > 1 else ""
        if (base, leaf) in WALL_CLOCK_CALLS:
            return f"calls wall-clock `{resolved}()`"
        if resolved in ("os.getenv", "os.environ.get"):
            return f"calls `{resolved}()` (environment read)"
        imported = aliases.object_of(parts[0])
        if imported == "os.getenv":
            return "calls `os.getenv()` (environment read)"
        return None

    def _environ_read(
        self, aliases: ImportAliases, node: ast.AST
    ) -> Optional[str]:
        target = node.value if isinstance(node, ast.Subscript) else node
        name = dotted_name(target)
        if name is None:
            return None
        parts = name.split(".")
        head = aliases.module_of(parts[0]) or parts[0]
        resolved = ".".join([head] + parts[1:])
        if resolved == "os.environ" or resolved.startswith("os.environ."):
            return "`os.environ`"
        if aliases.object_of(parts[0]) == "os.environ":
            return "`os.environ`"
        return None
