"""RL006 — telemetry metric-name discipline.

Metric names are the join points between instrumented code, manifests
and dashboards: a typo or an f-string-built name silently creates a new
time series nobody reads. Two invariants keep the namespace closed:

* **call sites** — the name argument of the telemetry API
  (``telemetry.inc(...)``, ``observe``, ``set_gauge``, ``span``) must
  be a constant read from the central registry module
  (``repro.telemetry.names``); raw string literals, f-strings and
  computed names are flagged;
* **the registry itself** — every constant in
  ``repro.telemetry.names`` must be a unique, ``dot.scoped``
  lower-case string literal.

Test code and the telemetry package internals (which necessarily
handle names as values) are exempt from the call-site check.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set, Tuple

from ..astutil import dotted_name
from ..config import (
    TELEMETRY_API_FUNCS,
    TELEMETRY_NAMES_MODULE,
    TELEMETRY_PACKAGE,
)
from ..engine import Finding, Rule, SourceFile

#: Shape of a legal metric name: at least two lower-case dot-separated
#: scopes (``layer.subsystem.metric``).
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")


class _TelemetryAliases:
    """Local names bound to the telemetry package / names module / API.

    The shared :class:`ImportAliases` helper cannot represent
    ``from .. import telemetry`` (a from-import with no module), which
    is the canonical instrumentation idiom here, so this rule carries
    its own resolver keyed on the *terminal component* of what each
    local name was imported from.
    """

    def __init__(self, tree: ast.Module):
        #: names bound to the telemetry package (or metrics module).
        self.telemetry_modules: Set[str] = set()
        #: names bound to the metric-name registry module.
        self.names_modules: Set[str] = set()
        #: from-imported API functions: local name -> api function.
        self.api_funcs: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    local = item.asname or item.name.split(".")[0]
                    if item.asname is None and "." in item.name:
                        # `import repro.telemetry` binds `repro`; the
                        # dotted access is resolved at the call site.
                        continue
                    tail = item.name.split(".")[-1]
                    if tail in ("telemetry", "metrics") and (
                        item.name == "telemetry"
                        or ".telemetry" in f".{item.name}"
                    ):
                        self.telemetry_modules.add(local)
                    elif tail == "names" and "telemetry" in item.name:
                        self.names_modules.add(local)
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                tail = module.split(".")[-1] if module else ""
                for item in node.names:
                    local = item.asname or item.name
                    if item.name == "telemetry":
                        # `from .. import telemetry` / `from repro
                        # import telemetry`.
                        self.telemetry_modules.add(local)
                    elif item.name == "names" and tail == "telemetry":
                        # `from ..telemetry import names as ...`.
                        self.names_modules.add(local)
                    elif item.name == "metrics" and tail == "telemetry":
                        self.telemetry_modules.add(local)
                    elif tail in ("telemetry", "metrics") and (
                        item.name in TELEMETRY_API_FUNCS
                    ):
                        # `from ..telemetry import inc, span`.
                        self.api_funcs[local] = item.name

    def api_call(self, func: ast.AST) -> Optional[str]:
        """API function a call target resolves to, if any."""
        name = dotted_name(func)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            return self.api_funcs.get(parts[0])
        head, leaf = parts[0], parts[-1]
        if leaf not in TELEMETRY_API_FUNCS:
            return None
        if head in self.telemetry_modules and len(parts) == 2:
            return leaf
        # `repro.telemetry.inc(...)` via plain `import repro.telemetry`.
        if ".".join(parts[:-1]).endswith("telemetry"):
            return leaf
        return None

    def is_registry_constant(self, node: ast.AST) -> bool:
        """Whether ``node`` reads a constant off the names module."""
        if not isinstance(node, ast.Attribute):
            return False
        if not node.attr.isupper():
            return False
        base = dotted_name(node.value)
        if base is None:
            return False
        parts = base.split(".")
        if parts[0] in self.names_modules and len(parts) == 1:
            return True
        # `telemetry.names.CONST` / `repro.telemetry.names.CONST`.
        return parts[-1] == "names" and (
            parts[0] in self.telemetry_modules
            or base.endswith("telemetry.names")
        )


class TelemetryNameDiscipline(Rule):
    """RL006: metric names are registry constants, never built inline."""

    rule_id = "RL006"
    title = "telemetry metric-name discipline"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.module == TELEMETRY_NAMES_MODULE:
            yield from self._check_registry_module(source)
            return
        if source.is_test:
            return
        if source.module.startswith(TELEMETRY_PACKAGE):
            # The subsystem itself handles names as runtime values.
            return
        yield from self._check_call_sites(source)

    # -- call sites ------------------------------------------------------

    def _check_call_sites(self, source: SourceFile) -> Iterator[Finding]:
        aliases = _TelemetryAliases(source.tree)
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            api = aliases.api_call(node.func)
            if api is None:
                continue
            name_arg = self._name_argument(node)
            if name_arg is None:
                continue
            problem = self._name_problem(aliases, name_arg)
            if problem is not None:
                yield self.finding(
                    source,
                    name_arg,
                    f"metric name passed to `{api}()` {problem}; use a "
                    f"constant from `{TELEMETRY_NAMES_MODULE}`",
                )

    def _name_argument(self, node: ast.Call) -> Optional[ast.AST]:
        if node.args:
            return node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "name":
                return keyword.value
        return None

    def _name_problem(
        self, aliases: _TelemetryAliases, node: ast.AST
    ) -> Optional[str]:
        if aliases.is_registry_constant(node):
            return None
        if isinstance(node, ast.JoinedStr):
            return "is an f-string"
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return "is a raw string literal"
        if isinstance(node, ast.BinOp):
            return "is built by string arithmetic"
        if isinstance(node, ast.Call):
            return "is computed by a call"
        return "is not a registry constant"

    # -- the registry module itself --------------------------------------

    def _check_registry_module(
        self, source: SourceFile
    ) -> Iterator[Finding]:
        seen: Dict[str, Tuple[str, int]] = {}
        for node in source.tree.body:
            target = self._constant_target(node)
            if target is None:
                continue
            name, value_node = target
            if isinstance(value_node, ast.Constant) and isinstance(
                value_node.value, str
            ):
                value = value_node.value
                if METRIC_NAME_RE.match(value) is None:
                    yield self.finding(
                        source,
                        value_node,
                        f"metric name {value!r} is not dot.scoped "
                        "lower-case (expected `layer.subsystem.metric`)",
                    )
                elif value in seen:
                    other, line = seen[value]
                    yield self.finding(
                        source,
                        value_node,
                        f"metric name {value!r} duplicates `{other}` "
                        f"(line {line})",
                    )
                else:
                    seen[value] = (name, node.lineno)
            else:
                yield self.finding(
                    source,
                    node,
                    f"registry constant `{name}` must be a plain string "
                    "literal",
                )

    def _constant_target(
        self, node: ast.stmt
    ) -> Optional[Tuple[str, Optional[ast.AST]]]:
        """(name, value) of an UPPER_CASE module-level assignment."""
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            value = node.value
        elif isinstance(node, ast.AnnAssign):
            target = node.target
            value = node.value
        else:
            return None
        if not isinstance(target, ast.Name):
            return None
        name = target.id
        if name.startswith("__") or not name.isupper():
            return None
        return name, value
