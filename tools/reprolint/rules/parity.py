"""RL003 — kernel/scalar parity registry.

The batched kernels (``repro.kernels``) mirror the scalar models point
for point; benchmarks and the sweep tests rely on that contract. To
keep it from silently eroding, ``src/repro/kernels/parity.py`` holds an
explicit registry:

* ``PARITY`` — scalar callable -> its batched kernel mirror;
* ``SCALAR_ONLY`` — scalar callables with **no** kernel mirror, each
  with a written reason (registration side effects, object-returning
  helpers, conveniences already folded into a grid kernel, ...).

This project rule statically cross-checks the registry against the
actual source: every public scalar callable in the model modules must
appear in exactly one of the two tables, every ``PARITY`` value must
name a function that exists in ``repro.kernels``, stale entries are
flagged at their registry line, and every ``SCALAR_ONLY`` entry must
carry a non-empty reason.

Enumerated as "public scalar callables": module-level ``def``s and
plain instance methods of non-dataclass classes. Skipped: ``_private``
names, dunders, ``@property``/``@cached_property`` accessors, and
``@classmethod``/``@staticmethod`` constructors — none of those are
per-point numeric evaluations a grid kernel could mirror.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Dict, Iterator, NamedTuple, Optional, Set

from ..astutil import decorator_name
from ..config import (
    KERNELS_PACKAGE_NAME,
    KERNELS_PACKAGE_PATH,
    PARITY_REGISTRY_PATH,
    SCALAR_MODEL_MODULES,
)
from ..engine import Finding, ProjectRule

#: Method decorators excluded from the scalar-API enumeration.
_NON_SCALAR_DECORATORS = {
    "property",
    "cached_property",
    "classmethod",
    "staticmethod",
}


class _Entry(NamedTuple):
    """One registry dict entry with the value and both source anchors."""

    value: object
    key_line: int
    key_col: int
    value_line: int
    value_col: int


class _Registry(NamedTuple):
    parity: Dict[str, _Entry]
    scalar_only: Dict[str, _Entry]


class KernelScalarParity(ProjectRule):
    """RL003: the parity registry must match the code, both ways."""

    rule_id = "RL003"
    title = "kernel/scalar parity"

    def check_project(self, root: Path) -> Iterator[Finding]:
        registry_path = root / PARITY_REGISTRY_PATH
        registry = _load_registry(registry_path)
        if registry is None:
            yield _finding(
                registry_path,
                1,
                0,
                "parity registry missing: expected PARITY and "
                f"SCALAR_ONLY dict literals in {PARITY_REGISTRY_PATH}",
            )
            return

        scalars = _enumerate_scalars(root)
        kernels = _enumerate_kernels(root)

        registered = set(registry.parity) | set(registry.scalar_only)
        for name, site in sorted(scalars.items()):
            if name not in registered:
                yield _finding(
                    site.path,
                    site.line,
                    site.col,
                    f"public scalar callable `{name}` is not in the "
                    "parity registry; add a PARITY kernel mirror or a "
                    "SCALAR_ONLY entry with a reason",
                )

        for name, entry in sorted(registry.parity.items()):
            if name in registry.scalar_only:
                yield _finding(
                    registry_path,
                    entry.key_line,
                    entry.key_col,
                    f"`{name}` appears in both PARITY and SCALAR_ONLY; "
                    "pick one",
                )
            if name not in scalars:
                yield _finding(
                    registry_path,
                    entry.key_line,
                    entry.key_col,
                    f"stale PARITY entry: `{name}` is not a public "
                    "scalar callable of the model modules",
                )
            if not isinstance(entry.value, str):
                yield _finding(
                    registry_path,
                    entry.value_line,
                    entry.value_col,
                    f"PARITY[{name!r}] must be a dotted kernel name "
                    "string",
                )
            elif entry.value not in kernels:
                yield _finding(
                    registry_path,
                    entry.value_line,
                    entry.value_col,
                    f"PARITY[{name!r}] points at `{entry.value}`, "
                    f"which is not a function defined under "
                    f"{KERNELS_PACKAGE_NAME}",
                )

        for name, entry in sorted(registry.scalar_only.items()):
            if name not in scalars:
                yield _finding(
                    registry_path,
                    entry.key_line,
                    entry.key_col,
                    f"stale SCALAR_ONLY entry: `{name}` is not a "
                    "public scalar callable of the model modules",
                )
            if not (
                isinstance(entry.value, str) and entry.value.strip()
            ):
                yield _finding(
                    registry_path,
                    entry.value_line,
                    entry.value_col,
                    f"SCALAR_ONLY[{name!r}] needs a non-empty reason "
                    "explaining why no kernel mirror exists",
                )


class _ScalarSite(NamedTuple):
    path: Path
    line: int
    col: int


def _finding(path: Path, line: int, col: int, message: str) -> Finding:
    return Finding(
        rule_id=KernelScalarParity.rule_id,
        path=str(path),
        line=line,
        col=col,
        message=message,
    )


def _load_registry(path: Path) -> Optional[_Registry]:
    """Parse PARITY / SCALAR_ONLY dict literals out of the registry."""
    try:
        tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
    except (OSError, SyntaxError):
        return None
    tables: Dict[str, Dict[str, _Entry]] = {}
    for node in tree.body:
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if target.id not in ("PARITY", "SCALAR_ONLY"):
                continue
            if not isinstance(value, ast.Dict):
                continue
            table: Dict[str, _Entry] = {}
            for key, val in zip(value.keys, value.values):
                if not (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                ):
                    continue
                literal: object = (
                    val.value if isinstance(val, ast.Constant) else None
                )
                table[key.value] = _Entry(
                    value=literal,
                    key_line=key.lineno,
                    key_col=key.col_offset,
                    value_line=val.lineno,
                    value_col=val.col_offset,
                )
            tables[target.id] = table
    if "PARITY" not in tables or "SCALAR_ONLY" not in tables:
        return None
    return _Registry(
        parity=tables["PARITY"], scalar_only=tables["SCALAR_ONLY"]
    )


def _enumerate_scalars(root: Path) -> Dict[str, _ScalarSite]:
    """Public scalar callables of the model modules, keyed by full name."""
    scalars: Dict[str, _ScalarSite] = {}
    for module, rel_path in sorted(SCALAR_MODEL_MODULES.items()):
        path = root / rel_path
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        except (OSError, SyntaxError):
            continue
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                if node.name.startswith("_"):
                    continue
                scalars[f"{module}.{node.name}"] = _ScalarSite(
                    path, node.lineno, node.col_offset
                )
            elif isinstance(node, ast.ClassDef):
                if node.name.startswith("_") or _is_dataclass(node):
                    continue
                for item in node.body:
                    if not isinstance(item, ast.FunctionDef):
                        continue
                    if item.name.startswith("_"):
                        continue
                    if _method_decorators(item) & _NON_SCALAR_DECORATORS:
                        continue
                    name = f"{module}.{node.name}.{item.name}"
                    scalars[name] = _ScalarSite(
                        path, item.lineno, item.col_offset
                    )
    return scalars


def _enumerate_kernels(root: Path) -> Set[str]:
    """Dotted names of every function defined in the kernels package."""
    names: Set[str] = set()
    package = root / KERNELS_PACKAGE_PATH
    for path in sorted(package.glob("*.py")):
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), str(path))
        except (OSError, SyntaxError):
            continue
        if path.stem == "__init__":
            prefix = KERNELS_PACKAGE_NAME
        else:
            prefix = f"{KERNELS_PACKAGE_NAME}.{path.stem}"
        for node in tree.body:
            if isinstance(node, ast.FunctionDef):
                names.add(f"{prefix}.{node.name}")
    return names


def _is_dataclass(node: ast.ClassDef) -> bool:
    return any(
        decorator_name(dec) == "dataclass" for dec in node.decorator_list
    )


def _method_decorators(node: ast.FunctionDef) -> Set[str]:
    return {
        name
        for name in (
            decorator_name(dec) for dec in node.decorator_list
        )
        if name is not None
    }
