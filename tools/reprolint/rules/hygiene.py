"""RL005 — hot-path hygiene.

Three checks for the simulation/kernel hot paths:

* **slots** — dataclasses in the hot modules (``repro.sim``,
  ``repro.kernels``) are allocated per event / per grid; they must
  declare ``slots=True`` to skip the per-instance ``__dict__``.
* **float equality** — ``==`` / ``!=`` between floats is
  representation-dependent; outside tests, compare with a tolerance
  (``math.isclose``) or an ordered bound (``<=``). Flagged when either
  side is a float literal with a fractional part or a name/attribute
  carrying a float-typical unit suffix next to a float literal.
* **cancel/schedule churn** — inside ``repro.sim``, a statement that
  cancels an event on a queue immediately followed by a statement that
  schedules on the same queue is the reschedule-churn pattern the
  incremental engine elides when the recomputed time is unchanged.
  Sites where the pair is intentional (the elision guard already ran)
  carry a reasoned suppression.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from ..astutil import decorator_name
from ..config import HOT_DATACLASS_MODULES
from ..engine import Finding, Rule, SourceFile


def _in_hot_scope(module: str) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in HOT_DATACLASS_MODULES
    )


def _in_sim_scope(module: str) -> bool:
    return module == "repro.sim" or module.startswith("repro.sim.")


class HotPathHygiene(Rule):
    """RL005: slots on hot dataclasses; no ``==`` on floats."""

    rule_id = "RL005"
    title = "hot-path hygiene"

    def check(self, source: SourceFile) -> Iterator[Finding]:
        if source.is_test:
            return
        hot = _in_hot_scope(source.module)
        for node in ast.walk(source.tree):
            if hot and isinstance(node, ast.ClassDef):
                yield from self._check_slots(source, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_float_eq(source, node)
        if _in_sim_scope(source.module):
            yield from self._check_cancel_reschedule(source)

    # -- dataclass slots -------------------------------------------------------

    def _check_slots(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        decorator = _dataclass_decorator(node)
        if decorator is None:
            return
        if isinstance(decorator, ast.Call):
            for keyword in decorator.keywords:
                if keyword.arg == "slots":
                    value = keyword.value
                    if (
                        isinstance(value, ast.Constant)
                        and value.value is True
                    ):
                        return
                    break
        yield self.finding(
            source,
            node,
            f"hot-path dataclass `{node.name}` must declare "
            "@dataclass(..., slots=True)",
        )

    # -- float equality --------------------------------------------------------

    def _check_float_eq(
        self, source: SourceFile, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            literal = _float_literal(left) or _float_literal(right)
            if literal is None:
                continue
            sign = "==" if isinstance(op, ast.Eq) else "!="
            yield self.finding(
                source,
                node,
                f"float `{sign} {literal}` comparison is "
                "representation-dependent; use math.isclose() or an "
                "ordered bound (`<=`)",
            )
            return


    # -- cancel/schedule churn -------------------------------------------------

    def _check_cancel_reschedule(
        self, source: SourceFile
    ) -> Iterator[Finding]:
        definitions = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        for statements in _statement_lists(source.tree):
            for first, second in zip(statements, statements[1:]):
                if isinstance(first, definitions) or isinstance(
                    second, definitions
                ):
                    # Sibling defs are not consecutively *executed*.
                    continue
                receivers = {
                    ast.dump(call.func.value)
                    for call in _method_calls(second, "schedule")
                }
                if not receivers:
                    continue
                for call in _method_calls(first, "cancel"):
                    if ast.dump(call.func.value) in receivers:
                        yield self.finding(
                            source,
                            call,
                            "cancel immediately followed by schedule on "
                            "the same queue is reschedule churn; recompute "
                            "the time first and elide the pair when it is "
                            "unchanged",
                        )


def _statement_lists(tree: ast.Module) -> Iterator[list]:
    """Every statement body (module, class, function, branch, loop)."""
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            statements = getattr(node, field, None)
            if isinstance(statements, list) and len(statements) > 1:
                yield statements


def _method_calls(node: ast.AST, name: str) -> Iterator[ast.Call]:
    """All ``<receiver>.<name>(...)`` calls anywhere inside ``node``."""
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and sub.func.attr == name
        ):
            yield sub


def _dataclass_decorator(node: ast.ClassDef) -> Optional[ast.AST]:
    for dec in node.decorator_list:
        if decorator_name(dec) == "dataclass":
            return dec
    return None


def _float_literal(node: ast.AST) -> Optional[str]:
    """Display form of a float constant operand, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, float):
        return repr(node.value)
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        inner = _float_literal(node.operand)
        if inner is not None:
            sign = "-" if isinstance(node.op, ast.USub) else "+"
            return f"{sign}{inner}"
    return None
