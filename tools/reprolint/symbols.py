"""Per-file analysis summaries for the whole-program passes.

A :class:`FileSummary` is everything the interprocedural rules (RL008
units inference, RL009 effect propagation) and the incremental cache
need to know about one file *without re-parsing it*: its functions and
methods, their parameter/return unit signatures, the call sites they
contain (with the units of every argument), their direct effect sets,
and the modules they import.

Units are carried as small JSON-serializable **terms** so summaries can
round-trip through ``.reprolint-cache/``:

* ``{"k": "u", "u": "mV", "s": "strong"|"weak", "why": [...]}`` — a
  concrete unit with its provenance chain;
* ``{"k": "c", "f": "repro.vmin.model.VminModel.evaluate", "why": []}``
  — the return unit of a (possibly not-yet-resolved) callee;
* ``{"k": "m"|"d", "a": term, "b": term}`` — a ``*``/``/`` composition;
* ``None`` — unknown.

Terms are *built* here from local evidence (``typing.Annotated`` unit
aliases, ``repro.units`` converter calls, ``*_mv``-style name suffixes)
and *resolved* across function boundaries by
:mod:`reprolint.unitflow`.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .astutil import decorator_name, dotted_name, name_tokens
from .config import (
    BUILTIN_UNIT_ALIASES,
    CACHE_KEY_DECORATOR,
    DIMENSIONLESS,
    GLOBAL_NP_RANDOM_FUNCS,
    GLOBAL_RANDOM_FUNCS,
    MAGIC_FACTORS,
    SUFFIX_UNITS,
    UNIT_CONVERTERS,
    WALL_CLOCK_CALLS,
)

Term = Optional[Dict[str, Any]]

#: Builtins that return their (first) argument unchanged, unit-wise.
_PASSTHROUGH_BUILTINS = frozenset({"float", "int", "abs", "round"})

#: Builtins whose arguments must share a unit and whose result keeps it.
_UNIFYING_BUILTINS = frozenset({"min", "max"})


def unit_term(unit: str, strength: str, why: List[str]) -> Dict[str, Any]:
    """A concrete-unit term."""
    return {"k": "u", "u": unit, "s": strength, "why": why}


def call_term(callee: str, why: List[str]) -> Dict[str, Any]:
    """A term standing for the return unit of ``callee``."""
    return {"k": "c", "f": callee, "why": why}


# -- summary dataclasses -------------------------------------------------------


@dataclass
class ParamInfo:
    """One parameter's declared or heuristic unit."""

    name: str
    unit: Optional[str] = None
    #: "annotation" (strong) or "suffix" (weak); "" when no unit.
    source: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "unit": self.unit, "source": self.source}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ParamInfo":
        return cls(
            name=data["name"], unit=data["unit"], source=data["source"]
        )


@dataclass
class CallArg:
    """One argument of a call site: slot, unit term and location."""

    #: Positional index as int, or the keyword name.
    slot: object
    term: Term
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "slot": self.slot,
            "term": self.term,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallArg":
        return cls(
            slot=data["slot"],
            term=data["term"],
            line=data["line"],
            col=data["col"],
        )


@dataclass
class CallSite:
    """One call expression, resolved as far as local evidence allows."""

    #: The call target as written (``units.mv_to_v``, ``self.audit``).
    display: str
    #: Absolute resolved qualname, ``?.attr`` for a method call on an
    #: object of unknown type, or ``""`` when unresolvable.
    callee: str
    line: int
    col: int
    args: List[CallArg] = field(default_factory=list)
    #: Whether the call supplies the receiver implicitly (``self.m()``
    #: or ``obj.m()``): positional args then map to params[1:].
    instance_call: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "display": self.display,
            "callee": self.callee,
            "line": self.line,
            "col": self.col,
            "args": [arg.to_dict() for arg in self.args],
            "instance_call": self.instance_call,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(
            display=data["display"],
            callee=data["callee"],
            line=data["line"],
            col=data["col"],
            args=[CallArg.from_dict(a) for a in data["args"]],
            instance_call=data["instance_call"],
        )


@dataclass
class AddObligation:
    """Additive/comparison use whose operand units must agree."""

    op: str
    left: Term
    right: Term
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "op": self.op,
            "left": self.left,
            "right": self.right,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AddObligation":
        return cls(
            op=data["op"],
            left=data["left"],
            right=data["right"],
            line=data["line"],
            col=data["col"],
        )


@dataclass
class EffectInfo:
    """One direct effect occurrence inside a function body."""

    #: "wall_clock" | "env_read" | "global_stmt" | "unseeded_rng"
    #: | "global_rng"
    kind: str
    detail: str
    line: int
    col: int

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "detail": self.detail,
            "line": self.line,
            "col": self.col,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EffectInfo":
        return cls(
            kind=data["kind"],
            detail=data["detail"],
            line=data["line"],
            col=data["col"],
        )


@dataclass
class FunctionInfo:
    """Unit/effect signature of one function or method."""

    qualname: str
    name: str
    line: int
    col: int
    is_method: bool
    is_cache_key: bool
    params: List[ParamInfo] = field(default_factory=list)
    #: Declared return unit (from an annotation), if any.
    return_unit: Optional[str] = None
    #: Terms of every ``return`` expression (capped).
    return_terms: List[Term] = field(default_factory=list)
    calls: List[CallSite] = field(default_factory=list)
    adds: List[AddObligation] = field(default_factory=list)
    effects: List[EffectInfo] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname,
            "name": self.name,
            "line": self.line,
            "col": self.col,
            "is_method": self.is_method,
            "is_cache_key": self.is_cache_key,
            "params": [p.to_dict() for p in self.params],
            "return_unit": self.return_unit,
            "return_terms": self.return_terms,
            "calls": [c.to_dict() for c in self.calls],
            "adds": [a.to_dict() for a in self.adds],
            "effects": [e.to_dict() for e in self.effects],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            name=data["name"],
            line=data["line"],
            col=data["col"],
            is_method=data["is_method"],
            is_cache_key=data["is_cache_key"],
            params=[ParamInfo.from_dict(p) for p in data["params"]],
            return_unit=data["return_unit"],
            return_terms=list(data["return_terms"]),
            calls=[CallSite.from_dict(c) for c in data["calls"]],
            adds=[AddObligation.from_dict(a) for a in data["adds"]],
            effects=[EffectInfo.from_dict(e) for e in data["effects"]],
        )


@dataclass
class FileSummary:
    """Everything the whole-program passes need from one file."""

    path: str
    module: str
    is_test: bool
    sha256: str
    #: Absolute module names this file imports (dependency edges).
    dep_modules: List[str] = field(default_factory=list)
    #: ``Name = Annotated[..., Unit("mV")]`` aliases declared here.
    unit_aliases: Dict[str, str] = field(default_factory=dict)
    functions: List[FunctionInfo] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "module": self.module,
            "is_test": self.is_test,
            "sha256": self.sha256,
            "dep_modules": self.dep_modules,
            "unit_aliases": self.unit_aliases,
            "functions": [f.to_dict() for f in self.functions],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FileSummary":
        return cls(
            path=data["path"],
            module=data["module"],
            is_test=data["is_test"],
            sha256=data["sha256"],
            dep_modules=list(data["dep_modules"]),
            unit_aliases=dict(data["unit_aliases"]),
            functions=[
                FunctionInfo.from_dict(f) for f in data["functions"]
            ],
        )


def content_hash(data: bytes) -> str:
    """Content hash used as the cache key of one file."""
    return hashlib.sha256(data).hexdigest()


# -- import resolution ---------------------------------------------------------


class ModuleImports:
    """Local alias maps with relative imports resolved to absolute."""

    def __init__(self, tree: ast.Module, module: str):
        #: alias -> absolute module ("np" -> "numpy").
        self.modules: Dict[str, str] = {}
        #: alias -> absolute "module.object" for from-imports.
        self.objects: Dict[str, str] = {}
        #: every absolute module named by an import.
        self.dep_modules: List[str] = []
        package_parts = module.split(".")[:-1] if module else []
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    alias = item.asname or item.name.split(".")[0]
                    self.modules[alias] = item.name
                    self.dep_modules.append(item.name)
            elif isinstance(node, ast.ImportFrom):
                origin = self._absolute_origin(node, package_parts)
                if origin is None:
                    continue
                self.dep_modules.append(origin)
                for item in node.names:
                    if item.name == "*":
                        continue
                    self.objects[item.asname or item.name] = (
                        f"{origin}.{item.name}"
                    )

    @staticmethod
    def _absolute_origin(
        node: ast.ImportFrom, package_parts: List[str]
    ) -> Optional[str]:
        if node.level == 0:
            return node.module
        if node.level > len(package_parts):
            return node.module  # best effort outside the package
        base = package_parts[: len(package_parts) - node.level + 1]
        if node.module:
            return ".".join(base + [node.module])
        return ".".join(base) if base else None


# -- annotation handling -------------------------------------------------------


def _inline_annotated_unit(node: ast.AST) -> Optional[str]:
    """Unit of an inline ``Annotated[T, Unit("mV")]`` expression."""
    if not isinstance(node, ast.Subscript):
        return None
    head = dotted_name(node.value)
    if head is None or head.split(".")[-1] != "Annotated":
        return None
    elts = (
        node.slice.elts if isinstance(node.slice, ast.Tuple) else []
    )
    for elt in elts[1:]:
        if (
            isinstance(elt, ast.Call)
            and decorator_name(elt.func) == "Unit"
            and elt.args
            and isinstance(elt.args[0], ast.Constant)
            and isinstance(elt.args[0].value, str)
        ):
            return elt.args[0].value
    return None


class _AnnotationResolver:
    """Resolves annotation expressions to declared units."""

    def __init__(
        self, imports: ModuleImports, local_aliases: Dict[str, str]
    ):
        self.imports = imports
        self.local_aliases = local_aliases

    def unit_of(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        inline = _inline_annotated_unit(node)
        if inline is not None:
            return inline
        if isinstance(node, ast.Subscript):
            # Optional[Millivolts] and friends: look inside.
            head = dotted_name(node.value)
            if head is not None and head.split(".")[-1] == "Optional":
                return self.unit_of(node.slice)
            return None
        name = dotted_name(node)
        if name is None:
            return None
        parts = name.split(".")
        if len(parts) == 1:
            if parts[0] in self.local_aliases:
                return self.local_aliases[parts[0]]
            origin = self.imports.objects.get(parts[0])
            if origin is not None:
                return BUILTIN_UNIT_ALIASES.get(origin)
            return None
        head_module = self.imports.modules.get(parts[0])
        if head_module is not None:
            return BUILTIN_UNIT_ALIASES.get(
                ".".join([head_module] + parts[1:])
            )
        return None


def suffix_unit(identifier: str) -> Optional[str]:
    """Unit implied by an identifier's trailing snake_case token.

    ALL-CAPS names (module constants like ``GHZ``) are exempt: their
    token is the unit *name*, not a claim about the value's unit.
    Single-character names (``v``, ``s`` as loop variables) are too
    generic to carry unit evidence and never match.
    """
    if identifier.isupper() or len(identifier) <= 1:
        return None
    tokens = name_tokens(identifier)
    if not tokens:
        return None
    return SUFFIX_UNITS.get(tokens[-1])


def module_unit_aliases(tree: ast.Module) -> Dict[str, str]:
    """``Name = Annotated[..., Unit("mV")]`` assignments in a module."""
    aliases: Dict[str, str] = {}
    for node in tree.body:
        if not isinstance(node, ast.Assign) or len(node.targets) != 1:
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        unit = _inline_annotated_unit(node.value)
        if unit is not None:
            aliases[target.id] = unit
    return aliases


# -- effect detection ----------------------------------------------------------


def _call_origin(
    imports: ModuleImports, func: ast.AST
) -> Optional[Tuple[str, str]]:
    """(origin module, function name) of a call target, if resolvable."""
    name = dotted_name(func)
    if name is None:
        return None
    parts = name.split(".")
    head, rest = parts[0], parts[1:]
    origin = imports.modules.get(head)
    if origin is not None and rest:
        return ".".join([origin] + rest[:-1]), rest[-1]
    imported = imports.objects.get(head)
    if imported is not None:
        base, leaf = imported.rsplit(".", 1)
        if not rest:
            return base, leaf
        return imported, rest[-1]
    return None


def _walk_own_body(func: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body, excluding nested function/lambda bodies."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def direct_effects(
    func: ast.AST, imports: ModuleImports
) -> List[EffectInfo]:
    """Direct (non-transitive) effects inside one function body."""
    effects: List[EffectInfo] = []

    def add(node: ast.AST, kind: str, detail: str) -> None:
        effects.append(
            EffectInfo(
                kind=kind,
                detail=detail,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    for node in _walk_own_body(func):
        if isinstance(node, ast.Global):
            add(
                node,
                "global_stmt",
                f"declares `global {', '.join(node.names)}`",
            )
        elif isinstance(node, ast.Call):
            origin = _call_origin(imports, node.func)
            if origin is None:
                continue
            module, leaf = origin
            if (module.split(".")[-1], leaf) in WALL_CLOCK_CALLS:
                add(node, "wall_clock", f"reads `{module}.{leaf}()`")
            elif module == "os" and leaf == "getenv":
                add(node, "env_read", "reads `os.getenv()`")
            elif module == "os.environ" and leaf == "get":
                add(node, "env_read", "reads `os.environ.get()`")
            elif (
                module in ("random", "numpy.random")
                and leaf == "default_rng"
                and not node.args
            ):
                add(node, "unseeded_rng", "constructs unseeded RNG")
            elif module == "random" and leaf == "Random" and not node.args:
                add(node, "unseeded_rng", "constructs unseeded RNG")
            elif module == "random" and leaf in GLOBAL_RANDOM_FUNCS:
                add(
                    node,
                    "global_rng",
                    f"draws from global `random.{leaf}()`",
                )
            elif (
                module == "numpy.random"
                and leaf in GLOBAL_NP_RANDOM_FUNCS
            ):
                add(
                    node,
                    "global_rng",
                    f"draws from global `np.random.{leaf}()`",
                )
        elif isinstance(node, (ast.Attribute, ast.Subscript)):
            target = (
                node.value if isinstance(node, ast.Subscript) else node
            )
            name = dotted_name(target)
            if name is None:
                continue
            parts = name.split(".")
            head = imports.modules.get(parts[0]) or parts[0]
            resolved = ".".join([head] + parts[1:])
            if resolved == "os.environ" or resolved.startswith(
                "os.environ."
            ):
                add(node, "env_read", "reads `os.environ`")
            elif imports.objects.get(parts[0]) == "os.environ":
                add(node, "env_read", "reads `os.environ`")
    return effects


# -- the summary builder -------------------------------------------------------


class _FunctionAnalyzer:
    """Builds one :class:`FunctionInfo` from a function's AST."""

    def __init__(
        self,
        func: ast.FunctionDef,
        qualname: str,
        module: str,
        imports: ModuleImports,
        annotations: _AnnotationResolver,
        local_functions: Dict[str, str],
        class_name: Optional[str],
        class_methods: Dict[str, str],
    ):
        self.func = func
        self.module = module
        self.imports = imports
        self.annotations = annotations
        self.local_functions = local_functions
        self.class_name = class_name
        self.class_methods = class_methods
        self.info = FunctionInfo(
            qualname=qualname,
            name=func.name,
            line=func.lineno,
            col=func.col_offset,
            is_method=class_name is not None,
            is_cache_key=any(
                decorator_name(dec) == CACHE_KEY_DECORATOR
                for dec in func.decorator_list
            ),
        )
        self.env: Dict[str, Term] = {}

    def run(self) -> FunctionInfo:
        self._collect_params()
        self._seed_env_from_params()
        self._build_env(self.func.body)
        self._collect_uses()
        self.info.return_unit = self.annotations.unit_of(
            self.func.returns
        )
        self.info.effects = direct_effects(self.func, self.imports)
        return self.info

    # -- parameters ------------------------------------------------------------

    def _all_args(self) -> List[ast.arg]:
        args = self.func.args
        return [*args.posonlyargs, *args.args, *args.kwonlyargs]

    def _collect_params(self) -> None:
        for index, arg in enumerate(self._all_args()):
            if index == 0 and self.info.is_method and arg.arg in (
                "self",
                "cls",
            ):
                self.info.params.append(ParamInfo(name=arg.arg))
                continue
            unit = self.annotations.unit_of(arg.annotation)
            if unit is not None:
                self.info.params.append(
                    ParamInfo(arg.arg, unit, "annotation")
                )
                continue
            heuristic = suffix_unit(arg.arg)
            self.info.params.append(
                ParamInfo(
                    arg.arg,
                    heuristic,
                    "suffix" if heuristic is not None else "",
                )
            )

    def _seed_env_from_params(self) -> None:
        for param in self.info.params:
            if param.unit is None:
                continue
            why = (
                [
                    f"parameter `{param.name}` of "
                    f"`{self.info.qualname}` is annotated "
                    f"{param.unit}"
                ]
                if param.source == "annotation"
                else [
                    f"parameter `{param.name}` carries the unit "
                    f"suffix ({param.unit})"
                ]
            )
            strength = (
                "strong" if param.source == "annotation" else "weak"
            )
            self.env[param.name] = unit_term(param.unit, strength, why)

    # -- local environment -----------------------------------------------------

    def _build_env(self, body: List[ast.stmt]) -> None:
        for stmt in body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target = stmt.targets[0]
                if isinstance(target, ast.Name):
                    self._bind(target.id, stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                unit = self.annotations.unit_of(stmt.annotation)
                if unit is not None:
                    self.env.setdefault(
                        stmt.target.id,
                        unit_term(
                            unit,
                            "strong",
                            [
                                f"`{stmt.target.id}` is annotated "
                                f"{unit}"
                            ],
                        ),
                    )
                elif stmt.value is not None:
                    self._bind(stmt.target.id, stmt.value)
            elif isinstance(
                stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            for child_body in _stmt_bodies(stmt):
                self._build_env(child_body)

    def _bind(self, name: str, value: ast.expr) -> None:
        if name in self.env:
            return
        term = self.term_of(value)
        if term is not None:
            self.env[name] = _with_step(
                term, f"assigned to `{name}`"
            )

    # -- use collection --------------------------------------------------------

    def _collect_uses(self) -> None:
        cap = 0
        for node in _walk_own_body(self.func):
            if isinstance(node, ast.Call):
                site = self._call_site(node)
                if site is not None:
                    self.info.calls.append(site)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                self._add_obligation(
                    "+" if isinstance(node.op, ast.Add) else "-",
                    node.left,
                    node.right,
                    node,
                )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub)
            ):
                self._add_obligation(
                    "+=" if isinstance(node.op, ast.Add) else "-=",
                    node.target,
                    node.value,
                    node,
                )
            elif (
                isinstance(node, ast.Compare)
                and len(node.comparators) == 1
            ):
                self._add_obligation(
                    "compare", node.left, node.comparators[0], node
                )
            elif isinstance(node, ast.Return) and node.value is not None:
                if cap < 8:
                    cap += 1
                    self.info.return_terms.append(
                        self.term_of(node.value)
                    )

    def _add_obligation(
        self, op: str, left: ast.expr, right: ast.expr, node: ast.AST
    ) -> None:
        left_term = self.term_of(left)
        right_term = self.term_of(right)
        if left_term is None or right_term is None:
            return
        self.info.adds.append(
            AddObligation(
                op=op,
                left=left_term,
                right=right_term,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
            )
        )

    # -- call resolution -------------------------------------------------------

    def _resolve_callee(
        self, call: ast.Call
    ) -> Optional[Tuple[str, str, bool]]:
        """(display, resolved-or-?, instance_call) of a call target."""
        dotted = dotted_name(call.func)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if len(parts) == 1:
            name = parts[0]
            if name in self.local_functions:
                return dotted, self.local_functions[name], False
            origin = self.imports.objects.get(name)
            if origin is not None:
                return dotted, origin, False
            if self.class_name is not None and name in self.class_methods:
                return dotted, self.class_methods[name], False
            return dotted, "", False
        head = parts[0]
        if head in ("self", "cls") and self.class_name is not None:
            if len(parts) == 2 and parts[1] in self.class_methods:
                return dotted, self.class_methods[parts[1]], True
            return dotted, "?." + parts[-1], True
        head_module = self.imports.modules.get(head)
        if head_module is not None:
            return dotted, ".".join([head_module] + parts[1:]), False
        origin = self.imports.objects.get(head)
        if origin is not None:
            return dotted, ".".join([origin] + parts[1:]), False
        # A method call on an object of unknown type: resolvable at
        # program level when the method name is globally unique.
        return dotted, "?." + parts[-1], True

    def _call_site(self, call: ast.Call) -> Optional[CallSite]:
        resolved = self._resolve_callee(call)
        if resolved is None:
            return None
        display, callee, instance_call = resolved
        if not callee:
            return None
        args: List[CallArg] = []
        for index, arg in enumerate(call.args):
            if isinstance(arg, ast.Starred):
                continue
            args.append(
                CallArg(
                    slot=index,
                    term=self.term_of(arg),
                    line=arg.lineno,
                    col=arg.col_offset,
                )
            )
        for keyword in call.keywords:
            if keyword.arg is None:
                continue
            args.append(
                CallArg(
                    slot=keyword.arg,
                    term=self.term_of(keyword.value),
                    line=keyword.value.lineno,
                    col=keyword.value.col_offset,
                )
            )
        return CallSite(
            display=display,
            callee=callee,
            line=call.lineno,
            col=call.col_offset,
            args=args,
            instance_call=instance_call,
        )

    # -- expression terms ------------------------------------------------------

    def term_of(self, node: ast.expr) -> Term:
        """Unit term of an expression, from local evidence only."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(
                node.value, (int, float)
            ):
                return None
            return unit_term(DIMENSIONLESS, "strong", [])
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            unit = suffix_unit(node.id)
            if unit is not None:
                return unit_term(
                    unit,
                    "weak",
                    [f"`{node.id}` carries the unit suffix ({unit})"],
                )
            return None
        if isinstance(node, ast.Attribute):
            unit = suffix_unit(node.attr)
            if unit is not None:
                return unit_term(
                    unit,
                    "weak",
                    [
                        f"`{dotted_name(node) or node.attr}` carries "
                        f"the unit suffix ({unit})"
                    ],
                )
            return None
        if isinstance(node, ast.Subscript):
            return self.term_of(node.value)
        if isinstance(node, ast.UnaryOp):
            return self.term_of(node.operand)
        if isinstance(node, ast.IfExp):
            return self.term_of(node.body) or self.term_of(node.orelse)
        if isinstance(node, ast.Call):
            return self._call_return_term(node)
        if isinstance(node, ast.BinOp):
            return self._binop_term(node)
        return None

    def _binop_term(self, node: ast.BinOp) -> Term:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            left = self.term_of(node.left)
            return left if left is not None else self.term_of(node.right)
        if not isinstance(node.op, (ast.Mult, ast.Div)):
            return None
        left = self.term_of(node.left)
        right = self.term_of(node.right)
        # Multiplying/dividing by a magic power of ten silently
        # re-scales (RL001's domain); the result unit is unknowable.
        for operand in (node.left, node.right):
            if (
                isinstance(operand, ast.Constant)
                and isinstance(operand.value, (int, float))
                and not isinstance(operand.value, bool)
                and float(operand.value) in MAGIC_FACTORS
            ):
                return None
        if left is None or right is None:
            return None
        kind = "m" if isinstance(node.op, ast.Mult) else "d"
        return {"k": kind, "a": left, "b": right}

    def _call_return_term(self, node: ast.Call) -> Term:
        name = dotted_name(node.func)
        if name is not None:
            leaf = name.split(".")[-1]
            if leaf in _PASSTHROUGH_BUILTINS and len(name.split(".")) == 1:
                if node.args:
                    return self.term_of(node.args[0])
                return None
            if leaf in _UNIFYING_BUILTINS and len(name.split(".")) == 1:
                for arg in node.args:
                    term = self.term_of(arg)
                    if term is not None:
                        return term
                return None
        resolved = self._resolve_callee(node)
        if resolved is None:
            return None
        display, callee, _ = resolved
        if not callee:
            return None
        converter = UNIT_CONVERTERS.get(callee)
        if converter is not None:
            _, return_unit = converter
            if return_unit is None:
                return None
            return unit_term(
                return_unit,
                "strong",
                [
                    f"`{display}(...)` returns {return_unit} "
                    "(repro.units converter)"
                ],
            )
        return call_term(callee, [f"returned by `{display}(...)`"])


def _stmt_bodies(stmt: ast.stmt) -> List[List[ast.stmt]]:
    """Nested statement lists of a control-flow statement."""
    bodies: List[List[ast.stmt]] = []
    for attr in ("body", "orelse", "finalbody"):
        block = getattr(stmt, attr, None)
        if isinstance(block, list) and block and isinstance(
            block[0], ast.stmt
        ):
            bodies.append(block)
    for handler in getattr(stmt, "handlers", []):
        bodies.append(handler.body)
    return bodies


def _with_step(term: Term, step: str) -> Term:
    if term is None:
        return None
    if term.get("k") in ("u", "c"):
        copied = dict(term)
        copied["why"] = list(term.get("why", [])) + [step]
        return copied
    return term


def build_summary(
    tree: ast.Module,
    path: str,
    module: str,
    is_test: bool,
    sha256: str,
) -> FileSummary:
    """Build the whole-program summary of one parsed file."""
    imports = ModuleImports(tree, module)
    unit_aliases = module_unit_aliases(tree)
    annotations = _AnnotationResolver(imports, unit_aliases)
    summary = FileSummary(
        path=path,
        module=module,
        is_test=is_test,
        sha256=sha256,
        dep_modules=sorted(set(imports.dep_modules)),
        unit_aliases=unit_aliases,
    )
    local_functions = {
        node.name: f"{module}.{node.name}" if module else node.name
        for node in tree.body
        if isinstance(node, ast.FunctionDef)
    }
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            summary.functions.append(
                _FunctionAnalyzer(
                    node,
                    local_functions[node.name],
                    module,
                    imports,
                    annotations,
                    local_functions,
                    None,
                    {},
                ).run()
            )
        elif isinstance(node, ast.ClassDef):
            prefix = f"{module}.{node.name}" if module else node.name
            methods = {
                item.name: f"{prefix}.{item.name}"
                for item in node.body
                if isinstance(item, ast.FunctionDef)
            }
            for item in node.body:
                if not isinstance(item, ast.FunctionDef):
                    continue
                summary.functions.append(
                    _FunctionAnalyzer(
                        item,
                        methods[item.name],
                        module,
                        imports,
                        annotations,
                        local_functions,
                        node.name,
                        methods,
                    ).run()
                )
    return summary
