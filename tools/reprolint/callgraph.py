"""Project symbol table and call graph over file summaries.

A :class:`Program` is the whole-program view the interprocedural rules
run against: every :class:`~reprolint.symbols.FileSummary` keyed by
repo-relative path, a symbol table of function qualnames, an index of
method names for unique-name resolution of ``obj.method(...)`` calls,
and the call/dependency edges derived from them.

Summaries may come from a fresh parse or from the incremental cache
(:mod:`reprolint.cache`) — the graph neither knows nor cares.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from .symbols import CallSite, FileSummary, FunctionInfo


class Program:
    """Whole-program model assembled from per-file summaries."""

    def __init__(self, summaries: Dict[str, FileSummary]):
        #: repo-relative path -> summary.
        self.summaries = summaries
        #: qualname -> (summary, function).
        self.functions: Dict[str, Tuple[FileSummary, FunctionInfo]] = {}
        #: method/function name -> list of qualnames carrying it.
        self.by_name: Dict[str, List[str]] = {}
        #: module -> path, for import-edge resolution.
        self.module_paths: Dict[str, str] = {}
        for path in sorted(summaries):
            summary = summaries[path]
            if summary.module:
                self.module_paths[summary.module] = path
            for func in summary.functions:
                self.functions[func.qualname] = (summary, func)
                self.by_name.setdefault(func.name, []).append(
                    func.qualname
                )

    # -- call resolution -------------------------------------------------------

    def resolve_callee(
        self, call: CallSite
    ) -> Optional[Tuple[FileSummary, FunctionInfo]]:
        """Summary/function of a call site's target, if known.

        ``?.name`` targets (method calls on objects of unknown type)
        resolve only when exactly one function in the program carries
        the name — ambiguity means no edge, never a guess.
        """
        return self.resolve_qualname(call.callee)

    def resolve_qualname(
        self, callee: str
    ) -> Optional[Tuple[FileSummary, FunctionInfo]]:
        """Resolve a summary-recorded callee qualname."""
        if not callee:
            return None
        if callee.startswith("?."):
            candidates = self.by_name.get(callee[2:], [])
            if len(candidates) != 1:
                return None
            return self.functions[candidates[0]]
        return self.functions.get(callee)

    # -- call graph ------------------------------------------------------------

    def call_edges(
        self, func: FunctionInfo
    ) -> Iterator[Tuple[CallSite, FileSummary, FunctionInfo]]:
        """Resolved outgoing edges of one function."""
        for call in func.calls:
            resolved = self.resolve_callee(call)
            if resolved is not None:
                yield call, resolved[0], resolved[1]

    # -- file dependency graph -------------------------------------------------

    def file_dependencies(self) -> Dict[str, Set[str]]:
        """path -> set of paths it depends on (imports or calls into)."""
        deps: Dict[str, Set[str]] = {path: set() for path in self.summaries}
        for path, summary in self.summaries.items():
            for module in summary.dep_modules:
                target = self._module_file(module)
                if target is not None and target != path:
                    deps[path].add(target)
            for func in summary.functions:
                for call in func.calls:
                    resolved = self.resolve_callee(call)
                    if resolved is not None and resolved[0].path != path:
                        deps[path].add(resolved[0].path)
        return deps

    def _module_file(self, module: str) -> Optional[str]:
        """Path providing ``module``, walking up dotted prefixes.

        ``from repro.vmin.model import X`` depends on
        ``src/repro/vmin/model.py``; importing a name from a package
        ``__init__`` resolves to the package module itself.
        """
        probe = module
        while probe:
            path = self.module_paths.get(probe)
            if path is not None:
                return path
            if "." not in probe:
                return None
            probe = probe.rsplit(".", 1)[0]
        return None


def dependents_closure(
    deps: Dict[str, Set[str]], changed: Set[str]
) -> Set[str]:
    """Transitive dependents of ``changed`` (excluding ``changed``).

    ``deps`` maps each path to the paths it depends on; the closure
    walks the reversed edges, so editing a callee invalidates every
    file whose analysis could observe the edit.
    """
    reverse: Dict[str, Set[str]] = {}
    for path, targets in deps.items():
        for target in targets:
            reverse.setdefault(target, set()).add(path)
    out: Set[str] = set()
    frontier = list(changed)
    while frontier:
        current = frontier.pop()
        for dependent in reverse.get(current, ()):
            if dependent not in out and dependent not in changed:
                out.add(dependent)
                frontier.append(dependent)
    return out
