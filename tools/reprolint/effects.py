"""RL009 — transitive effect propagation through the call graph.

RL004 and RL002 flag *direct* offenders only: a ``@cache_key_producer``
that itself reads ``os.environ``, a ``repro.sim`` function that itself
calls ``time.time()``. RL009 closes the loophole those rules leave
open — hiding the effect one call away:

* **cache-key purity, transitively**: a ``@cache_key_producer`` that
  reaches (at any call depth) a function reading the environment, the
  clock, ``global`` state or an RNG stream produces keys that are not
  pure functions of their inputs;
* **determinism contamination, transitively**: a function in a
  deterministic module (``repro.sim``, ``repro.vmin``, ...) that calls
  out to a helper *outside* those modules which reads a clock or a
  global RNG stream is just as irreproducible as calling it directly
  (the direct, in-scope case is already RL002's).

Effects are pruned at :data:`~reprolint.config.EFFECT_EXEMPT_MODULES`
(telemetry reads monotonic clocks by design; its timings are excluded
from every result fingerprint). Diagnostics carry the full call chain
from the root to the effect site.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from .callgraph import Program
from .config import (
    DETERMINISTIC_MODULES,
    EFFECT_EXEMPT_MODULES,
)
from .engine import Finding, ProgramRule
from .symbols import CallSite, EffectInfo, FileSummary, FunctionInfo

#: Effect kinds that break cache-key purity (RL004's set, closed
#: transitively, plus RNG effects — a key must not depend on any of
#: them).
PURITY_EFFECTS = frozenset(
    {"env_read", "wall_clock", "global_stmt", "unseeded_rng", "global_rng"}
)

#: Effect kinds that break run-to-run determinism (RL002's set).
DETERMINISM_EFFECTS = frozenset(
    {"wall_clock", "unseeded_rng", "global_rng"}
)

#: Call-graph traversal depth bound (paths longer than this are noise).
_MAX_DEPTH = 12


def _module_has_prefix(module: str, prefixes: Tuple[str, ...]) -> bool:
    return any(
        module == prefix or module.startswith(prefix + ".")
        for prefix in prefixes
    )


def in_deterministic_scope(module: str) -> bool:
    """Whether a module must stay bit-reproducible (RL002's scope)."""
    return _module_has_prefix(module, DETERMINISTIC_MODULES)


def is_effect_exempt(module: str) -> bool:
    """Whether a module's effects are by-design and never propagated."""
    return _module_has_prefix(module, EFFECT_EXEMPT_MODULES)


#: One step of an impure path: the call site taken and the callee.
_Step = Tuple[CallSite, FileSummary, FunctionInfo]


class EffectPropagation(ProgramRule):
    """RL009: purity and determinism hold transitively, not just locally."""

    rule_id = "RL009"
    title = "transitive effect propagation"

    def check_program(self, program: Program) -> Iterator[Finding]:
        finder = _PathFinder(program)
        for path in sorted(program.summaries):
            summary = program.summaries[path]
            if summary.is_test:
                continue
            for func in summary.functions:
                if func.is_cache_key:
                    yield from self._check_root(
                        finder,
                        summary,
                        func,
                        PURITY_EFFECTS,
                        purity=True,
                    )
                if in_deterministic_scope(summary.module):
                    yield from self._check_root(
                        finder,
                        summary,
                        func,
                        DETERMINISM_EFFECTS,
                        purity=False,
                    )

    def _check_root(
        self,
        finder: "_PathFinder",
        summary: FileSummary,
        func: FunctionInfo,
        kinds: frozenset,
        purity: bool,
    ) -> Iterator[Finding]:
        found = finder.impure_paths(func, kinds, purity)
        reported: set = set()
        for steps, effect in found:
            leaf = steps[-1][2]
            key = (steps[0][0].line, steps[0][0].col, leaf.qualname)
            if key in reported:
                continue
            reported.add(key)
            first_call = steps[0][0]
            chain = " -> ".join(
                f"`{step[2].qualname}`" for step in steps
            )
            contract = (
                f"cache-key producer `{func.qualname}` is "
                "transitively impure"
                if purity
                else f"deterministic-scope `{func.qualname}` is "
                "transitively nondeterministic"
            )
            yield self.finding_at(
                summary.path,
                first_call.line,
                first_call.col,
                f"{contract}: via {chain}, `{leaf.qualname}` "
                f"{effect.detail} "
                f"({leaf.qualname.rsplit('.', 1)[0]}:{effect.line})",
            )


class _PathFinder:
    """Finds shortest impure call paths from a root function."""

    def __init__(self, program: Program):
        self.program = program

    def impure_paths(
        self,
        root: FunctionInfo,
        kinds: frozenset,
        purity: bool,
    ) -> List[Tuple[List[_Step], EffectInfo]]:
        """BFS for call paths from ``root`` to an effect of ``kinds``.

        Depth starts at the root's *callees* — the root's own direct
        effects are RL004/RL002 territory and are never re-reported
        here.
        """
        results: List[Tuple[List[_Step], EffectInfo]] = []
        visited = {root.qualname}
        frontier: List[List[_Step]] = []
        for edge in self.program.call_edges(root):
            frontier.append([edge])
        depth = 1
        while frontier and depth <= _MAX_DEPTH:
            next_frontier: List[List[_Step]] = []
            for steps in frontier:
                _, callee_summary, callee = steps[-1]
                if callee.qualname in visited:
                    continue
                visited.add(callee.qualname)
                if is_effect_exempt(callee_summary.module):
                    continue
                effect = self._effect_of(
                    callee_summary, callee, kinds, purity
                )
                if effect is not None:
                    results.append((steps, effect))
                    continue
                for edge in self.program.call_edges(callee):
                    if edge[2].qualname not in visited:
                        next_frontier.append(steps + [edge])
            frontier = next_frontier
            depth += 1
        return results

    def _effect_of(
        self,
        summary: FileSummary,
        func: FunctionInfo,
        kinds: frozenset,
        purity: bool,
    ) -> Optional[EffectInfo]:
        """An effect of ``func`` that the current contract counts.

        For the determinism contract, direct effects *inside* the
        deterministic scope are RL002's findings already; only effects
        hidden in out-of-scope helpers propagate here.
        """
        if not purity and in_deterministic_scope(summary.module):
            return None
        for effect in func.effects:
            if effect.kind in kinds:
                return effect
        return None
