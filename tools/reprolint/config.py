"""Project-specific configuration of the reprolint rules.

Everything the rules know about *this* repository lives here — which
modules must be deterministic, which dataclasses sit on hot paths,
where the kernel/scalar parity registry is. Changing the repo layout
means updating this file, not the rules.
"""

from __future__ import annotations

#: Module prefixes whose code must be reproducible run-to-run: the
#: simulation core, the characterization/Vmin stack (including the
#: content-addressed cache), the batched kernels and the replayable
#: workload generators. RL002 flags unseeded randomness, wall-clock
#: reads and hash-order-dependent set iteration here.
DETERMINISTIC_MODULES = (
    "repro.sim",
    "repro.vmin",
    "repro.kernels",
    "repro.workloads",
)

#: Module prefixes whose dataclasses are allocated on hot paths and
#: must declare ``slots=True`` (RL005).
HOT_DATACLASS_MODULES = (
    "repro.sim",
    "repro.kernels",
)

#: Modules allowed to spell out raw unit conversions: the unit helpers
#: themselves, and the pure-display table formatter.
UNITS_EXEMPT_MODULES = (
    "repro.units",
    "repro.analysis.tables",
)

#: Identifier tokens that mark a value as unit-bearing (RL001). A
#: name's tokens are its snake_case words; ``v`` and ``w`` alone are
#: too ambiguous and only count as trailing unit *suffixes*.
UNIT_TOKENS = frozenset(
    {
        "mv",
        "volt",
        "volts",
        "voltage",
        "voltages",
        "hz",
        "ghz",
        "mhz",
        "freq",
        "freqs",
        "frequency",
        "frequencies",
        "watt",
        "watts",
        "power",
    }
)

#: Magic conversion factors RL001 refuses next to unit-bearing names.
MAGIC_FACTORS = frozenset({1e3, 1e6, 1e9, 1e-3, 1e-6, 1e-9})

#: ``repro.units`` helpers mapped to the unit suffixes their argument
#: must NOT carry (the argument is in the *source* unit; an argument
#: already suffixed with the target or an unrelated unit contradicts
#: the conversion). Used by RL001's suffix-contradiction check.
HELPER_FORBIDDEN_SUFFIXES = {
    "ghz": frozenset({"hz", "mhz", "mv", "v", "w"}),
    "mhz": frozenset({"hz", "ghz", "mv", "v", "w"}),
    "hz_to_ghz": frozenset({"ghz", "mhz", "mv", "v", "w"}),
    "mv_to_v": frozenset({"v", "hz", "ghz", "mhz", "w"}),
    "v_to_mv": frozenset({"mv", "hz", "ghz", "mhz", "w"}),
    "fmt_freq": frozenset({"ghz", "mhz", "mv", "v", "w"}),
    "fmt_mv": frozenset({"v", "hz", "ghz", "mhz", "w"}),
}

#: Unit suffixes recognized at the end of an identifier.
UNIT_SUFFIXES = frozenset(
    {"mv", "v", "hz", "ghz", "mhz", "w", "mw", "kw"}
)

#: Marker decorator of cache-key-producing functions (RL004).
CACHE_KEY_DECORATOR = "cache_key_producer"

#: Every rule id the suite can emit. Suppression comments naming an id
#: outside this set are typos that would silence nothing — RL000 flags
#: them (see :func:`reprolint.engine.suppression_findings`).
KNOWN_RULE_IDS = frozenset(
    {
        "RL000",
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
        "RL006",
        "RL007",
        "RL008",
        "RL009",
        "RL010",
    }
)

#: Per-path rule scoping: repo-relative path prefixes mapped to the
#: rule ids disabled beneath them. ``examples/`` holds freestanding
#: demo scripts whose ad-hoc locals are outside the interprocedural
#: units/effects contracts.
PATH_RULE_SCOPES = (
    ("examples/", frozenset({"RL008", "RL009"})),
)


def rules_disabled_for(rel_path: str) -> frozenset:
    """Rule ids disabled for a repo-relative path by PATH_RULE_SCOPES."""
    disabled = set()
    normalized = rel_path.replace("\\", "/")
    for prefix, rule_ids in PATH_RULE_SCOPES:
        if normalized.startswith(prefix) or f"/{prefix}" in normalized:
            disabled.update(rule_ids)
    return frozenset(disabled)


# -- RL008 interprocedural units inference -------------------------------------

#: The dimensionless unit (plain counts, ratios, bare literals).
DIMENSIONLESS = "1"

#: Canonical units of the RL008 lattice.
UNIT_LATTICE = frozenset(
    {"mV", "V", "Hz", "MHz", "GHz", "W", "mW", "J", "s", DIMENSIONLESS}
)

#: Identifier suffix token -> canonical unit (``safe_vmin_mv`` -> mV).
SUFFIX_UNITS = {
    "mv": "mV",
    "millivolts": "mV",
    "v": "V",
    "volts": "V",
    "hz": "Hz",
    "mhz": "MHz",
    "ghz": "GHz",
    "w": "W",
    "watts": "W",
    "mw": "mW",
    "j": "J",
    "joules": "J",
    "s": "s",
    "secs": "s",
    "seconds": "s",
}

#: ``repro.units`` converters: qualname -> (parameter units, return
#: unit). The seed of the RL008 inference — these are the only places
#: where a value legitimately changes unit.
UNIT_CONVERTERS = {
    "repro.units.ghz": (("GHz",), "Hz"),
    "repro.units.mhz": (("MHz",), "Hz"),
    "repro.units.hz_to_ghz": (("Hz",), "GHz"),
    "repro.units.mv_to_v": (("mV",), "V"),
    "repro.units.v_to_mv": (("V",), "mV"),
    "repro.units.joules": (("W", "s"), "J"),
    "repro.units.fmt_freq": (("Hz",), None),
    "repro.units.fmt_mv": (("mV",), None),
}

#: ``typing.Annotated`` unit aliases exported by ``repro.units``:
#: qualname -> unit. Mirrors the alias section of
#: ``src/repro/units.py`` so annotations resolve even when that file
#: is not among the lint targets.
BUILTIN_UNIT_ALIASES = {
    "repro.units.Millivolts": "mV",
    "repro.units.Volts": "V",
    "repro.units.Hertz": "Hz",
    "repro.units.HertzInt": "Hz",
    "repro.units.Megahertz": "MHz",
    "repro.units.Gigahertz": "GHz",
    "repro.units.Watts": "W",
    "repro.units.Joules": "J",
    "repro.units.Seconds": "s",
}

#: Modules exempt from RL008's inference: the converters themselves
#: (they *define* the unit boundaries) and the display-only formatter.
UNITFLOW_EXEMPT_MODULES = UNITS_EXEMPT_MODULES

#: Module prefixes whose effects RL009 does not propagate: telemetry
#: reads monotonic clocks by design, and its timings are excluded from
#: every result fingerprint (docs/OBSERVABILITY.md).
EFFECT_EXEMPT_MODULES = ("repro.telemetry",)

#: Scalar model modules whose public API must appear in the parity
#: registry (RL003): dotted name -> repo-relative path.
SCALAR_MODEL_MODULES = {
    "repro.vmin.model": "src/repro/vmin/model.py",
    "repro.vmin.faults": "src/repro/vmin/faults.py",
    "repro.power.model": "src/repro/power/model.py",
}

#: The parity registry module (RL003 parses its dict literals).
PARITY_REGISTRY_PATH = "src/repro/kernels/parity.py"

#: Package holding the batched kernels; every PARITY value must name a
#: function defined in one of its modules.
KERNELS_PACKAGE_PATH = "src/repro/kernels"
KERNELS_PACKAGE_NAME = "repro.kernels"

#: The declarative platform package (RL007). Chip identity lives in
#: its registry; everything outside it must resolve chips through
#: registry keys (``get_platform``/``platform_key_for_spec``), never
#: by spelling out a display name.
PLATFORM_PACKAGE = "repro.platform"

#: Chip display-name literals banned outside the platform package
#: (RL007). Substring match, so derived names ("X-Gene 3 XL") and
#: embedded uses (f-strings, table headers) are caught too.
PLATFORM_NAME_LITERALS = ("X-Gene 2", "X-Gene 3")

#: The control-plane package and its sanctioned actuation funnel
#: (RL010). Policies *describe* hardware changes as Action values; the
#: funnel is the one non-platform module allowed to invoke the
#: SLIMpro/CPPC mutators, under reasoned suppressions.
POLICIES_PACKAGE = "repro.policies"
ACTUATION_FUNNEL = "repro.policies.actuation.apply_action"

#: Method names that mutate hardware set-points (SLIMpro rail writes,
#: CPPC frequency requests). Calling any of these outside
#: ``repro.platform`` or the actuation funnel bypasses arbitration and
#: the safe-Vmin clamp (RL010).
ACTUATION_METHODS = frozenset(
    {
        "set_voltage",
        "set_voltage_mv",
        "set_pmd_frequency",
        "set_all_frequencies",
        "request",
        "request_all",
    }
)

#: The telemetry package and its central metric-name registry module
#: (RL006). Call sites anywhere in the package must pass constants
#: from the registry module to the telemetry API.
TELEMETRY_PACKAGE = "repro.telemetry"
TELEMETRY_NAMES_MODULE = "repro.telemetry.names"

#: Module-level telemetry API functions whose first argument is a
#: metric name (RL006 checks these call sites).
TELEMETRY_API_FUNCS = frozenset(
    {"inc", "set_gauge", "observe", "span"}
)

#: Wall-clock callables (module attr form) treated as nondeterministic.
WALL_CLOCK_CALLS = frozenset(
    {
        ("time", "time"),
        ("time", "time_ns"),
        ("time", "monotonic"),
        ("time", "monotonic_ns"),
        ("time", "perf_counter"),
        ("time", "perf_counter_ns"),
        ("datetime", "now"),
        ("datetime", "utcnow"),
        ("datetime", "today"),
        ("date", "today"),
    }
)

#: ``random`` module functions that mutate/read the global RNG stream.
GLOBAL_RANDOM_FUNCS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "uniform",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "gauss",
        "normalvariate",
        "betavariate",
        "expovariate",
        "getrandbits",
        "seed",
    }
)

#: ``numpy.random`` module-level functions backed by the global state.
GLOBAL_NP_RANDOM_FUNCS = frozenset(
    {
        "rand",
        "randn",
        "randint",
        "random",
        "random_sample",
        "choice",
        "shuffle",
        "permutation",
        "binomial",
        "multinomial",
        "normal",
        "uniform",
        "seed",
    }
)
