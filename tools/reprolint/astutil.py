"""Small AST helpers shared by the reprolint rules."""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])")


def name_tokens(identifier: str) -> List[str]:
    """Lower-case word tokens of an identifier (snake or camel case)."""
    flat = _CAMEL_RE.sub("_", identifier)
    return [token for token in flat.lower().split("_") if token]


def unit_suffix(identifier: str) -> Optional[str]:
    """Trailing unit token of an identifier (``safe_vmin_mv`` -> ``mv``)."""
    tokens = name_tokens(identifier)
    return tokens[-1] if tokens else None


def expr_identifier(node: ast.AST) -> Optional[str]:
    """The human-relevant identifier of an expression, if any.

    ``freq`` for a name, ``freq_hz`` for ``self.freq_hz``,
    ``best_frequency`` for ``obj.best_frequency(...)``.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return expr_identifier(node.func)
    return None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def decorator_name(node: ast.AST) -> Optional[str]:
    """Terminal name of a decorator (``x`` for ``@m.x(...)``)."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


class ImportAliases:
    """Which local names refer to which imported modules/objects.

    Tracks ``import random``, ``import numpy as np``,
    ``from random import choice`` and friends so rules can resolve
    ``np.random.rand`` or a bare ``choice(...)`` back to their origin.
    """

    def __init__(self, tree: ast.Module):
        #: local alias -> imported module path ("np" -> "numpy").
        self.modules: Dict[str, str] = {}
        #: local alias -> "module.object" for from-imports.
        self.objects: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for item in node.names:
                    self.modules[item.asname or item.name.split(".")[0]] = (
                        item.name
                    )
            elif isinstance(node, ast.ImportFrom) and node.module:
                for item in node.names:
                    self.objects[item.asname or item.name] = (
                        f"{node.module}.{item.name}"
                    )

    def module_of(self, alias: str) -> Optional[str]:
        """Module path a local name refers to, if it is an import."""
        return self.modules.get(alias)

    def object_of(self, alias: str) -> Optional[str]:
        """Qualified origin of a from-imported local name."""
        return self.objects.get(alias)


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef]:
    """Every (sync) function definition in the module, nested included."""
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef):
            yield node


def const_number(node: ast.AST) -> Optional[float]:
    """Numeric value of a constant expression node (int/float only)."""
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (int, float)
    ) and not isinstance(node.value, bool):
        return float(node.value)
    return None
