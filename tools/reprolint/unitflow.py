"""RL008 — interprocedural dimensional inference.

Resolves the unit terms recorded in file summaries
(:mod:`reprolint.symbols`) across function boundaries and reports
flows whose units disagree:

* an argument whose inferred unit contradicts the callee parameter's
  declared (``typing.Annotated`` alias) or heuristic (``*_mv`` suffix)
  unit — even when the unit was established by a converter several
  call frames away;
* additive/comparison uses (``+``, ``-``, ``<`` ...) whose operand
  units differ (mV + V, Hz vs GHz);
* a function whose declared return unit contradicts what its return
  expressions actually carry.

``*``/``/`` compose units (W × s = J, J / s = W, same / same = 1);
additive operators require equal units; anything the lattice cannot
prove stays unknown and is never reported. Every diagnostic carries
the full inference chain so the mismatch is auditable end to end.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterator, List, Optional, Tuple

from .callgraph import Program
from .config import (
    DIMENSIONLESS,
    UNIT_CONVERTERS,
    UNITFLOW_EXEMPT_MODULES,
)
from .engine import Finding, ProgramRule
from .symbols import (
    CallSite,
    FileSummary,
    FunctionInfo,
    ParamInfo,
    Term,
)

#: Longest provenance chain rendered in a diagnostic.
_MAX_CHAIN = 6


@dataclass
class ResolvedUnit:
    """A concrete unit with evidence strength and provenance chain."""

    unit: str
    #: "strong" (annotation/converter) or "weak" (name suffix).
    strength: str
    chain: List[str]


def resolve_term(
    term: Term, program: Program, stack: FrozenSet[str] = frozenset()
) -> Optional[ResolvedUnit]:
    """Resolve a summary term to a concrete unit, if provable."""
    if term is None:
        return None
    kind = term["k"]
    if kind == "u":
        return ResolvedUnit(
            unit=term["u"],
            strength=term["s"],
            chain=list(term.get("why", [])),
        )
    if kind == "c":
        return _resolve_call_term(term, program, stack)
    if kind in ("m", "d"):
        left = resolve_term(term["a"], program, stack)
        right = resolve_term(term["b"], program, stack)
        if left is None or right is None:
            return None
        return _compose(kind, left, right)
    return None


def _resolve_call_term(
    term: Term, program: Program, stack: FrozenSet[str]
) -> Optional[ResolvedUnit]:
    assert term is not None
    callee = term["f"]
    converter = UNIT_CONVERTERS.get(callee)
    if converter is not None:
        if converter[1] is None:
            return None
        return ResolvedUnit(
            unit=converter[1],
            strength="strong",
            chain=list(term.get("why", []))
            + [f"`{callee}` returns {converter[1]} (converter)"],
        )
    resolved = program.resolve_qualname(callee)
    if resolved is None:
        return None
    _, func = resolved
    if func.qualname in stack:
        return None
    why = list(term.get("why", []))
    if func.return_unit is not None:
        return ResolvedUnit(
            unit=func.return_unit,
            strength="strong",
            chain=why
            + [
                f"`{func.qualname}` is declared to return "
                f"{func.return_unit}"
            ],
        )
    inner = stack | {func.qualname}
    resolved_returns: List[ResolvedUnit] = []
    for return_term in func.return_terms:
        result = resolve_term(return_term, program, inner)
        if result is None:
            return None
        if result.unit == DIMENSIONLESS:
            continue
        resolved_returns.append(result)
    units = {r.unit for r in resolved_returns}
    if len(units) != 1:
        return None
    best = next(
        (r for r in resolved_returns if r.strength == "strong"),
        resolved_returns[0],
    )
    return ResolvedUnit(
        unit=best.unit,
        strength=best.strength,
        chain=why
        + [f"`{func.qualname}` returns {best.unit}"]
        + best.chain[:2],
    )


def _compose(
    kind: str, left: ResolvedUnit, right: ResolvedUnit
) -> Optional[ResolvedUnit]:
    strength = (
        "strong"
        if left.strength == "strong" and right.strength == "strong"
        else "weak"
    )
    chain = left.chain[:2] + right.chain[:2]

    def made(unit: str) -> ResolvedUnit:
        return ResolvedUnit(unit=unit, strength=strength, chain=chain)

    if kind == "m":
        if left.unit == DIMENSIONLESS:
            return made(right.unit)
        if right.unit == DIMENSIONLESS:
            return made(left.unit)
        if {left.unit, right.unit} == {"W", "s"}:
            return made("J")
        return None
    if right.unit == DIMENSIONLESS:
        return made(left.unit)
    if left.unit == right.unit:
        return made(DIMENSIONLESS)
    if (left.unit, right.unit) == ("J", "s"):
        return made("W")
    if (left.unit, right.unit) == ("J", "W"):
        return made("s")
    return None


def _render_chain(chain: List[str]) -> str:
    steps = chain[:_MAX_CHAIN]
    return " -> ".join(steps) if steps else "(direct)"


def _in_exempt_module(module: str) -> bool:
    return module in UNITFLOW_EXEMPT_MODULES


class UnitFlow(ProgramRule):
    """RL008: units must agree across assignments, ops and calls."""

    rule_id = "RL008"
    title = "interprocedural units inference"

    def check_program(self, program: Program) -> Iterator[Finding]:
        for path in sorted(program.summaries):
            summary = program.summaries[path]
            if summary.is_test or _in_exempt_module(summary.module):
                continue
            for func in summary.functions:
                yield from self._check_calls(program, summary, func)
                yield from self._check_adds(program, summary, func)
                yield from self._check_return(program, summary, func)

    # -- call-site argument flows ---------------------------------------------

    def _check_calls(
        self,
        program: Program,
        summary: FileSummary,
        func: FunctionInfo,
    ) -> Iterator[Finding]:
        for call in func.calls:
            signature = self._callee_signature(program, call)
            if signature is None:
                continue
            callee_name, params, offset = signature
            for arg in call.args:
                param = _param_for_slot(params, arg.slot, offset)
                if param is None or param.unit in (None, DIMENSIONLESS):
                    continue
                resolved = resolve_term(arg.term, program)
                if resolved is None:
                    continue
                if resolved.unit in (DIMENSIONLESS, param.unit):
                    continue
                param_src = (
                    "Annotated"
                    if param.source == "annotation"
                    else "converter input"
                    if param.source == "converter"
                    else f"`_{param.unit.lower()}`-style suffix"
                )
                yield self.finding_at(
                    summary.path,
                    arg.line,
                    arg.col,
                    f"unit mismatch: argument flows {resolved.unit} "
                    f"into parameter `{param.name}` of "
                    f"`{callee_name}`, declared {param.unit} "
                    f"({param_src}); inferred via: "
                    f"{_render_chain(resolved.chain)}",
                )

    def _callee_signature(
        self, program: Program, call: CallSite
    ) -> Optional[Tuple[str, List[ParamInfo], int]]:
        """(name, params, positional offset) of a call's target."""
        converter = UNIT_CONVERTERS.get(call.callee)
        if converter is not None:
            params = [
                ParamInfo(name=f"arg{i}", unit=unit, source="converter")
                for i, unit in enumerate(converter[0])
            ]
            return call.callee, params, 0
        resolved = program.resolve_callee(call)
        if resolved is None:
            return None
        callee_summary, callee = resolved
        if _in_exempt_module(callee_summary.module):
            return None
        offset = 1 if callee.is_method and call.instance_call else 0
        return callee.qualname, callee.params, offset

    # -- additive / comparison obligations ------------------------------------

    def _check_adds(
        self,
        program: Program,
        summary: FileSummary,
        func: FunctionInfo,
    ) -> Iterator[Finding]:
        for obligation in func.adds:
            left = resolve_term(obligation.left, program)
            right = resolve_term(obligation.right, program)
            if left is None or right is None:
                continue
            if DIMENSIONLESS in (left.unit, right.unit):
                continue
            if left.unit == right.unit:
                continue
            verb = (
                "comparing"
                if obligation.op == "compare"
                else "combining"
            )
            yield self.finding_at(
                summary.path,
                obligation.line,
                obligation.col,
                f"unit mismatch: {verb} {left.unit} with "
                f"{right.unit} (`{obligation.op}`); left: "
                f"{_render_chain(left.chain)}; right: "
                f"{_render_chain(right.chain)}",
            )

    # -- declared vs inferred return units ------------------------------------

    def _check_return(
        self,
        program: Program,
        summary: FileSummary,
        func: FunctionInfo,
    ) -> Iterator[Finding]:
        if func.return_unit is None:
            return
        for return_term in func.return_terms:
            resolved = resolve_term(return_term, program)
            if resolved is None or resolved.unit in (
                DIMENSIONLESS,
                func.return_unit,
            ):
                continue
            yield self.finding_at(
                summary.path,
                func.line,
                func.col,
                f"`{func.qualname}` is declared to return "
                f"{func.return_unit} but a return expression carries "
                f"{resolved.unit}; inferred via: "
                f"{_render_chain(resolved.chain)}",
            )
            return


def _param_for_slot(
    params: List[ParamInfo], slot: object, offset: int
) -> Optional[ParamInfo]:
    if isinstance(slot, int):
        index = slot + offset
        if 0 <= index < len(params):
            return params[index]
        return None
    for param in params:
        if param.name == slot:
            return param
    return None
