"""SARIF 2.1.0 output.

Renders findings as a single-run SARIF log so CI can upload them to
GitHub code scanning (``github/codeql-action/upload-sarif``) and the
findings appear inline on pull requests. Only the schema subset code
scanning consumes is emitted: the tool driver with its rule catalogue,
and one ``result`` per finding with a physical location.

SARIF columns are 1-based; reprolint's ``col`` is the 0-based AST
``col_offset``, so ``startColumn = col + 1`` (same shift the GitHub
annotation format applies).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from .engine import Finding

SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
SARIF_VERSION = "2.1.0"

#: (rule id, short description) pairs for the driver's rule catalogue.
RuleMeta = Tuple[str, str]


def render_sarif(
    findings: Sequence[Finding],
    rules: Sequence[RuleMeta],
    tool_version: str = "0",
) -> Dict[str, Any]:
    """Findings + rule catalogue -> SARIF 2.1.0 log object."""
    catalogue = sorted(dict(rules).items())
    rule_index = {rule_id: i for i, (rule_id, _) in enumerate(catalogue)}
    results: List[Dict[str, Any]] = []
    for finding in findings:
        result: Dict[str, Any] = {
            "ruleId": finding.rule_id,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        index = rule_index.get(finding.rule_id)
        if index is not None:
            result["ruleIndex"] = index
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "version": tool_version,
                        "rules": [
                            {
                                "id": rule_id,
                                "name": _rule_name(rule_id),
                                "shortDescription": {"text": title},
                            }
                            for rule_id, title in catalogue
                        ],
                    }
                },
                "results": results,
            }
        ],
    }


def _rule_name(rule_id: str) -> str:
    """CamelCase-ish symbolic name code scanning displays."""
    return f"Reprolint{rule_id}"
