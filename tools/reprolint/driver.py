"""Analysis driver: file rules + whole-program rules + the cache.

:func:`analyze_paths` is the full pipeline behind the CLI. It extends
:func:`reprolint.engine.lint_paths` with the whole-program layer:

1. hash every target; reuse cached per-file products (findings,
   summaries, suppressions) for files whose content is unchanged *and*
   whose transitive dependencies are unchanged;
2. parse and analyze the rest (file rules + summary extraction);
3. assemble the :class:`~reprolint.callgraph.Program` from all
   summaries — fresh or cached — and run the program rules
   (RL008/RL009) over it;
4. run project rules, apply suppressions and per-path rule scoping,
   and (in ``--changed`` mode) restrict reporting to files changed
   against a git ref plus their transitive dependents.

Findings are identical with and without the cache; only the amount of
parsing differs. :func:`analyze_file` is the single-file variant the
fixture tests use.
"""

from __future__ import annotations

import ast
import subprocess
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .cache import AnalysisCache, CacheEntry, encode_suppressions
from .callgraph import Program, dependents_closure
from .config import rules_disabled_for
from .engine import (
    Finding,
    LOAD_ERRORS,
    ProgramRule,
    ProjectRule,
    Rule,
    SourceFile,
    derive_is_test,
    derive_module,
    filter_suppressed,
    find_project_root,
    iter_target_files,
    lint_source,
    load_failure_finding,
    parse_suppressions,
    sort_findings,
    suppression_findings,
)
from .symbols import FileSummary, build_summary, content_hash

_Suppressions = Dict[int, Tuple[frozenset, Optional[str]]]


@dataclass
class AnalysisStats:
    """How much work one :func:`analyze_paths` invocation did."""

    files_total: int = 0
    #: Files parsed and analyzed this run (cache misses + invalidated).
    files_analyzed: int = 0
    #: Files whose products were reused from the cache.
    files_from_cache: int = 0


@dataclass
class _Target:
    """One lint target with its identity resolved."""

    path: Path
    #: Path string as spelled on the command line (finding paths).
    display: str
    #: Root-relative POSIX path (cache key, scoping key).
    rel: str
    data: Optional[bytes]
    sha256: str
    load_error: Optional[Exception] = None


def _rel_path(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root).as_posix()
    except ValueError:
        return path.resolve().as_posix()


def _read_target(path: Path, root: Path) -> _Target:
    display = str(path)
    rel = _rel_path(path, root)
    try:
        data = path.read_bytes()
    except OSError as exc:
        return _Target(path, display, rel, None, "", exc)
    return _Target(path, display, rel, data, content_hash(data))


def _analyze_target(
    target: _Target, rules: Sequence[Rule]
) -> Tuple[List[Finding], FileSummary, _Suppressions]:
    """Parse + run file rules + build the summary for one target."""
    module = derive_module(target.path)
    is_test = derive_is_test(target.path)

    def failure(
        exc: Exception,
    ) -> Tuple[List[Finding], FileSummary, _Suppressions]:
        stub = FileSummary(
            path=target.display,
            module=module,
            is_test=is_test,
            sha256=target.sha256,
        )
        return [load_failure_finding(target.path, exc)], stub, {}

    if target.load_error is not None or target.data is None:
        return failure(target.load_error or OSError("unreadable"))
    try:
        text = target.data.decode("utf-8")
        tree = ast.parse(text, filename=target.display)
    except LOAD_ERRORS as exc:
        return failure(exc)
    source = SourceFile(
        path=target.path,
        text=text,
        tree=tree,
        module=module,
        is_test=is_test,
    )
    findings = lint_source(source, rules) + suppression_findings(source)
    summary = build_summary(
        tree, target.display, module, is_test, target.sha256
    )
    return findings, summary, parse_suppressions(text)


def _entry_findings(
    entry: CacheEntry, display: str
) -> List[Finding]:
    """Re-anchor cached findings at this run's display path."""
    return [
        Finding(
            rule_id=item["rule"],
            path=display,
            line=item["line"],
            col=item["col"],
            message=item["message"],
        )
        for item in entry.findings
    ]


def _encode_findings(findings: Sequence[Finding]) -> List[Dict[str, object]]:
    return [
        {
            "rule": f.rule_id,
            "line": f.line,
            "col": f.col,
            "message": f.message,
        }
        for f in findings
    ]


def _entry_summary(entry: CacheEntry, display: str) -> FileSummary:
    data = dict(entry.summary)
    data["path"] = display
    return FileSummary.from_dict(data)


def git_changed_files(root: Path, ref: str) -> Set[str]:
    """Root-relative paths changed vs ``ref`` (plus untracked files).

    Raises :class:`RuntimeError` when git cannot answer (not a
    repository, unknown ref) — the CLI reports that as a usage error.
    """
    changed: Set[str] = set()
    commands = (
        ["git", "-C", str(root), "diff", "--name-only", "-z", ref],
        [
            "git",
            "-C",
            str(root),
            "ls-files",
            "--others",
            "--exclude-standard",
            "-z",
        ],
    )
    for command in commands:
        proc = subprocess.run(
            command, capture_output=True, text=True, check=False
        )
        if proc.returncode != 0:
            raise RuntimeError(
                proc.stderr.strip()
                or f"git failed: {' '.join(command)}"
            )
        changed.update(
            name for name in proc.stdout.split("\0") if name
        )
    return changed


def analyze_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    project_rules: Sequence[ProjectRule] = (),
    program_rules: Sequence[ProgramRule] = (),
    root: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
    changed_ref: Optional[str] = None,
) -> Tuple[List[Finding], AnalysisStats]:
    """Run the full analysis pipeline over ``paths``.

    The cache is used iff ``cache_dir`` is given; ``changed_ref``
    restricts *reporting* (not analysis) to files changed against the
    git ref plus their transitive dependents.
    """
    if root is None:
        root = find_project_root(paths) or Path.cwd()
    root = root.resolve()
    targets = [
        _read_target(path, root) for path in iter_target_files(paths)
    ]
    stats = AnalysisStats(files_total=len(targets))

    cache = AnalysisCache.load(cache_dir) if cache_dir else None
    must_analyze: Set[str] = set()
    if cache is not None:
        changed = {
            t.rel
            for t in targets
            if cache.fresh_entry(t.rel, t.sha256) is None
        }
        invalidated = dependents_closure(cache.dep_sets(), changed)
        must_analyze = changed | invalidated
    else:
        must_analyze = {t.rel for t in targets}

    findings: List[Finding] = []
    suppressions: Dict[str, _Suppressions] = {}
    summaries: Dict[str, FileSummary] = {}
    rel_by_display: Dict[str, str] = {}
    for target in targets:
        rel_by_display[target.display] = target.rel
        entry = (
            cache.fresh_entry(target.rel, target.sha256)
            if cache is not None and target.rel not in must_analyze
            else None
        )
        if entry is not None:
            stats.files_from_cache += 1
            findings.extend(_entry_findings(entry, target.display))
            summaries[target.display] = _entry_summary(
                entry, target.display
            )
            suppressions[target.display] = entry.suppression_table()
            continue
        stats.files_analyzed += 1
        file_findings, summary, table = _analyze_target(target, rules)
        findings.extend(file_findings)
        summaries[target.display] = summary
        suppressions[target.display] = table
        if cache is not None:
            cache.files[target.rel] = CacheEntry(
                sha256=target.sha256,
                summary=summary.to_dict(),
                findings=_encode_findings(file_findings),
                suppressions=encode_suppressions(table),
            )

    program = Program(summaries)
    for program_rule in program_rules:
        findings.extend(program_rule.check_program(program))

    if project_rules:
        for project_rule in project_rules:
            for finding in project_rule.check_project(root):
                if finding.path not in suppressions:
                    try:
                        text = Path(finding.path).read_text(
                            encoding="utf-8"
                        )
                    except OSError:
                        text = ""
                    suppressions[finding.path] = parse_suppressions(
                        text
                    )
                findings.append(finding)

    deps_by_display = program.file_dependencies()
    if cache is not None:
        for display, dep_displays in deps_by_display.items():
            rel = rel_by_display.get(display)
            if rel is None:
                continue
            cache.deps[rel] = sorted(
                rel_by_display.get(dep, dep) for dep in dep_displays
            )
        cache.save()

    kept = filter_suppressed(findings, suppressions)
    kept = [
        f
        for f in kept
        if f.rule_id
        not in rules_disabled_for(rel_by_display.get(f.path, f.path))
    ]

    if changed_ref is not None:
        changed_rels = git_changed_files(root, changed_ref)
        deps_by_rel = {
            rel_by_display.get(path, path): {
                rel_by_display.get(dep, dep) for dep in deps
            }
            for path, deps in deps_by_display.items()
        }
        report_set = changed_rels | dependents_closure(
            deps_by_rel, changed_rels
        )
        kept = [
            f
            for f in kept
            if rel_by_display.get(f.path, _rel_path(Path(f.path), root))
            in report_set
        ]

    return sort_findings(kept), stats


def analyze_file(
    path: Path,
    rules: Sequence[Rule] = (),
    program_rules: Sequence[ProgramRule] = (),
    module: Optional[str] = None,
    is_test: Optional[bool] = None,
) -> List[Finding]:
    """Single-file analysis with module/test-context overrides.

    The fixture tests use this to run the whole-program rules over one
    fixture file *as if* it lived at a given module path — the program
    model then contains exactly that file.
    """
    try:
        source = SourceFile.load(path, module=module, is_test=is_test)
    except LOAD_ERRORS as exc:
        return [load_failure_finding(path, exc)]
    findings = lint_source(source, list(rules)) + suppression_findings(
        source
    )
    summary = build_summary(
        source.tree,
        str(path),
        source.module,
        source.is_test,
        content_hash(source.text.encode("utf-8")),
    )
    program = Program({str(path): summary})
    for rule in program_rules:
        findings.extend(rule.check_program(program))
    return filter_suppressed(
        findings, {str(path): parse_suppressions(source.text)}
    )
