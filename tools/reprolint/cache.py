"""Incremental analysis cache, keyed by per-file content hash.

Warm whole-repo runs must stay fast enough for a pre-commit hook, so
per-file work (parse, file rules, summary extraction) is persisted
under ``.reprolint-cache/`` and reused whenever a file's content hash
is unchanged. Each entry stores everything a warm run needs:

* the file's sha256;
* its :class:`~reprolint.symbols.FileSummary` (symbols, call edges,
  unit signatures, effect sets) for the whole-program passes;
* its per-file findings (file rules + suppression hygiene), stored
  without the path and re-anchored at reuse time;
* its parsed suppression table.

Entries are invalidated **transitively**: editing a file re-analyzes
it *and* every file that depends on it through the import/call graph
(the dependency edges of the previous run are stored alongside the
entries). The whole-program rules always re-run — they are cheap, as
they operate on summaries only.

The cache never affects findings, only how much work it takes to
compute them; ``--no-cache`` bypasses it entirely.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Tuple

#: Bump when summaries, findings or rule semantics change shape —
#: a stale schema must read as a cold cache, never as wrong results.
CACHE_VERSION = 2

#: Default cache directory name, created under the project root.
CACHE_DIR_NAME = ".reprolint-cache"

_Suppressions = Dict[int, Tuple[frozenset, Optional[str]]]


@dataclass
class CacheEntry:
    """Cached per-file analysis products."""

    sha256: str
    summary: Dict[str, Any]
    #: Findings as ``{"rule", "line", "col", "message"}`` (no path).
    findings: List[Dict[str, Any]] = field(default_factory=list)
    #: ``{line: [[rule ids...], reason-or-null]}``.
    suppressions: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sha256": self.sha256,
            "summary": self.summary,
            "findings": self.findings,
            "suppressions": self.suppressions,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CacheEntry":
        return cls(
            sha256=data["sha256"],
            summary=data["summary"],
            findings=list(data["findings"]),
            suppressions=dict(data["suppressions"]),
        )

    def suppression_table(self) -> _Suppressions:
        """Suppressions in the engine's in-memory form."""
        return {
            int(line): (frozenset(entry[0]), entry[1])
            for line, entry in self.suppressions.items()
        }


def encode_suppressions(table: _Suppressions) -> Dict[str, Any]:
    """Engine suppression table -> JSON-stable form."""
    return {
        str(line): [sorted(rules), reason]
        for line, (rules, reason) in table.items()
    }


class AnalysisCache:
    """On-disk store of per-file entries plus the dependency graph."""

    def __init__(self, directory: Path):
        self.directory = directory
        self.data_path = directory / "summaries.json"
        #: repo-relative path -> entry.
        self.files: Dict[str, CacheEntry] = {}
        #: repo-relative path -> repo-relative paths it depends on.
        self.deps: Dict[str, List[str]] = {}

    # -- persistence -----------------------------------------------------------

    @classmethod
    def load(cls, directory: Path) -> "AnalysisCache":
        """Load a cache; any corruption or version skew reads as cold."""
        cache = cls(directory)
        try:
            payload = json.loads(
                cache.data_path.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            return cache
        if payload.get("version") != CACHE_VERSION:
            return cache
        try:
            cache.files = {
                path: CacheEntry.from_dict(entry)
                for path, entry in payload["files"].items()
            }
            cache.deps = {
                path: list(deps)
                for path, deps in payload["deps"].items()
            }
        except (KeyError, TypeError, ValueError):
            cache.files = {}
            cache.deps = {}
        return cache

    def save(self) -> None:
        """Atomically persist entries + dependency graph."""
        self.directory.mkdir(parents=True, exist_ok=True)
        gitignore = self.directory / ".gitignore"
        if not gitignore.exists():
            gitignore.write_text("*\n", encoding="utf-8")
        payload = {
            "version": CACHE_VERSION,
            "files": {
                path: entry.to_dict()
                for path, entry in sorted(self.files.items())
            },
            "deps": {
                path: sorted(deps)
                for path, deps in sorted(self.deps.items())
            },
        }
        tmp_path = self.data_path.with_suffix(".json.tmp")
        tmp_path.write_text(
            json.dumps(payload, sort_keys=True), encoding="utf-8"
        )
        os.replace(tmp_path, self.data_path)

    # -- queries ---------------------------------------------------------------

    def fresh_entry(
        self, rel_path: str, sha256: str
    ) -> Optional[CacheEntry]:
        """The entry for ``rel_path`` iff its content hash matches."""
        entry = self.files.get(rel_path)
        if entry is not None and entry.sha256 == sha256:
            return entry
        return None

    def dep_sets(self) -> Dict[str, Set[str]]:
        """The stored dependency graph with set-valued edges."""
        return {path: set(deps) for path, deps in self.deps.items()}
