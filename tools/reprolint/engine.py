"""Core of reprolint: source model, rule protocol, suppressions.

The engine is deliberately dependency-free (stdlib ``ast`` only) so it
can run in CI bootstrap steps and pre-commit hooks before the project
itself is installed. Rules come in two shapes:

* **file rules** (:class:`Rule`) — run once per linted file against its
  parsed AST;
* **project rules** (:class:`ProjectRule`) — run once per invocation
  against the repository root (located by its ``pyproject.toml``), for
  cross-file invariants such as the kernel/scalar parity registry.

Findings can be suppressed per line with an inline comment that *must*
carry a reason::

    freq / 1e9  # reprolint: disable=RL001 -- display-only literal

A suppression without the ``-- reason`` part does not silence anything
and is itself reported as RL000.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .config import KNOWN_RULE_IDS

#: Rule id of the meta-rule guarding the suppression syntax itself.
SUPPRESSION_RULE_ID = "RL000"

#: Directory names never descended into while walking lint targets.
_SKIPPED_DIR_NAMES = {
    "__pycache__",
    ".git",
    ".hypothesis",
    ".ruff_cache",
    ".pytest_cache",
    ".vmin-cache",
    ".reprolint-cache",
    "build",
    "dist",
    ".venv",
    "node_modules",
}

#: ``# reprolint: disable=RL001[,RL002][ -- reason]`` (trailing comment).
_SUPPRESSION_RE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z0-9,\s]+?)"
    r"(?:\s+--\s+(?P<reason>\S.*))?$"
)


@dataclass(frozen=True)
class Finding:
    """One lint finding at an exact source location.

    ``line`` is 1-based (AST ``lineno``); ``col`` is the 0-based AST
    ``col_offset`` of the offending node, matching what editors and the
    fixture tests assert against.
    """

    rule_id: str
    path: str
    line: int
    col: int
    message: str

    @property
    def location(self) -> str:
        """``path:line:col`` display form."""
        return f"{self.path}:{self.line}:{self.col}"

    def as_dict(self) -> Dict[str, object]:
        """JSON-representable form (the ``--format json`` payload)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One parsed lint target plus the context rules key off."""

    path: Path
    text: str
    tree: ast.Module
    #: Dotted module guess (``repro.sim.engine`` for
    #: ``src/repro/sim/engine.py``); empty when underivable.
    module: str
    #: Whether the file belongs to the test suite (rules may exempt
    #: test code, e.g. the float-equality ban).
    is_test: bool

    @property
    def lines(self) -> List[str]:
        """Source split into lines (1-based access via ``lines[n-1]``)."""
        return self.text.splitlines()

    @classmethod
    def load(
        cls,
        path: Path,
        module: Optional[str] = None,
        is_test: Optional[bool] = None,
    ) -> "SourceFile":
        """Read and parse one file, deriving module/test context.

        ``module``/``is_test`` override the path-based derivation; the
        fixture tests use them to lint fixture files *as if* they lived
        at a given spot in the package.
        """
        text = path.read_text(encoding="utf-8")
        tree = ast.parse(text, filename=str(path))
        if module is None:
            module = derive_module(path)
        if is_test is None:
            is_test = derive_is_test(path)
        return cls(
            path=path, text=text, tree=tree, module=module, is_test=is_test
        )


def derive_module(path: Path) -> str:
    """Best-effort dotted module name of a file path.

    Anything under a ``src`` directory maps to its package path; other
    files map to their path-relative dotted name (without suffixes).
    """
    parts = list(path.resolve().parts)
    if "src" in parts:
        rel = parts[len(parts) - parts[::-1].index("src"):]
    else:
        rel = [path.stem]
    if not rel:
        return ""
    rel = list(rel)
    rel[-1] = Path(rel[-1]).stem
    if rel[-1] == "__init__":
        rel = rel[:-1]
    return ".".join(rel)


def derive_is_test(path: Path) -> bool:
    """Whether a path belongs to the test suite."""
    parts = path.resolve().parts
    return "tests" in parts or path.name.startswith("test_")


class Rule:
    """Base class of per-file rules."""

    rule_id: str = ""
    title: str = ""

    def check(self, source: SourceFile) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError

    def finding(
        self, source: SourceFile, node: ast.AST, message: str
    ) -> Finding:
        """Finding anchored at an AST node of ``source``."""
        return Finding(
            rule_id=self.rule_id,
            path=str(source.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


class ProjectRule:
    """Base class of once-per-invocation, cross-file rules."""

    rule_id: str = ""
    title: str = ""

    def check_project(self, root: Path) -> Iterator[Finding]:
        """Yield findings for the project rooted at ``root``."""
        raise NotImplementedError


class ProgramRule:
    """Base class of whole-program rules.

    Program rules run once per invocation against a
    :class:`reprolint.callgraph.Program` — the symbol table, call
    graph and unit/effect summaries of every analyzed file — instead
    of a single file's AST. They are what lets reprolint reason
    *across* function and file boundaries (RL008 units inference,
    RL009 effect propagation).
    """

    rule_id: str = ""
    title: str = ""

    def check_program(self, program: "object") -> Iterator[Finding]:
        """Yield findings for the assembled program model."""
        raise NotImplementedError

    def finding_at(
        self, path: str, line: int, col: int, message: str
    ) -> Finding:
        """Finding at an explicit location (summaries carry no AST)."""
        return Finding(
            rule_id=self.rule_id,
            path=path,
            line=line,
            col=col,
            message=message,
        )


# -- suppression handling ------------------------------------------------------


def parse_suppressions(
    text: str,
) -> Dict[int, Tuple[frozenset, Optional[str]]]:
    """Per-line suppressions: ``{line: (rule ids, reason or None)}``."""
    table: Dict[int, Tuple[frozenset, Optional[str]]] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip()
            for token in match.group("rules").split(",")
            if token.strip()
        )
        table[lineno] = (rules, match.group("reason"))
    return table


def suppression_findings(source: SourceFile) -> List[Finding]:
    """RL000 findings: suppression comments missing their reason.

    A suppression without ``-- reason`` silences nothing and is itself
    a violation, so every waiver in the tree stays auditable.
    """
    found: List[Finding] = []
    for lineno, (rules, reason) in parse_suppressions(source.text).items():
        if reason is None:
            found.append(
                Finding(
                    rule_id=SUPPRESSION_RULE_ID,
                    path=str(source.path),
                    line=lineno,
                    col=0,
                    message=(
                        "suppression without a reason: write "
                        "'# reprolint: disable="
                        + ",".join(sorted(rules))
                        + " -- <why this is safe>'"
                    ),
                )
            )
        unknown = sorted(rules - KNOWN_RULE_IDS)
        if unknown:
            found.append(
                Finding(
                    rule_id=SUPPRESSION_RULE_ID,
                    path=str(source.path),
                    line=lineno,
                    col=0,
                    message=(
                        "suppression names unknown rule id(s) "
                        + ", ".join(unknown)
                        + " — it silences nothing"
                    ),
                )
            )
    return found


def filter_suppressed(
    findings: Iterable[Finding],
    suppressions: Dict[str, Dict[int, Tuple[frozenset, Optional[str]]]],
) -> List[Finding]:
    """Drop findings whose line carries a *reasoned* suppression.

    ``suppressions`` maps file paths to their
    :func:`parse_suppressions` tables. RL000 findings are never
    suppressible.
    """
    kept: List[Finding] = []
    for finding in findings:
        entry = suppressions.get(finding.path, {}).get(finding.line)
        if (
            entry is not None
            and finding.rule_id != SUPPRESSION_RULE_ID
            and finding.rule_id in entry[0]
            and entry[1] is not None
        ):
            continue
        kept.append(finding)
    return sort_findings(kept)


def sort_findings(findings: Iterable[Finding]) -> List[Finding]:
    """Deterministic report order: path, line, col, rule."""
    return sorted(
        findings,
        key=lambda f: (f.path, f.line, f.col, f.rule_id),
    )


# -- running -------------------------------------------------------------------


def lint_source(
    source: SourceFile, rules: Sequence[Rule]
) -> List[Finding]:
    """Run file rules over an already-loaded source (no suppressions)."""
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.check(source))
    return sort_findings(findings)


#: Exceptions :meth:`SourceFile.load` can raise for a broken target.
LOAD_ERRORS = (SyntaxError, UnicodeDecodeError, OSError)


def load_failure_finding(path: Path, exc: Exception) -> Finding:
    """Structured RL000 diagnostic for an unloadable file.

    A file that does not parse — or cannot even be decoded — must
    surface as a finding (file, reason, exit code 1), never as an
    unhandled traceback: pre-commit and CI rely on the structured
    output.
    """
    if isinstance(exc, SyntaxError):
        return Finding(
            rule_id=SUPPRESSION_RULE_ID,
            path=str(path),
            line=exc.lineno or 1,
            col=(exc.offset or 1) - 1,
            message=f"file does not parse: {exc.msg}",
        )
    if isinstance(exc, UnicodeDecodeError):
        return Finding(
            rule_id=SUPPRESSION_RULE_ID,
            path=str(path),
            line=1,
            col=0,
            message=(
                f"file is not valid {exc.encoding}: {exc.reason} "
                f"at byte {exc.start}"
            ),
        )
    return Finding(
        rule_id=SUPPRESSION_RULE_ID,
        path=str(path),
        line=1,
        col=0,
        message=f"file cannot be read: {exc}",
    )


def lint_file(
    path: Path,
    rules: Sequence[Rule],
    module: Optional[str] = None,
    is_test: Optional[bool] = None,
) -> List[Finding]:
    """Lint one file (suppressions applied).

    ``module``/``is_test`` override path-derived context — this is the
    API the fixture tests use to lint a fixture as if it were, say, a
    ``repro.sim`` module.
    """
    try:
        source = SourceFile.load(path, module=module, is_test=is_test)
    except LOAD_ERRORS as exc:
        return [load_failure_finding(path, exc)]
    findings = lint_source(source, rules) + suppression_findings(source)
    return filter_suppressed(
        findings, {str(source.path): parse_suppressions(source.text)}
    )


def iter_target_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Expand lint targets to Python files, deterministically ordered.

    Directory walks skip caches, VCS internals and the lint fixture
    corpus (``tests/lint/fixtures`` holds files that are *meant* to be
    flagged); explicitly listed files are always yielded.
    """
    for target in paths:
        if target.is_file():
            yield target
            continue
        for candidate in sorted(target.rglob("*.py")):
            parts = candidate.parts
            if any(part in _SKIPPED_DIR_NAMES for part in parts):
                continue
            if "fixtures" in parts and "lint" in parts:
                continue
            yield candidate


def find_project_root(paths: Sequence[Path]) -> Optional[Path]:
    """Nearest ancestor of the first target holding a ``pyproject.toml``."""
    for target in paths:
        probe = target.resolve()
        if probe.is_file():
            probe = probe.parent
        for ancestor in (probe, *probe.parents):
            if (ancestor / "pyproject.toml").is_file():
                return ancestor
    return None


def lint_paths(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    project_rules: Sequence[ProjectRule] = (),
    root: Optional[Path] = None,
) -> List[Finding]:
    """Lint files under ``paths`` plus project-wide invariants."""
    findings: List[Finding] = []
    suppressions: Dict[
        str, Dict[int, Tuple[frozenset, Optional[str]]]
    ] = {}
    for path in iter_target_files(paths):
        try:
            source = SourceFile.load(path)
        except LOAD_ERRORS as exc:
            findings.append(load_failure_finding(path, exc))
            continue
        suppressions[str(source.path)] = parse_suppressions(source.text)
        findings.extend(lint_source(source, rules))
        findings.extend(suppression_findings(source))
    if project_rules:
        if root is None:
            root = find_project_root(paths)
        if root is not None:
            for rule in project_rules:
                for finding in rule.check_project(root):
                    if finding.path not in suppressions:
                        try:
                            text = Path(finding.path).read_text(
                                encoding="utf-8"
                            )
                        except OSError:
                            text = ""
                        suppressions[finding.path] = parse_suppressions(
                            text
                        )
                    findings.append(finding)
    return filter_suppressed(findings, suppressions)
