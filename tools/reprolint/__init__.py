"""reprolint — AST-based invariant checks for this repository."""

from __future__ import annotations

from ._api import *  # noqa: F401,F403
from ._api import __all__  # noqa: F401
