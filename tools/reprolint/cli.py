"""Command-line entry point: ``python -m reprolint [paths...]``.

Exit codes: 0 clean, 1 findings reported, 2 usage/target errors.
Formats: ``text`` (human, default), ``json`` (machine), ``github``
(workflow annotation commands understood by GitHub Actions), ``sarif``
(SARIF 2.1.0 for code-scanning upload).

Incremental analysis is on by default: per-file work is cached under
``.reprolint-cache/`` at the project root and reused while content
hashes and transitive dependencies are unchanged (``--no-cache``
bypasses it). ``--changed[=REF]`` restricts *reporting* to files
changed against a git ref plus their transitive dependents — the
pre-commit configuration runs in this mode.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .cache import CACHE_DIR_NAME
from .driver import AnalysisStats, analyze_paths
from .engine import Finding, SUPPRESSION_RULE_ID, find_project_root
from .rules import ALL_RULES, PROGRAM_RULES, PROJECT_RULES, RULE_BY_ID
from .sarif import render_sarif

#: Default lint targets when none are given on the command line.
DEFAULT_TARGETS = ("src", "tests")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checks for this repository: units "
            "discipline, determinism, kernel/scalar parity, cache-key "
            "purity, hot-path hygiene, and whole-program units/effect "
            "inference."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=(
            "files or directories to lint "
            f"(default: {' '.join(DEFAULT_TARGETS)})"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        default=None,
        metavar="REF",
        help=(
            "report findings only for files changed vs the git ref "
            "(default REF: HEAD) and their transitive dependents"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        metavar="DIR",
        help=(
            "incremental-cache directory (default: "
            f"<project root>/{CACHE_DIR_NAME})"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental analysis cache",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        print(f"{SUPPRESSION_RULE_ID}  suppression hygiene (built-in)")
        for rule_id in sorted(RULE_BY_ID):
            print(f"{rule_id}  {RULE_BY_ID[rule_id].title}")
        return 0

    rules = list(ALL_RULES)
    project_rules = list(PROJECT_RULES)
    program_rules = list(PROGRAM_RULES)
    if options.select:
        selected = {
            token.strip().upper()
            for token in options.select.split(",")
            if token.strip()
        }
        unknown = selected - set(RULE_BY_ID) - {SUPPRESSION_RULE_ID}
        if unknown:
            parser.error(
                "unknown rule id(s): " + ", ".join(sorted(unknown))
            )
        rules = [r for r in rules if r.rule_id in selected]
        project_rules = [
            r for r in project_rules if r.rule_id in selected
        ]
        program_rules = [
            r for r in program_rules if r.rule_id in selected
        ]

    raw_paths = list(options.paths) or list(DEFAULT_TARGETS)
    targets: List[Path] = []
    for raw in raw_paths:
        path = Path(raw)
        if not path.exists():
            print(
                f"reprolint: no such file or directory: {raw}",
                file=sys.stderr,
            )
            return 2
        targets.append(path)

    root = find_project_root(targets)
    cache_dir = options.cache_dir
    if cache_dir is None and not options.no_cache and root is not None:
        cache_dir = root / CACHE_DIR_NAME
    if options.no_cache:
        cache_dir = None

    try:
        findings, stats = analyze_paths(
            targets,
            rules,
            project_rules,
            program_rules,
            root=root,
            cache_dir=cache_dir,
            changed_ref=options.changed,
        )
    except RuntimeError as exc:
        print(f"reprolint: {exc}", file=sys.stderr)
        return 2
    report(findings, options.format)
    print(_stats_line(stats), file=sys.stderr)
    return 1 if findings else 0


def _stats_line(stats: AnalysisStats) -> str:
    return (
        f"reprolint: analyzed {stats.files_analyzed} of "
        f"{stats.files_total} files "
        f"({stats.files_from_cache} from cache)"
    )


def report(findings: Sequence[Finding], fmt: str) -> None:
    if fmt == "json":
        print(
            json.dumps(
                [finding.as_dict() for finding in findings], indent=2
            )
        )
        return
    if fmt == "sarif":
        catalogue = [
            (SUPPRESSION_RULE_ID, "suppression hygiene"),
            *(
                (rule_id, RULE_BY_ID[rule_id].title)
                for rule_id in sorted(RULE_BY_ID)
            ),
        ]
        print(json.dumps(render_sarif(findings, catalogue), indent=2))
        return
    for finding in findings:
        if fmt == "github":
            print(_github_annotation(finding))
        else:
            print(
                f"{finding.location}: {finding.rule_id} "
                f"{finding.message}"
            )
    if fmt == "text":
        count = len(findings)
        if count:
            noun = "finding" if count == 1 else "findings"
            print(f"reprolint: {count} {noun}")
        else:
            print("reprolint: clean")


def _github_annotation(finding: Finding) -> str:
    """One ``::error`` workflow command per finding.

    GitHub parses properties up to the ``::`` terminator, so property
    values must %-escape ``%``, ``\\r``, ``\\n`` (and ``:``/``,`` inside
    properties).
    """
    message = _escape_data(finding.message)
    return (
        f"::error file={_escape_property(finding.path)},"
        f"line={finding.line},col={finding.col + 1},"
        f"title={_escape_property('reprolint ' + finding.rule_id)}"
        f"::{message}"
    )


def _escape_data(value: str) -> str:
    return (
        value.replace("%", "%25")
        .replace("\r", "%0D")
        .replace("\n", "%0A")
    )


def _escape_property(value: str) -> str:
    return (
        _escape_data(value).replace(":", "%3A").replace(",", "%2C")
    )
