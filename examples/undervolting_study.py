#!/usr/bin/env python3
"""Explore the unsafe region below the safe Vmin (paper Section III.B).

Sweeps the rail downward for one configuration, running 60 trials per
10 mV step as the paper does, and reports the observed failure mix (SDCs
near the Vmin, crashes near the bottom) down to the system crash point —
the data behind Figs. 4 and 5.

Run:  python examples/undervolting_study.py [benchmark] [nthreads]
"""

import sys

from repro import VminCampaign, get_benchmark, get_spec
from repro.allocation import Allocation


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    nthreads = int(sys.argv[2]) if len(sys.argv) > 2 else 32
    spec = get_spec("xgene3")
    profile = get_benchmark(name)
    campaign = VminCampaign(spec, seed=3)

    point = campaign.point(
        name,
        nthreads,
        Allocation.CLUSTERED,
        spec.fmax_hz,
        workload_delta_mv=profile.vmin_delta_mv,
    )
    print(
        f"Undervolting {point.label()} of {name} on {spec.name} "
        f"(nominal {spec.nominal_voltage_mv} mV)\n"
    )
    safe = campaign.measure_safe_vmin(point, mode="trials")
    print(
        f"Safe Vmin: {safe.safe_vmin_mv} mV "
        f"({safe.guardband_mv:.0f} mV of guardband exposed, "
        f"{safe.runs_per_step} passing runs per step)\n"
    )

    scan = campaign.scan_unsafe_region(
        point, mode="trials", safe_vmin_mv=safe.safe_vmin_mv
    )
    print(f"{'voltage':>8} {'pass':>5} {'sdc':>4} {'crash':>6} "
          f"{'hang':>5} {'timeout':>8}")
    for step in scan.steps:
        outcomes = step.outcomes
        print(
            f"{step.voltage_mv:>6}mV {outcomes.get('pass', 0):>5} "
            f"{outcomes.get('sdc', 0):>4} {outcomes.get('crash', 0):>6} "
            f"{outcomes.get('hang', 0):>5} "
            f"{outcomes.get('timeout', 0):>8}"
        )
    print(
        f"\nSystem crash point: {scan.crash_voltage_mv} mV "
        f"({safe.safe_vmin_mv - scan.crash_voltage_mv} mV below the "
        f"safe Vmin)."
    )
    print(
        "Note the failure-mix shift: silent data corruptions dominate "
        "just below the Vmin, crashes dominate near the bottom."
    )


if __name__ == "__main__":
    main()
