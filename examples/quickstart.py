#!/usr/bin/env python3
"""Quickstart: run the paper's daemon against the default machine.

Generates a 10-minute random server workload for the 32-core X-Gene 3
model, replays it under the stock Linux configuration (ondemand governor,
nominal voltage) and under the paper's Optimal daemon (core allocation +
per-PMD frequency + safe-Vmin voltage), and prints the energy comparison.

Run:  python examples/quickstart.py
"""

from repro import run_evaluation


def main() -> None:
    print("Generating a 10-minute server workload for X-Gene 3 ...")
    evaluation = run_evaluation(
        "xgene3",
        duration_s=600.0,
        seed=1,
        configs=("baseline", "optimal"),
    )
    print(f"{len(evaluation.workload)} jobs replayed twice.\n")

    print(f"{'config':<10} {'time(s)':>9} {'power(W)':>9} "
          f"{'energy(J)':>11} {'ED2P':>11}")
    for row in evaluation.rows():
        print(
            f"{row.config:<10} {row.time_s:>9.1f} "
            f"{row.average_power_w:>9.2f} {row.energy_j:>11.1f} "
            f"{row.ed2p:>11.3e}"
        )

    optimal = evaluation.row("optimal")
    print(
        f"\nThe daemon saved {optimal.energy_savings_pct:.1f}% energy "
        f"for a {optimal.time_penalty_pct:.1f}% completion-time shift"
    )
    print(
        f"(paper, 1-hour workload on real hardware: 22.3% / 2.5%)."
    )
    baseline = evaluation.results["baseline"]
    print(
        f"\nSafety audit: {len(evaluation.results['optimal'].violations)}"
        f" undervolting violations across "
        f"{evaluation.results['optimal'].voltage_transitions} voltage"
        f" transitions (baseline made "
        f"{baseline.voltage_transitions})."
    )


if __name__ == "__main__":
    main()
