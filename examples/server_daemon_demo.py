#!/usr/bin/env python3
"""Full four-configuration evaluation, as in paper Section VI.B.

Generates one random server workload and replays it under all four
configurations of the paper's evaluation — Baseline, Safe-Vmin,
Placement and Optimal — then prints the Tables III/IV-style comparison
and a short timeline summary (Figs. 14/15).

Run:  python examples/server_daemon_demo.py [xgene2|xgene3] [duration_s]
"""

import sys

from repro import run_evaluation
from repro.sim.tracing import moving_average


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "xgene2"
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 900.0

    print(
        f"Replaying a {duration:.0f}s workload under 4 configurations "
        f"on {platform} ..."
    )
    evaluation = run_evaluation(platform, duration_s=duration, seed=7)

    print(
        f"\n{'config':<10} {'time(s)':>8} {'power(W)':>9} "
        f"{'energy(J)':>10} {'E save':>7} {'ED2P save':>10} "
        f"{'migr':>5} {'viol':>5}"
    )
    for row in evaluation.rows():
        result = evaluation.results[row.config]
        print(
            f"{row.config:<10} {row.time_s:>8.1f} "
            f"{row.average_power_w:>9.2f} {row.energy_j:>10.1f} "
            f"{row.energy_savings_pct:>6.1f}% "
            f"{row.ed2p_savings_pct:>9.1f}% "
            f"{result.total_migrations:>5} {row.violations:>5}"
        )

    print("\nPaper reference (1-hour workloads on real hardware):")
    if platform == "xgene2":
        print("  Safe Vmin 11.6% | Placement 18.3% | Optimal 25.2% "
              "(time +3.2%)")
    else:
        print("  Safe Vmin 10.9% | Placement 13.4% | Optimal 22.3% "
              "(time +2.5%)")

    # Fig. 14/15-style timeline digest for the Optimal run.
    trace = evaluation.results["optimal"].trace
    load = moving_average(
        [float(v) for v in trace.load_series()], 60
    )
    print(
        f"\nOptimal-run timeline: peak load "
        f"{max(trace.load_series())} busy cores, "
        f"1-min-average load peak {max(load):.1f}, "
        f"power range {min(trace.power_series()):.1f}-"
        f"{trace.peak_power_w():.1f} W"
    )
    mem_peak = max(m for _, m in trace.class_series())
    cpu_peak = max(c for c, _ in trace.class_series())
    print(
        f"Concurrent processes peaked at {cpu_peak} CPU-intensive and "
        f"{mem_peak} memory-intensive."
    )


if __name__ == "__main__":
    main()
