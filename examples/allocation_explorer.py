#!/usr/bin/env python3
"""Explore the clustered-vs-spreaded trade-off (paper Figs. 2, 6, 7).

For a chosen benchmark and thread count, measures execution time, energy
and droop behaviour under both core allocations at nominal voltage, and
shows how the winner flips with the benchmark's memory intensity.

Run:  python examples/allocation_explorer.py [benchmark] [nthreads]
"""

import sys

from repro import get_benchmark, get_spec
from repro.allocation import Allocation, utilized_pmd_count
from repro.experiments.energy_runner import EnergyRunner
from repro.vmin.droop import DroopModel, droop_bin


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "CG"
    nthreads = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    spec = get_spec("xgene2")
    profile = get_benchmark(name)
    runner = EnergyRunner(spec)
    droops = DroopModel(spec)

    print(
        f"{name} with {nthreads} threads on {spec.name} @ "
        f"{spec.fmax_hz / 1e9:.1f} GHz "
        f"(memory fraction {profile.mem_fraction:.2f})\n"
    )
    results = {}
    for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
        measured = runner.measure(
            profile, nthreads, allocation, voltage="nominal"
        )
        pmds = utilized_pmd_count(spec, nthreads, allocation)
        bin_mv = droop_bin(spec, pmds)
        rates = droops.rates_per_mcycles(
            pmds, activity=profile.droop_activity, workload_name=name
        )
        results[allocation] = measured
        print(f"{allocation.value}:")
        print(f"  utilized PMDs        : {pmds}")
        print(f"  worst droop bin      : [{bin_mv[0]},{bin_mv[1]}) mV")
        print(
            f"  droops in that bin   : "
            f"{rates[bin_mv]:.1f} / 1M cycles"
        )
        print(f"  execution time       : {measured.duration_s:.1f} s")
        print(f"  energy (normalized)  : "
              f"{measured.normalized_energy_j:.1f} J")
        print(
            f"  safe Vmin available  : "
            f"{runner.safe_voltage_mv(profile, nthreads, allocation, spec.fmax_hz)} mV\n"
        )

    clustered = results[Allocation.CLUSTERED].normalized_energy_j
    spreaded = results[Allocation.SPREADED].normalized_energy_j
    diff = 100.0 * (clustered - spreaded) / clustered
    winner = "spreaded" if diff > 0 else "clustered"
    print(
        f"Energy difference (Ec-Es)/Ec = {diff:+.1f}% -> {winner} wins."
    )
    print(
        "Memory-intensive programs want a private L2 per thread "
        "(spreaded); CPU-intensive programs want fewer powered PMDs "
        "and a lower droop class (clustered)."
    )


if __name__ == "__main__":
    main()
