#!/usr/bin/env python3
"""Power capping with and without the paper's daemon.

Runs the same workload three ways under a fixed power budget:

* uncapped baseline (for reference);
* RAPL-style DVFS capping on the stock machine;
* the paper's daemon with the cap layered on top (placement + safe-Vmin
  voltage + budget-aware clock ceiling).

Run:  python examples/power_capping_demo.py [cap_watts]
"""

import sys

from repro import Chip, ServerSystem, ServerWorkloadGenerator, get_spec
from repro.policies.governors import BaselinePolicy
from repro.policies.powercap import CappedDaemonPolicy, PowerCapPolicy


def main() -> None:
    cap_w = float(sys.argv[1]) if len(sys.argv) > 1 else 28.0
    spec = get_spec("xgene3")
    workload = ServerWorkloadGenerator(max_cores=32, seed=9).generate(
        900.0
    )
    print(
        f"Budget: {cap_w:.0f} W on {spec.name}; "
        f"{len(workload)} jobs over 15 minutes.\n"
    )

    runs = {}
    runs["uncapped baseline"] = ServerSystem(
        Chip(spec), workload, BaselinePolicy()
    ).run()
    capper = PowerCapPolicy(spec, cap_w=cap_w)
    runs["capped baseline"] = ServerSystem(
        Chip(spec), workload, capper
    ).run()
    smart = CappedDaemonPolicy(spec, cap_w=cap_w)
    runs["capped daemon"] = ServerSystem(Chip(spec), workload, smart).run()

    print(f"{'configuration':<20} {'time(s)':>8} {'avg W':>7} "
          f"{'peak W':>7} {'energy(J)':>10}")
    for name, result in runs.items():
        print(
            f"{name:<20} {result.makespan_s:>8.1f} "
            f"{result.average_power_w:>7.2f} "
            f"{result.trace.peak_power_w():>7.2f} "
            f"{result.energy_j:>10.1f}"
        )

    print(
        f"\nCapped baseline throttled {capper.throttle_events} times "
        f"(released {capper.release_events})."
    )
    print(
        f"Capped daemon throttled {smart.throttle_events} times and "
        f"still finished with {len(runs['capped daemon'].violations)} "
        f"undervolting violations."
    )
    base = runs["capped baseline"].energy_j
    smart_e = runs["capped daemon"].energy_j
    print(
        f"Under the same budget the daemon used "
        f"{100 * (base - smart_e) / base:.1f}% less energy than "
        f"DVFS-only capping."
    )


if __name__ == "__main__":
    main()
