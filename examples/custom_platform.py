#!/usr/bin/env python3
"""Run the whole pipeline on a platform you define yourself.

The library is not hard-wired to the paper's two chips: register a spec,
a ground-truth Vmin table, power constants (and optionally thermal
constants) for your own machine, then characterize it, build its policy
table and run the daemon — exactly as for the X-Genes.

This example models a fictive 16-core "Hydra-16" ARM server (8 PMDs,
2.6 GHz, 920 mV nominal) and reproduces the paper's headline comparison
on it.

Run:  python examples/custom_platform.py
"""

from repro.allocation import Allocation
from repro.core import VminPolicyTable, run_evaluation
from repro.platform.specs import (
    CacheSpec,
    ChipSpec,
    FrequencyClass,
    register_platform,
)
from repro.platform.thermal import ThermalParams, register_thermal_params
from repro.power.model import PowerParams, register_power_params
from repro.units import ghz, mhz
from repro.vmin import VminCampaign
from repro.vmin.model import register_vmin_table


def hydra16_spec() -> ChipSpec:
    return ChipSpec(
        name="Hydra-16",
        n_cores=16,
        cores_per_pmd=2,
        fmax_hz=ghz(2.6),
        fmin_hz=mhz(325),
        nominal_voltage_mv=920,
        min_voltage_mv=600,
        tdp_w=60.0,
        technology_nm=14,
        caches=CacheSpec(
            l1i_bytes=48 * 1024,
            l1d_bytes=32 * 1024,
            l2_bytes_per_pmd=512 * 1024,
            l3_bytes=16 * 1024 * 1024,
            l3_in_pcp_domain=True,
        ),
        memory_bandwidth_bps=50e9,
        clock_division_below_half=True,
    )


def register_hydra16() -> str:
    """Register spec + Vmin + power + thermal; returns the registry key."""
    key = register_platform(hydra16_spec)
    spec = hydra16_spec()
    register_vmin_table(
        spec,
        {
            # 8 PMDs -> four droop classes (1, 2, 4, 8 PMDs).
            FrequencyClass.HIGH: (800, 815, 830, 845),
            FrequencyClass.SKIP: (775, 790, 805, 820),
            FrequencyClass.DIVIDE: (700, 715, 730, 745),
        },
    )
    register_power_params(
        spec.name,
        PowerParams(
            uncore_w=3.0,
            core_dyn_max_w=2.0,
            core_leak_w=0.22,
            pmd_overhead_w=0.40,
            uncore_on_rail=True,
            leak_exponent=2.8,
            idle_activity=0.12,
            external_w=1.5,
        ),
    )
    register_thermal_params(
        spec.name,
        ThermalParams(resistance_c_per_w=0.8, time_constant_s=12.0),
    )
    return key


def main() -> None:
    key = register_hydra16()
    spec = hydra16_spec()
    print(f"Registered custom platform {spec.name!r} as {key!r}.\n")

    print("Characterizing (Section III protocol) ...")
    campaign = VminCampaign(spec)
    for nthreads, allocation in (
        (16, Allocation.CLUSTERED),
        (8, Allocation.SPREADED),
        (8, Allocation.CLUSTERED),
    ):
        point = campaign.point(
            "CG", nthreads, allocation, spec.fmax_hz
        )
        measured = campaign.measure_safe_vmin(point, mode="trials")
        print(
            f"  {point.label():<24} safe Vmin {measured.safe_vmin_mv} mV "
            f"(guardband {measured.guardband_mv:.0f} mV)"
        )

    policy = VminPolicyTable.from_characterization(spec)
    print(
        f"\nPolicy table built; full-chip level at fmax: "
        f"{policy.safe_voltage_mv(spec.n_pmds, spec.fmax_hz)} mV.\n"
    )

    print("Replaying a 10-minute workload under all four configurations:")
    evaluation = run_evaluation(key, duration_s=600.0, seed=3)
    for row in evaluation.rows():
        print(
            f"  {row.config:<10} energy {row.energy_j:9.1f} J  "
            f"saved {row.energy_savings_pct:5.1f}%  "
            f"violations {row.violations}"
        )
    print(
        "\nThe paper's methodology transfers: characterization, the "
        "policy table and the daemon run unchanged on the new machine."
    )


if __name__ == "__main__":
    main()
