#!/usr/bin/env python3
"""Watch the daemon track a program through its phases (Fig. 13 case b).

Runs a phased program — memory-bound setup followed by a CPU-bound
kernel — under the paper's daemon and prints the timeline of
classifications, clock changes and rail moves. The daemon is never told
about the phases: it has to notice them through the PMU, exactly as on
hardware.

Run:  python examples/phase_tracking_demo.py [phased-benchmark]
      (built-ins: setup-then-crunch, compute-then-writeback,
       stream-compute, sawtooth)
"""

import sys

from repro import Chip, OnlineMonitoringDaemon, ServerSystem, get_spec
from repro.units import fmt_freq, fmt_mv
from repro.workloads import get_phased
from repro.workloads.generator import JobSpec, Workload


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "setup-then-crunch"
    phased = get_phased(name)
    spec = get_spec("xgene2")
    chip = Chip(spec)
    daemon = OnlineMonitoringDaemon(spec)
    workload = Workload(
        jobs=(JobSpec(job_id=0, benchmark=name, nthreads=2,
                      start_time_s=0.0),),
        duration_s=600.0,
        max_cores=8,
        seed=0,
    )
    print(f"Program: {name}")
    for index, phase in enumerate(phased.phases):
        kind = (
            "memory-intensive"
            if phase.profile.is_memory_intensive_reference()
            else "CPU-intensive"
        )
        print(
            f"  phase {index}: {phase.fraction:.0%} of the work "
            f"behaves like {phase.profile.name} ({kind})"
        )
    print()

    system = ServerSystem(chip, workload, daemon)
    result = system.run()

    print("Voltage timeline (rail transitions):")
    for t in chip.slimpro.transitions:
        arrow = "raise" if t.to_mv > t.from_mv else "lower"
        print(
            f"  t={t.time_s:7.2f}s  {fmt_mv(t.from_mv)} -> "
            f"{fmt_mv(t.to_mv)}  ({arrow})"
        )
    print("\nClock timeline (PMD 0, where the job runs):")
    for t in chip.cppc.transitions:
        if t.pmd_id == 0:
            print(
                f"  t={t.time_s:7.2f}s  {fmt_freq(t.from_hz)} -> "
                f"{fmt_freq(t.to_hz)}"
            )
    proc = result.processes[0]
    print(
        f"\nJob finished at t={proc.finish_s:.1f}s; the daemon retuned "
        f"{daemon.retunes} times and never undervolted "
        f"({len(result.violations)} violations)."
    )


if __name__ == "__main__":
    main()
