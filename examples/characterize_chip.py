#!/usr/bin/env python3
"""Characterize a chip's voltage guardbands, as in paper Section III.

Runs the safe-Vmin search (descend from nominal in 10 mV steps, a level
is safe when 1000 runs pass) for a few benchmarks across thread-scaling,
allocation and frequency options, then distils the results into the
daemon's Table II-style policy table.

Run:  python examples/characterize_chip.py [xgene2|xgene3]
"""

import sys

from repro import VminCampaign, get_benchmark, get_spec
from repro.allocation import Allocation
from repro.core import VminPolicyTable
from repro.experiments import table2
from repro.units import fmt_freq


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "xgene3"
    spec = get_spec(platform)
    campaign = VminCampaign(spec)
    benchmarks = ("CG", "namd", "milc")

    print(f"Safe-Vmin characterization of {spec.name} "
          f"(nominal {spec.nominal_voltage_mv} mV)\n")
    header = (
        f"{'benchmark':<10} {'config':<22} {'safe Vmin':>10} "
        f"{'guardband':>10}"
    )
    print(header)
    print("-" * len(header))
    for nthreads, allocation in (
        (spec.n_cores, Allocation.CLUSTERED),
        (spec.n_cores // 2, Allocation.SPREADED),
        (spec.n_cores // 2, Allocation.CLUSTERED),
    ):
        for freq in (spec.fmax_hz, spec.half_frequency_hz):
            for name in benchmarks:
                profile = get_benchmark(name)
                point = campaign.point(
                    name,
                    nthreads,
                    allocation,
                    freq,
                    workload_delta_mv=profile.vmin_delta_mv,
                )
                result = campaign.measure_safe_vmin(point, mode="trials")
                print(
                    f"{name:<10} {point.label():<22} "
                    f"{result.safe_vmin_mv:>8} mV "
                    f"{result.guardband_mv:>8.0f} mV"
                )

    print("\nDistilled into the daemon's policy table (Table II):\n")
    print(table2.run(platform, VminPolicyTable.from_characterization(
        spec
    )).format())


if __name__ == "__main__":
    main()
