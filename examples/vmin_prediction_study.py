#!/usr/bin/env python3
"""Why the paper rejects Vmin predictors (Section VI.A), quantified.

Fits a least-squares Vmin predictor on a sample of characterization
measurements — the style of model the literature proposes — and compares
it against the paper's measured policy table on three axes: average
accuracy, undervolting tail, and what is left of its advantage once a
safety guard covers that tail.

Run:  python examples/vmin_prediction_study.py [xgene2|xgene3]
"""

import sys

from repro import get_spec
from repro.core import VminPolicyTable
from repro.vmin import VminModel, VminPredictor


def main() -> None:
    platform = sys.argv[1] if len(sys.argv) > 1 else "xgene2"
    spec = get_spec(platform)
    model = VminModel(spec)

    print(f"Fitting a regression Vmin predictor for {spec.name} ...")
    predictor = VminPredictor(spec)
    points = predictor.sample_configurations(model, fraction=0.4, seed=1)
    predictor.fit(points)
    print(f"  trained on {len(points)} sampled measurements\n")

    report = predictor.evaluate(model)
    print("Predictor accuracy over the full configuration space:")
    print(f"  mean |error|          : {report.mean_abs_error_mv:.1f} mV")
    print(
        f"  underpredicted configs: {report.underpredicted_configs}"
        f"/{report.total_configs} "
        f"({100 * report.underprediction_rate:.1f}%)"
    )
    print(
        f"  worst underprediction : "
        f"{report.max_underprediction_mv:.1f} mV below the true Vmin"
    )
    print(
        "\nEvery underprediction is a potential SDC or crash on real "
        "hardware."
    )

    guard = predictor.required_guard_mv(model)
    guarded = predictor.evaluate(model, guard_mv=guard)
    print(
        f"\nGuard needed to never undervolt: {guard:.1f} mV "
        f"(then {guarded.underpredicted_configs} underpredictions)."
    )

    table = VminPolicyTable.from_characterization(spec, vmin_model=model)
    sample_pmds = max(1, spec.n_pmds // 2)
    table_level = table.safe_voltage_mv(sample_pmds, spec.fmax_hz)
    print(
        f"\nThe paper's measured table for {sample_pmds} PMDs @ fmax: "
        f"{table_level} mV — conservative by construction, zero "
        f"undervolting by construction, and after the predictor's "
        f"{guard:.0f} mV guard the two approaches reclaim similar "
        f"margins. Measured tables win: same savings, none of the risk."
    )


if __name__ == "__main__":
    main()
