"""Tests for the four evaluation configurations (paper Section VI.B)."""

import pytest

from repro.core.configurations import (
    CONFIG_NAMES,
    make_policy,
    run_configuration,
    run_evaluation,
)
from repro.errors import ConfigurationError
from repro.policies.daemon import OnlineMonitoringDaemon
from repro.policies.governors import BaselinePolicy
from repro.policies.safevmin import SafeVminPolicy
from repro.workloads.generator import ServerWorkloadGenerator


class TestFactory:
    def test_all_names_buildable(self, spec3, policy3):
        for name in CONFIG_NAMES:
            policy = make_policy(spec3, name, policy=policy3)
            assert policy is not None

    def test_baseline_type(self, spec3):
        assert isinstance(
            make_policy(spec3, "baseline"), BaselinePolicy
        )

    def test_registry_keys_accepted_directly(self, spec3, policy3):
        assert isinstance(
            make_policy(spec3, "safe-vmin", policy=policy3),
            SafeVminPolicy,
        )

    def test_safe_vmin_type(self, spec3, policy3):
        assert isinstance(
            make_policy(spec3, "safe_vmin", policy=policy3),
            SafeVminPolicy,
        )

    def test_placement_daemon_without_voltage(self, spec3, policy3):
        daemon = make_policy(spec3, "placement", policy=policy3)
        assert isinstance(daemon, OnlineMonitoringDaemon)
        assert not daemon.control_voltage

    def test_optimal_daemon_with_voltage(self, spec3, policy3):
        daemon = make_policy(spec3, "optimal", policy=policy3)
        assert daemon.control_voltage

    def test_unknown_config(self, spec3):
        with pytest.raises(ConfigurationError):
            make_policy(spec3, "turbo")


@pytest.fixture(scope="module")
def small_evaluation():
    """A 5-minute evaluation on X-Gene 2 (all four configurations)."""
    return run_evaluation("xgene2", duration_s=300.0, seed=11)


class TestEvaluation:
    def test_all_configs_present(self, small_evaluation):
        assert set(small_evaluation.results) == set(CONFIG_NAMES)

    def test_same_workload_replayed(self, small_evaluation):
        jobs = {
            name: tuple(
                (p.pid, p.name, p.arrival_s)
                for p in result.processes
            )
            for name, result in small_evaluation.results.items()
        }
        assert len(set(jobs.values())) == 1

    def test_savings_ordering(self, small_evaluation):
        rows = {r.config: r for r in small_evaluation.rows()}
        assert rows["baseline"].energy_savings_pct == 0.0
        assert rows["optimal"].energy_savings_pct > max(
            rows["safe_vmin"].energy_savings_pct,
            rows["placement"].energy_savings_pct,
        )
        assert rows["safe_vmin"].energy_savings_pct > 0
        assert rows["placement"].energy_savings_pct > 0

    def test_no_violations_anywhere(self, small_evaluation):
        for result in small_evaluation.results.values():
            assert result.violations == []

    def test_time_penalty_small(self, small_evaluation):
        rows = {r.config: r for r in small_evaluation.rows()}
        assert rows["safe_vmin"].time_penalty_pct == pytest.approx(
            0.0, abs=0.01
        )
        assert rows["optimal"].time_penalty_pct < 10.0

    def test_placement_and_optimal_share_makespan(self, small_evaluation):
        rows = {r.config: r for r in small_evaluation.rows()}
        # Voltage scaling never changes timing, only power.
        assert rows["placement"].time_s == pytest.approx(
            rows["optimal"].time_s, rel=1e-6
        )

    def test_ed2p_consistent(self, small_evaluation):
        for row in small_evaluation.rows():
            assert row.ed2p == pytest.approx(
                row.energy_j * row.time_s**2, rel=1e-9
            )

    def test_missing_baseline_rejected(self):
        with pytest.raises(ConfigurationError):
            run_evaluation(
                "xgene2", duration_s=60.0, configs=("optimal",)
            )

    def test_row_for_unknown_config(self, small_evaluation):
        with pytest.raises(ConfigurationError):
            small_evaluation.row("turbo")


class TestRunConfiguration:
    def test_explicit_workload(self, spec2):
        workload = ServerWorkloadGenerator(max_cores=8, seed=3).generate(
            120.0
        )
        result = run_configuration("xgene2", workload, "baseline")
        assert result.makespan_s > 0

    def test_silicon_seed_changes_vmin_but_not_baseline_energy(self):
        workload = ServerWorkloadGenerator(max_cores=8, seed=3).generate(
            120.0
        )
        a = run_configuration("xgene2", workload, "baseline", silicon_seed=1)
        b = run_configuration("xgene2", workload, "baseline", silicon_seed=2)
        # Baseline ignores Vmin entirely: identical runs.
        assert a.energy_j == pytest.approx(b.energy_j)
