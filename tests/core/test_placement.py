"""Tests for the daemon's placement engine (paper Fig. 13)."""

import pytest

from repro.core.placement import (
    PlacementEngine,
    default_memory_frequency_hz,
)
from repro.errors import PlacementError
from repro.sim.process import SimProcess, WorkloadClass
from repro.units import ghz
from repro.workloads.suites import get_benchmark


def proc(pid, name, nthreads, cls):
    process = SimProcess(
        pid=pid,
        profile=get_benchmark(name),
        nthreads=nthreads,
        arrival_s=0.0,
    )
    process.observed_class = cls
    return process


CPU = WorkloadClass.CPU_INTENSIVE
MEM = WorkloadClass.MEMORY_INTENSIVE
UNKNOWN = WorkloadClass.UNKNOWN


class TestMemoryFrequency:
    def test_xgene2_uses_clock_division_point(self, spec2):
        # Section V: 0.9 GHz is the X-Gene 2 energy sweet spot.
        assert default_memory_frequency_hz(spec2) == ghz(0.9)

    def test_xgene3_uses_half_clock(self, spec3):
        assert default_memory_frequency_hz(spec3) == ghz(1.5)


class TestPlanning:
    def test_cpu_jobs_clustered(self, spec3):
        engine = PlacementEngine(spec3)
        plan = engine.plan([proc(1, "namd", 4, CPU)])
        cores = plan.assignments[1]
        pmds = {spec3.pmd_of_core(c) for c in cores}
        assert len(pmds) == 2  # 4 threads on 2 PMDs

    def test_memory_jobs_spreaded(self, spec3):
        engine = PlacementEngine(spec3)
        plan = engine.plan([proc(1, "CG", 4, MEM)])
        cores = plan.assignments[1]
        pmds = {spec3.pmd_of_core(c) for c in cores}
        assert len(pmds) == 4  # one PMD per thread

    def test_unknown_treated_as_cpu(self, spec3):
        # The fail-safe default of Fig. 13.
        engine = PlacementEngine(spec3)
        plan = engine.plan([proc(1, "CG", 4, UNKNOWN)])
        pmd0 = spec3.pmd_of_core(plan.assignments[1][0])
        assert plan.pmd_freqs_hz[pmd0] == spec3.fmax_hz

    def test_mixed_groups_separated(self, spec3):
        engine = PlacementEngine(spec3)
        plan = engine.plan(
            [proc(1, "namd", 2, CPU), proc(2, "CG", 2, MEM)]
        )
        cpu_pmds = {spec3.pmd_of_core(c) for c in plan.assignments[1]}
        mem_pmds = {spec3.pmd_of_core(c) for c in plan.assignments[2]}
        assert cpu_pmds.isdisjoint(mem_pmds)
        for pmd in cpu_pmds:
            assert plan.pmd_freqs_hz[pmd] == spec3.fmax_hz
        for pmd in mem_pmds:
            assert plan.pmd_freqs_hz[pmd] == engine.mem_freq_hz

    def test_idle_pmds_parked(self, spec3):
        engine = PlacementEngine(spec3)
        plan = engine.plan([proc(1, "namd", 2, CPU)])
        idle_pmds = [
            pmd
            for pmd in range(spec3.n_pmds)
            if plan.pmd_freqs_hz[pmd] == engine.idle_freq_hz
        ]
        assert len(idle_pmds) == spec3.n_pmds - 1

    def test_voltage_from_policy(self, spec3, policy3):
        engine = PlacementEngine(spec3, policy=policy3)
        plan = engine.plan([proc(1, "namd", 2, CPU)])
        assert plan.voltage_mv == policy3.safe_voltage_mv(
            1, spec3.fmax_hz
        )

    def test_voltage_disabled(self, spec3, policy3):
        engine = PlacementEngine(
            spec3, policy=policy3, control_voltage=False
        )
        plan = engine.plan([proc(1, "namd", 2, CPU)])
        assert plan.voltage_mv is None

    def test_all_memory_drops_to_low_freq_voltage(self, spec2, policy2):
        # All-memory moments unlock the clock-division voltage on
        # X-Gene 2 (the Optimal configuration's deepest savings).
        engine = PlacementEngine(spec2, policy=policy2)
        plan = engine.plan([proc(1, "CG", 2, MEM)])
        assert plan.max_active_freq_hz == ghz(0.9)
        assert plan.voltage_mv == policy2.safe_voltage_mv(2, ghz(0.9))

    def test_over_capacity_rejected(self, spec2):
        engine = PlacementEngine(spec2)
        with pytest.raises(PlacementError):
            engine.plan(
                [proc(1, "namd", 8, CPU), proc(2, "CG", 1, MEM)]
            )

    def test_full_chip_plan(self, spec3):
        engine = PlacementEngine(spec3)
        processes = [
            proc(i, "namd" if i % 2 else "CG", 4, CPU if i % 2 else MEM)
            for i in range(8)
        ]
        plan = engine.plan(processes)
        all_cores = [c for cores in plan.assignments.values() for c in cores]
        assert sorted(all_cores) == list(range(32))

    def test_utilized_pmd_accounting(self, spec3):
        engine = PlacementEngine(spec3)
        plan = engine.plan(
            [proc(1, "namd", 4, CPU), proc(2, "CG", 3, MEM)]
        )
        assert plan.utilized_pmds == 2 + 3


class TestRetune:
    def test_retune_keeps_assignment(self, spec3):
        engine = PlacementEngine(spec3)
        process = proc(1, "CG", 2, MEM)
        process.start(0.0, (0, 2))
        plan = engine.retune([process])
        assert plan.assignments[1] == (0, 2)

    def test_retune_adjusts_frequency_to_class(self, spec3):
        engine = PlacementEngine(spec3)
        process = proc(1, "CG", 2, MEM)
        process.start(0.0, (0, 2))
        plan = engine.retune([process])
        assert plan.pmd_freqs_hz[0] == engine.mem_freq_hz
        assert plan.pmd_freqs_hz[1] == engine.mem_freq_hz
