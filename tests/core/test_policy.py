"""Tests for the daemon's Vmin policy table (paper Table II)."""

import pytest

from repro.core.policy import VminPolicyTable
from repro.errors import ConfigurationError
from repro.platform.specs import FrequencyClass
from repro.units import ghz
from repro.vmin.droop import droop_ladder
from repro.vmin.model import VminModel
from repro.workloads.suites import characterization_set


class TestConstruction:
    def test_covers_all_classes(self, policy3, spec3):
        for droop_class in range(len(droop_ladder(spec3))):
            for freq_class in (FrequencyClass.HIGH, FrequencyClass.SKIP):
                entry = policy3.entry(freq_class, droop_class)
                assert entry.vmin_mv <= spec3.nominal_voltage_mv

    def test_xgene2_has_divide_rows(self, policy2):
        entry = policy2.entry(FrequencyClass.DIVIDE, 0)
        assert entry.vmin_mv < policy2.entry(FrequencyClass.SKIP, 0).vmin_mv

    def test_xgene3_divide_falls_back_to_skip(self, policy3):
        divide = policy3.entry(FrequencyClass.DIVIDE, 2)
        skip = policy3.entry(FrequencyClass.SKIP, 2)
        assert divide.vmin_mv == skip.vmin_mv

    def test_missing_entry_rejected(self, spec3):
        with pytest.raises(ConfigurationError):
            VminPolicyTable(spec3, {(FrequencyClass.HIGH, 0): 800})

    def test_negative_guard_rejected(self, spec3, policy3):
        entries = {
            (e.freq_class, e.droop_class): e.vmin_mv
            for e in policy3.rows()
        }
        with pytest.raises(ConfigurationError):
            VminPolicyTable(spec3, entries, guard_mv=-1)


class TestMonotonicity:
    """The fail-safe transition logic relies on these orderings."""

    def test_vmin_rises_with_droop_class(self, policy3, spec3):
        for freq_class in (FrequencyClass.HIGH, FrequencyClass.SKIP):
            values = [
                policy3.entry(freq_class, c).vmin_mv
                for c in range(len(droop_ladder(spec3)))
            ]
            assert values == sorted(values)

    def test_high_at_least_skip(self, policy3, spec3):
        for droop_class in range(len(droop_ladder(spec3))):
            assert (
                policy3.entry(FrequencyClass.HIGH, droop_class).vmin_mv
                >= policy3.entry(FrequencyClass.SKIP, droop_class).vmin_mv
            )


class TestSafety:
    """The table must cover the ground truth for every configuration.

    This is the paper's argument for measured tables over predictors:
    the daemon never undervolts because the table is a worst case.
    """

    @pytest.mark.parametrize("nthreads", [1, 2, 4, 8, 16, 32])
    def test_covers_ground_truth_xgene3(self, policy3, spec3, nthreads):
        from repro.allocation import Allocation, cores_for

        model = VminModel(spec3)
        for allocation in (Allocation.CLUSTERED, Allocation.SPREADED):
            cores = cores_for(spec3, nthreads, allocation)
            pmds = len({spec3.pmd_of_core(c) for c in cores})
            for freq in (spec3.fmax_hz, spec3.half_frequency_hz):
                policy_v = policy3.safe_voltage_mv(pmds, freq)
                for profile in characterization_set():
                    truth = model.safe_vmin_mv(
                        freq, cores, profile.vmin_delta_mv
                    )
                    assert policy_v >= truth

    def test_guard_adds_margin(self, spec2):
        tight = VminPolicyTable.from_characterization(spec2, guard_mv=0)
        guarded = VminPolicyTable.from_characterization(spec2, guard_mv=10)
        assert guarded.safe_voltage_mv(4, spec2.fmax_hz) == (
            tight.safe_voltage_mv(4, spec2.fmax_hz) + 10
        )

    def test_never_above_nominal(self, policy2, spec2):
        assert (
            policy2.safe_voltage_mv(spec2.n_pmds, spec2.fmax_hz)
            <= spec2.nominal_voltage_mv
        )


class TestQueries:
    def test_fewer_pmds_lower_voltage(self, policy3, spec3):
        low = policy3.safe_voltage_mv(2, spec3.fmax_hz)
        high = policy3.safe_voltage_mv(16, spec3.fmax_hz)
        assert low < high

    def test_divide_point_deep_on_xgene2(self, policy2, spec2):
        divide = policy2.safe_voltage_mv(1, ghz(0.9))
        high = policy2.safe_voltage_mv(1, ghz(2.4))
        # The ~12% clock-division drop (Fig. 10).
        assert high - divide > 0.08 * spec2.nominal_voltage_mv

    def test_zero_pmds_treated_as_one(self, policy3, spec3):
        assert policy3.safe_voltage_mv(
            0, spec3.fmin_hz
        ) == policy3.safe_voltage_mv(1, spec3.fmin_hz)

    def test_rows_render(self, policy3):
        rows = policy3.rows()
        assert len(rows) >= 8  # 4 droop classes x 2+ freq classes
