"""Tests for the daemon's monitoring half (paper Section VI.A)."""

import pytest

from repro.core.monitoring import (
    MIN_WINDOW_CYCLES,
    MonitoringDaemon,
    PerfLikeReader,
    kernel_module_reader,
)
from repro.errors import ConfigurationError
from repro.sim.process import SimProcess, WorkloadClass
from repro.workloads.suites import get_benchmark


class FakeSystem:
    """Minimal stand-in exposing running_processes() and a chip."""

    def __init__(self, processes, chip=None):
        self._processes = processes
        self.chip = chip

    def running_processes(self):
        return self._processes


def running_proc(pid, name, nthreads=1):
    proc = SimProcess(
        pid=pid,
        profile=get_benchmark(name),
        nthreads=nthreads,
        arrival_s=0.0,
    )
    proc.start(0.0, tuple(range(nthreads)))
    return proc


class TestSampling:
    def test_first_sample_only_snapshots(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        proc.counters.advance(5e6, 5e4)
        changes = monitor.sample(FakeSystem([proc]))
        assert changes == []
        assert proc.observed_class is WorkloadClass.UNKNOWN

    def test_classifies_after_window(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        proc.counters.advance(1e6, 1e4)
        monitor.sample(FakeSystem([proc]))  # snapshot
        proc.counters.advance(2e6, 2e4)  # 10000/1M cycles: memory
        changes = monitor.sample(FakeSystem([proc]))
        assert proc.observed_class is WorkloadClass.MEMORY_INTENSIVE
        assert len(changes) == 1

    def test_short_window_skipped(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        monitor.sample(FakeSystem([proc]))
        proc.counters.advance(MIN_WINDOW_CYCLES / 2, 1e4)
        monitor.sample(FakeSystem([proc]))
        assert proc.observed_class is WorkloadClass.UNKNOWN

    def test_window_scales_with_threads(self):
        # A 4-thread process accumulates 4x cycles per wall second; the
        # window is per-thread.
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG", nthreads=4)
        monitor.sample(FakeSystem([proc]))
        proc.counters.advance(2e6, 2e4)  # only 0.5M cycles per thread
        monitor.sample(FakeSystem([proc]))
        assert proc.observed_class is WorkloadClass.UNKNOWN

    def test_unknown_to_cpu_not_reported_as_change(self):
        # New processes already run under CPU assumptions (fail-safe
        # default), so UNKNOWN -> CPU needs no replan.
        monitor = MonitoringDaemon()
        proc = running_proc(1, "namd")
        monitor.sample(FakeSystem([proc]))
        proc.counters.advance(2e6, 100)
        changes = monitor.sample(FakeSystem([proc]))
        assert proc.observed_class is WorkloadClass.CPU_INTENSIVE
        assert changes == []

    def test_class_flip_reported(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        monitor.sample(FakeSystem([proc]))
        proc.counters.advance(2e6, 2e4)
        monitor.sample(FakeSystem([proc]))  # -> memory
        proc.counters.advance(2e6, 100)  # now CPU-like phase
        changes = monitor.sample(FakeSystem([proc]))
        assert len(changes) == 1
        assert changes[0].sample.decided is WorkloadClass.CPU_INTENSIVE

    def test_forget_drops_state(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        monitor.sample(FakeSystem([proc]))
        monitor.forget(proc)
        proc.counters.advance(2e6, 2e4)
        changes = monitor.sample(FakeSystem([proc]))
        # After forget, the next sample is a fresh snapshot again.
        assert changes == []

    def test_samples_counted(self):
        monitor = MonitoringDaemon()
        proc = running_proc(1, "CG")
        monitor.sample(FakeSystem([proc]))
        proc.counters.advance(2e6, 2e4)
        monitor.sample(FakeSystem([proc]))
        assert monitor.samples_taken == 1


class TestReaders:
    def test_kernel_reader_exact(self):
        proc = running_proc(1, "CG")
        proc.counters.advance(123.0, 45.0)
        assert kernel_module_reader(proc) == (123.0, 45.0)

    def test_perf_reader_noisy(self):
        proc = running_proc(1, "CG")
        proc.counters.advance(1e6, 3e3)
        reader = PerfLikeReader(noise=0.03, seed=2)
        cycles, accesses = reader(proc)
        assert cycles != 1e6
        assert abs(cycles - 1e6) <= 3e4

    def test_perf_reader_validation(self):
        with pytest.raises(ConfigurationError):
            PerfLikeReader(noise=1.0)

    def test_noisy_reader_can_misclassify_borderline(self):
        # The paper's rationale for the kernel module: +/-3% noise near
        # the 3K threshold flips borderline classifications.
        monitor_noisy = MonitoringDaemon(reader=PerfLikeReader(0.03, seed=3))
        monitor_exact = MonitoringDaemon()
        decisions_noisy = set()
        decisions_exact = set()
        for trial in range(40):
            noisy_proc = running_proc(trial, "CG")
            exact_proc = running_proc(trial, "CG")
            for monitor, proc, out in (
                (monitor_noisy, noisy_proc, decisions_noisy),
                (monitor_exact, exact_proc, decisions_exact),
            ):
                monitor.sample(FakeSystem([proc]))
                # Rate right below the threshold boundary: 2990 / 1M.
                proc.counters.advance(2e6, 2 * 2990)
                monitor.sample(FakeSystem([proc]))
                out.add(proc.observed_class)
        assert decisions_exact == {WorkloadClass.CPU_INTENSIVE}
        assert len(decisions_noisy) == 2  # noise flips some trials


class TestValidation:
    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            MonitoringDaemon(min_window_cycles=0)
