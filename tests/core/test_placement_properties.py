"""Property-based tests on the placement engine's invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.placement import PlacementEngine
from repro.platform.specs import xgene3_spec
from repro.sim.process import SimProcess, WorkloadClass
from repro.workloads.suites import get_benchmark

SPEC3 = xgene3_spec()
ENGINE = PlacementEngine(SPEC3)

_CLASSES = (
    WorkloadClass.CPU_INTENSIVE,
    WorkloadClass.MEMORY_INTENSIVE,
    WorkloadClass.UNKNOWN,
)
_NAMES = ("namd", "CG", "milc", "EP", "gcc")


@st.composite
def process_sets(draw):
    """Random process mixes that fit on the 32-core chip."""
    processes = []
    used = 0
    count = draw(st.integers(0, 10))
    for pid in range(count):
        nthreads = draw(st.integers(1, 8))
        if used + nthreads > SPEC3.n_cores:
            break
        used += nthreads
        proc = SimProcess(
            pid=pid,
            profile=get_benchmark(draw(st.sampled_from(_NAMES))),
            nthreads=nthreads,
            arrival_s=0.0,
        )
        proc.observed_class = draw(st.sampled_from(_CLASSES))
        processes.append(proc)
    return processes


class TestPlanInvariants:
    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_assignments_cover_disjoint_cores(self, processes):
        plan = ENGINE.plan(processes)
        all_cores = [
            core
            for cores in plan.assignments.values()
            for core in cores
        ]
        assert len(all_cores) == len(set(all_cores))
        assert all(0 <= c < SPEC3.n_cores for c in all_cores)

    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_every_process_gets_its_threads(self, processes):
        plan = ENGINE.plan(processes)
        for proc in processes:
            assert len(plan.assignments[proc.pid]) == proc.nthreads

    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_every_pmd_has_a_frequency(self, processes):
        plan = ENGINE.plan(processes)
        assert set(plan.pmd_freqs_hz) == set(range(SPEC3.n_pmds))
        for freq in plan.pmd_freqs_hz.values():
            assert freq in SPEC3.frequency_steps()

    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_cpu_threads_never_on_slow_pmds(self, processes):
        plan = ENGINE.plan(processes)
        class_of = {p.pid: p.observed_class for p in processes}
        for pid, cores in plan.assignments.items():
            if class_of[pid] is not WorkloadClass.MEMORY_INTENSIVE:
                for core in cores:
                    pmd = SPEC3.pmd_of_core(core)
                    assert plan.pmd_freqs_hz[pmd] == ENGINE.cpu_freq_hz

    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_voltage_covers_every_running_benchmark(self, processes):
        from repro.vmin.model import VminModel

        plan = ENGINE.plan(processes)
        if plan.voltage_mv is None or not processes:
            return
        model = VminModel(SPEC3)
        active = [
            core
            for cores in plan.assignments.values()
            for core in cores
        ]
        for proc in processes:
            required = model.safe_vmin_mv(
                plan.max_active_freq_hz,
                active,
                proc.profile.vmin_delta_mv,
            )
            assert plan.voltage_mv >= required

    @given(process_sets())
    @settings(max_examples=60, deadline=None)
    def test_utilized_pmds_counted_correctly(self, processes):
        plan = ENGINE.plan(processes)
        pmds = {
            SPEC3.pmd_of_core(core)
            for cores in plan.assignments.values()
            for core in cores
        }
        assert plan.utilized_pmds == len(pmds)

    @given(process_sets())
    @settings(max_examples=30, deadline=None)
    def test_retune_never_moves_threads(self, processes):
        # Assign initial cores via a plan, then retune: assignments must
        # be identical (case (b): no migrations).
        plan = ENGINE.plan(processes)
        for proc in processes:
            proc.start(0.0, plan.assignments[proc.pid])
        retuned = ENGINE.retune(processes)
        for proc in processes:
            assert retuned.assignments[proc.pid] == tuple(proc.cores)
