"""Tests for the DVFS power-capping policies."""

import pytest

from repro.policies.powercap import CappedDaemonPolicy, PowerCapPolicy
from repro.errors import ConfigurationError
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.policies.governors import BaselinePolicy
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, ServerWorkloadGenerator, Workload


def heavy_workload(max_cores=8):
    """Enough simultaneous CPU-bound work to exceed a tight cap."""
    jobs = tuple(
        JobSpec(job_id=i, benchmark="namd", nthreads=1, start_time_s=0.0)
        for i in range(max_cores)
    )
    return Workload(
        jobs=jobs, duration_s=600.0, max_cores=max_cores, seed=0
    )


class TestPowerCapPolicy:
    def test_throttles_above_cap(self):
        spec = xgene2_spec()
        chip = Chip(spec)
        # Uncapped, 8x namd draws well above 10 W on this model.
        capper = PowerCapPolicy(spec, cap_w=10.0)
        result = ServerSystem(chip, heavy_workload(), capper).run()
        assert capper.throttle_events > 0
        trace_power = result.trace.power_series()
        busy_power = [
            p for p, s in zip(trace_power, result.trace.samples)
            if s.busy_cores > 0
        ]
        # Steady-state power respects the cap (allow the settle window).
        assert sorted(busy_power)[len(busy_power) // 2] <= 11.0

    def test_cap_slows_execution(self):
        spec = xgene2_spec()
        uncapped = ServerSystem(
            Chip(spec), heavy_workload(), BaselinePolicy()
        ).run()
        capped = ServerSystem(
            Chip(spec), heavy_workload(), PowerCapPolicy(spec, 10.0)
        ).run()
        assert capped.makespan_s > uncapped.makespan_s

    def test_loose_cap_never_throttles(self):
        spec = xgene2_spec()
        capper = PowerCapPolicy(spec, cap_w=500.0)
        ServerSystem(Chip(spec), heavy_workload(), capper).run()
        assert capper.throttle_events == 0
        assert capper.ceiling_hz == spec.fmax_hz

    def test_release_after_load_drops(self):
        spec = xgene2_spec()
        jobs = tuple(
            JobSpec(job_id=i, benchmark="namd", nthreads=1,
                    start_time_s=0.0)
            for i in range(8)
        ) + (
            JobSpec(job_id=8, benchmark="povray", nthreads=1,
                    start_time_s=400.0),
        )
        workload = Workload(
            jobs=jobs, duration_s=900.0, max_cores=8, seed=0
        )
        capper = PowerCapPolicy(spec, cap_w=10.0)
        ServerSystem(Chip(spec), workload, capper).run()
        assert capper.release_events > 0

    def test_validation(self):
        spec = xgene2_spec()
        with pytest.raises(ConfigurationError):
            PowerCapPolicy(spec, cap_w=0.0)
        with pytest.raises(ConfigurationError):
            PowerCapPolicy(spec, cap_w=10.0, release_margin=1.5)


class TestCappedDaemon:
    def test_daemon_respects_cap_and_stays_safe(self):
        spec = xgene3_spec()
        workload = ServerWorkloadGenerator(
            max_cores=32, seed=31
        ).generate(600.0)
        capped = CappedDaemonPolicy(spec, cap_w=30.0)
        result = ServerSystem(Chip(spec), workload, capped).run()
        assert result.violations == []
        assert capped.throttle_events > 0

    def test_capped_daemon_cheaper_than_capped_baseline(self):
        spec = xgene3_spec()
        workload = ServerWorkloadGenerator(
            max_cores=32, seed=31
        ).generate(600.0)
        base = ServerSystem(
            Chip(spec), workload, PowerCapPolicy(spec, 30.0)
        ).run()
        smart = ServerSystem(
            Chip(spec), workload, CappedDaemonPolicy(spec, 30.0)
        ).run()
        # Same budget, but the daemon also trims voltage and places
        # work intelligently -> less energy for the same jobs.
        assert smart.energy_j < base.energy_j

    def test_ceiling_never_below_memory_clock(self):
        spec = xgene3_spec()
        capped = CappedDaemonPolicy(spec, cap_w=1.0)  # impossible cap
        workload = ServerWorkloadGenerator(
            max_cores=32, seed=31
        ).generate(300.0)
        ServerSystem(Chip(spec), workload, capped).run()
        assert capped.ceiling_hz >= spec.half_frequency_hz
