"""Focused tests for the fail-safe voltage protocol (Fig. 13).

These exercise the transitional-voltage arithmetic and the
raise-before/settle-after ordering directly, complementing the
end-to-end daemon tests.
"""


from repro.core.placement import PlacementEngine
from repro.platform.chip import Chip
from repro.platform.specs import xgene3_spec
from repro.sim.process import SimProcess, WorkloadClass
from repro.sim.system import ServerSystem
from repro.workloads.generator import Workload
from repro.workloads.suites import get_benchmark


def idle_system(spec):
    workload = Workload(jobs=(), duration_s=10.0, max_cores=spec.n_cores,
                        seed=0)
    return ServerSystem(Chip(spec), workload)


def running(system, pid, name, cores, cls):
    proc = SimProcess(
        pid=pid,
        profile=get_benchmark(name),
        nthreads=len(cores),
        arrival_s=0.0,
    )
    proc.observed_class = cls
    proc.start(0.0, tuple(cores))
    for core in cores:
        system.chip.occupy(core, pid)
    system.processes.append(proc)
    system._by_pid[pid] = proc
    return proc


class TestTransitionalVoltage:
    def test_covers_both_old_and_new(self, policy3):
        spec = xgene3_spec()
        engine = PlacementEngine(spec, policy=policy3)
        system = idle_system(spec)
        # Old state: 8 busy PMDs at fmax.
        for pmd in range(8):
            system.chip.occupy(spec.cores_of_pmd(pmd)[0], f"p{pmd}")
        # New plan: only 2 PMDs.
        proc = SimProcess(
            pid=99,
            profile=get_benchmark("namd"),
            nthreads=4,
            arrival_s=0.0,
        )
        proc.observed_class = WorkloadClass.CPU_INTENSIVE
        plan = engine.plan([proc])
        transitional = engine.transitional_voltage_mv(system, plan)
        old_level = policy3.safe_voltage_mv(8, spec.fmax_hz)
        new_level = plan.voltage_mv
        assert transitional >= old_level
        assert transitional >= new_level

    def test_transitional_at_least_plan(self, policy3):
        spec = xgene3_spec()
        engine = PlacementEngine(spec, policy=policy3)
        system = idle_system(spec)  # idle old state
        proc = SimProcess(
            pid=1,
            profile=get_benchmark("namd"),
            nthreads=32,
            arrival_s=0.0,
        )
        proc.observed_class = WorkloadClass.CPU_INTENSIVE
        plan = engine.plan([proc])
        assert engine.transitional_voltage_mv(system, plan) >= (
            plan.voltage_mv
        )


class TestApplyOrdering:
    def test_voltage_peaks_before_settling(self, policy3):
        # Shrinking from a big configuration to a small one: the rail
        # must not drop below the big configuration's level until after
        # the clocks/migrations applied.
        spec = xgene3_spec()
        engine = PlacementEngine(spec, policy=policy3)
        system = idle_system(spec)
        procs = [
            running(
                system, pid, "namd", (2 * pid, 2 * pid + 1),
                WorkloadClass.CPU_INTENSIVE,
            )
            for pid in range(8)
        ]
        big_plan = engine.plan(procs)
        engine.apply(system, big_plan)
        voltage_big = system.chip.voltage_mv
        # Now all but one finish.
        for proc in procs[1:]:
            system.chip.release_occupant(proc.pid)
            proc.finish(1.0)
        small_plan = engine.plan([procs[0]])
        engine.apply(system, small_plan)
        assert system.chip.voltage_mv == small_plan.voltage_mv
        assert small_plan.voltage_mv < voltage_big
        # The transition log never dipped below the requirement of the
        # larger configuration before the smaller one was in force: the
        # first post-apply transition goes directly to the settle level.
        transitions = system.chip.slimpro.transitions
        assert transitions[-1].to_mv == small_plan.voltage_mv

    def test_raise_for_arrival_headroom(self, policy3):
        spec = xgene3_spec()
        engine = PlacementEngine(spec, policy=policy3)
        system = idle_system(spec)
        running(system, 1, "namd", (0, 1), WorkloadClass.CPU_INTENSIVE)
        plan = engine.retune(system.running_processes())
        engine.apply(system, plan)
        level_before = system.chip.voltage_mv
        engine.raise_for_arrival(system, nthreads=8)
        # Headroom for up to 4 more PMDs at the CPU clock.
        assert system.chip.voltage_mv >= level_before
        assert system.chip.voltage_mv >= policy3.safe_voltage_mv(
            5, spec.fmax_hz
        )

    def test_raise_for_arrival_noop_without_voltage_control(self, policy3):
        spec = xgene3_spec()
        engine = PlacementEngine(
            spec, policy=policy3, control_voltage=False
        )
        system = idle_system(spec)
        before = system.chip.voltage_mv
        engine.raise_for_arrival(system, nthreads=8)
        assert system.chip.voltage_mv == before
