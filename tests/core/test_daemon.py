"""Tests for the online monitoring daemon end to end (paper Section VI)."""


from repro.policies.daemon import OnlineMonitoringDaemon
from repro.policies.safevmin import SafeVminPolicy
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec
from repro.sim.process import WorkloadClass
from repro.sim.system import ServerSystem
from repro.workloads.generator import JobSpec, Workload


def make_workload(jobs, duration=600.0, max_cores=8):
    return Workload(
        jobs=tuple(
            JobSpec(job_id=i, benchmark=name, nthreads=n, start_time_s=t)
            for i, (name, n, t) in enumerate(jobs)
        ),
        duration_s=duration,
        max_cores=max_cores,
        seed=0,
    )


def run_daemon(jobs, spec=None, policy=None, **daemon_kwargs):
    spec = spec or xgene2_spec()
    chip = Chip(spec)
    daemon = OnlineMonitoringDaemon(spec, policy=policy, **daemon_kwargs)
    system = ServerSystem(chip, make_workload(jobs), daemon)
    return system.run(), system, daemon


class TestDaemonSafety:
    def test_never_violates_vmin(self, policy2):
        result, _, _ = run_daemon(
            [("CG", 4, 0.0), ("namd", 1, 5.0), ("milc", 1, 10.0)],
            policy=policy2,
        )
        assert result.violations == []

    def test_all_jobs_complete(self, policy2):
        result, _, _ = run_daemon(
            [("CG", 4, 0.0), ("namd", 1, 5.0), ("EP", 2, 10.0)],
            policy=policy2,
        )
        assert all(p.finish_s is not None for p in result.processes)

    def test_voltage_below_nominal_while_running(self, policy2, spec2):
        result, system, _ = run_daemon(
            [("namd", 2, 0.0)], policy=policy2
        )
        voltages = [s.voltage_mv for s in result.trace.samples]
        assert min(voltages) < spec2.nominal_voltage_mv

    def test_fail_safe_raises_before_lowering(self, policy2):
        # Voltage transitions around a new process first go up (or stay),
        # then settle: no transition sequence may dip below the level
        # required mid-flight. The audit (zero violations) plus at least
        # one raise-then-lower pair proves the ordering.
        result, system, _ = run_daemon(
            [("CG", 2, 0.0), ("namd", 4, 30.0)], policy=policy2
        )
        transitions = system.chip.slimpro.transitions
        ups = [t for t in transitions if t.to_mv > t.from_mv]
        downs = [t for t in transitions if t.to_mv < t.from_mv]
        assert ups and downs
        assert result.violations == []


class TestClassificationFlow:
    def test_memory_job_gets_classified(self, policy2):
        result, _, _ = run_daemon([("CG", 2, 0.0)], policy=policy2)
        cg = result.processes[0]
        assert cg.observed_class is WorkloadClass.MEMORY_INTENSIVE

    def test_cpu_job_gets_classified(self, policy2):
        result, _, _ = run_daemon([("namd", 1, 0.0)], policy=policy2)
        assert (
            result.processes[0].observed_class
            is WorkloadClass.CPU_INTENSIVE
        )

    def test_memory_job_slowed_to_mem_freq(self, policy2, spec2):
        _, system, daemon = run_daemon([("CG", 2, 0.0)], policy=policy2)
        # After the run the last configured frequency of CG's PMDs was
        # the memory frequency; check the transition log.
        mem_freq = daemon.engine.mem_freq_hz
        assert any(
            t.to_hz == mem_freq for t in system.chip.cppc.transitions
        )

    def test_retunes_counted(self, policy2):
        _, _, daemon = run_daemon([("CG", 2, 0.0)], policy=policy2)
        assert daemon.retunes >= 1  # UNKNOWN -> memory triggers one

    def test_replans_on_arrivals_and_exits(self, policy2):
        _, _, daemon = run_daemon(
            [("EP", 2, 0.0), ("EP", 2, 1.0)], policy=policy2
        )
        # on_start + 2 starts + 2 exits.
        assert daemon.replans == 5


class TestPlacementConfigDaemon:
    def test_voltage_stays_nominal(self, policy2, spec2):
        result, system, _ = run_daemon(
            [("CG", 2, 0.0), ("namd", 1, 5.0)],
            policy=policy2,
            control_voltage=False,
        )
        assert system.chip.slimpro.transition_count() == 0
        assert all(
            s.voltage_mv == spec2.nominal_voltage_mv
            for s in result.trace.samples
        )

    def test_still_controls_frequency(self, policy2):
        _, system, _ = run_daemon(
            [("CG", 2, 0.0)], policy=policy2, control_voltage=False
        )
        assert system.chip.cppc.transition_count() > 0


class TestSafeVminPolicy:
    def test_no_violations(self, policy3, spec3):
        chip = Chip(spec3)
        system = ServerSystem(
            chip,
            make_workload(
                [("CG", 4, 0.0), ("namd", 1, 5.0)], max_cores=32
            ),
            SafeVminPolicy(spec3, policy=policy3),
        )
        result = system.run()
        assert result.violations == []

    def test_voltage_tracks_utilized_pmds(self, policy3, spec3):
        chip = Chip(spec3)
        system = ServerSystem(
            chip,
            make_workload([("EP", 8, 0.0)], max_cores=32),
            SafeVminPolicy(spec3, policy=policy3),
        )
        result = system.run()
        busy_voltages = {
            s.voltage_mv
            for s in result.trace.samples
            if s.busy_cores > 0
        }
        # 8 spreaded threads -> 8 PMDs at fmax.
        assert policy3.safe_voltage_mv(8, spec3.fmax_hz) in busy_voltages

    def test_keeps_ondemand_frequencies(self, policy3, spec3):
        chip = Chip(spec3)
        system = ServerSystem(
            chip,
            make_workload([("EP", 4, 0.0)], max_cores=32),
            SafeVminPolicy(spec3, policy=policy3),
        )
        result = system.run()
        busy = [s for s in result.trace.samples if s.busy_cores > 0]
        assert all(
            s.mean_active_freq_hz == spec3.fmax_hz for s in busy
        )
