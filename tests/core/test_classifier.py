"""Tests for the L3C-rate workload classifier (paper Section IV.B)."""

import pytest

from repro.core.classifier import DEFAULT_THRESHOLD, L3RateClassifier
from repro.errors import ConfigurationError
from repro.sim.process import WorkloadClass


@pytest.fixture
def classifier():
    return L3RateClassifier()


class TestThreshold:
    def test_paper_threshold(self):
        assert DEFAULT_THRESHOLD == 3000.0

    def test_above_threshold_memory(self, classifier):
        sample = classifier.classify(8000.0)
        assert sample.decided is WorkloadClass.MEMORY_INTENSIVE

    def test_below_threshold_cpu(self, classifier):
        sample = classifier.classify(100.0)
        assert sample.decided is WorkloadClass.CPU_INTENSIVE

    def test_exactly_threshold_is_cpu(self, classifier):
        # Paper: "more than 3K" -> memory.
        sample = classifier.classify(3000.0)
        assert sample.decided is WorkloadClass.CPU_INTENSIVE

    def test_negative_rate_rejected(self, classifier):
        with pytest.raises(ConfigurationError):
            classifier.classify(-1.0)


class TestHysteresis:
    def test_borderline_does_not_flap(self, classifier):
        # A rate oscillating just inside the band keeps the class.
        first = classifier.classify(
            3100.0, previous=WorkloadClass.CPU_INTENSIVE
        )
        assert first.decided is WorkloadClass.CPU_INTENSIVE  # < upper
        second = classifier.classify(
            2950.0, previous=WorkloadClass.MEMORY_INTENSIVE
        )
        assert second.decided is WorkloadClass.MEMORY_INTENSIVE  # > lower

    def test_clear_crossing_flips(self, classifier):
        sample = classifier.classify(
            5000.0, previous=WorkloadClass.CPU_INTENSIVE
        )
        assert sample.decided is WorkloadClass.MEMORY_INTENSIVE
        assert sample.changed

    def test_changed_flag_only_on_flip(self, classifier):
        stays = classifier.classify(
            100.0, previous=WorkloadClass.CPU_INTENSIVE
        )
        assert not stays.changed

    def test_unknown_never_counts_as_change(self, classifier):
        sample = classifier.classify(
            100.0, previous=WorkloadClass.UNKNOWN
        )
        assert not sample.changed

    def test_bounds(self):
        c = L3RateClassifier(threshold=3000.0, hysteresis=0.1)
        assert c.upper_bound == pytest.approx(3300.0)
        assert c.lower_bound == pytest.approx(2700.0)

    def test_zero_hysteresis_allowed(self):
        c = L3RateClassifier(hysteresis=0.0)
        assert c.upper_bound == c.lower_bound == c.threshold


class TestValidation:
    def test_bad_threshold(self):
        with pytest.raises(ConfigurationError):
            L3RateClassifier(threshold=0.0)

    def test_bad_hysteresis(self):
        with pytest.raises(ConfigurationError):
            L3RateClassifier(hysteresis=1.0)
