"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, DEFAULT_PLATFORM, build_parser, main


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_platform_flag(self):
        args = build_parser().parse_args(["fig7", "--platform", "xgene3"])
        assert args.platform == "xgene3"

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_duration_and_seed(self):
        args = build_parser().parse_args(
            ["table3", "--duration", "120", "--seed", "9"]
        )
        assert args.duration == 120.0
        assert args.seed == 9


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "X-Gene 2" in out and "X-Gene 3" in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "clock_division" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "droop" in capsys.readouterr().out

    def test_fig8_with_platform(self, capsys):
        assert main(["fig8", "--platform", "xgene2"]) == 0
        assert "X-Gene 2" in capsys.readouterr().out

    def test_table3_short(self, capsys):
        assert main(["table3", "--duration", "120", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "baseline" in out

    def test_default_platforms_cover_commands(self):
        # Every command either takes the default or has an entry.
        for name in COMMANDS:
            assert (
                name in DEFAULT_PLATFORM
                or name in ("table1", "table3", "table4", "report")
            )
