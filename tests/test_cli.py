"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMANDS, DEFAULT_PLATFORM, build_parser, main
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.vmin.cache import reset_default_cache


class TestParser:
    def test_all_commands_parse(self):
        parser = build_parser()
        for name in COMMANDS:
            args = parser.parse_args([name])
            assert args.experiment == name

    def test_platform_flag(self):
        args = build_parser().parse_args(["fig7", "--platform", "xgene3"])
        assert args.platform == "xgene3"

    def test_bad_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_duration_and_seed(self):
        args = build_parser().parse_args(
            ["table3", "--duration", "120", "--seed", "9"]
        )
        assert args.duration == 120.0
        assert args.seed == 9


class TestExecution:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in COMMANDS:
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert xgene2_spec().name in out and xgene3_spec().name in out

    def test_fig10(self, capsys):
        assert main(["fig10"]) == 0
        assert "clock_division" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "droop" in capsys.readouterr().out

    def test_fig8_with_platform(self, capsys):
        assert main(["fig8", "--platform", "xgene2"]) == 0
        assert xgene2_spec().name in capsys.readouterr().out

    def test_table3_short(self, capsys):
        assert main(["table3", "--duration", "120", "--seed", "2"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out and "baseline" in out

    def test_default_platforms_cover_commands(self):
        # Every command either takes the default or has an entry.
        for name in COMMANDS:
            assert (
                name in DEFAULT_PLATFORM
                or name in ("table1", "table3", "table4", "report")
            )


class TestRunAll:
    @pytest.fixture(autouse=True)
    def fresh_default_cache(self):
        reset_default_cache()
        yield
        reset_default_cache()

    def test_parser_accepts_jobs_and_cache_dir(self, tmp_path):
        args = build_parser().parse_args(
            ["run-all", "--jobs", "4", "--cache-dir", str(tmp_path)]
        )
        assert args.experiment == "run-all"
        assert args.jobs == 4
        assert args.cache_dir == str(tmp_path)

    def test_jobs_default_is_sequential(self):
        assert build_parser().parse_args(["run-all"]).jobs == 1

    def test_single_experiment_routes_through_orchestrator(
        self, tmp_path, capsys
    ):
        assert main(["fig3", "--cache-dir", str(tmp_path)]) == 0
        assert "safe Vmin" in capsys.readouterr().out
        assert any(tmp_path.iterdir())

    def test_run_all_splits_output_and_summary(self, monkeypatch, capsys):
        # Shrink the registry so the batch stays cheap.
        from repro.experiments import orchestrator, registry

        subset = tuple(
            e for e in registry.REGISTRY
            if e.name in ("table1", "fig5", "fig6")
        )
        monkeypatch.setattr(registry, "REGISTRY", subset)
        monkeypatch.setattr(orchestrator, "REGISTRY", subset)
        monkeypatch.setattr(
            "repro.cli.experiment_names",
            lambda: tuple(e.name for e in subset),
        )
        assert main(["run-all", "--jobs", "1"]) == 0
        captured = capsys.readouterr()
        assert "== table1 ==" in captured.out
        assert "orchestrator summary" in captured.err
        assert "orchestrator summary" not in captured.out
        assert "speedup vs serial sum" in captured.err
