"""Every example script must stay runnable end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: (script, argv, substrings the output must contain)
CASES = [
    (
        "quickstart.py",
        [],
        ["baseline", "optimal", "energy", "violations"],
    ),
    (
        "characterize_chip.py",
        ["xgene2"],
        ["Safe-Vmin characterization", "Table II", "droop"],
    ),
    (
        "server_daemon_demo.py",
        ["xgene2", "400"],
        ["baseline", "safe_vmin", "placement", "optimal", "Paper"],
    ),
    (
        "allocation_explorer.py",
        ["CG", "4"],
        ["clustered", "spreaded", "Energy difference"],
    ),
    (
        "allocation_explorer.py",
        ["namd", "4"],
        ["clustered wins"],
    ),
    (
        "undervolting_study.py",
        ["CG", "32"],
        ["Safe Vmin", "crash point", "sdc"],
    ),
    (
        "phase_tracking_demo.py",
        ["setup-then-crunch"],
        ["phase 0", "phase 1", "Voltage timeline", "never undervolted"],
    ),
    (
        "power_capping_demo.py",
        ["30"],
        ["uncapped baseline", "capped daemon", "less energy"],
    ),
    (
        "vmin_prediction_study.py",
        ["xgene2"],
        ["underpredicted", "Guard needed", "Measured tables win"],
    ),
]


@pytest.mark.parametrize(
    "script,argv,expected",
    CASES,
    ids=[f"{c[0]}:{'-'.join(c[1]) or 'default'}" for c in CASES],
)
def test_example_runs(script, argv, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path), *argv],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for text in expected:
        assert text in completed.stdout, (
            f"{script}: expected {text!r} in output"
        )


def test_custom_platform_example():
    path = EXAMPLES_DIR / "custom_platform.py"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr
    for text in ("Hydra-16", "Policy table built", "optimal",
                 "methodology transfers"):
        assert text in completed.stdout
