"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.policy import VminPolicyTable
from repro.platform.chip import Chip
from repro.platform.specs import xgene2_spec, xgene3_spec
from repro.power.model import PowerModel
from repro.vmin.model import VminModel
from repro.workloads.generator import ServerWorkloadGenerator
from repro.workloads.suites import get_benchmark


@pytest.fixture
def spec2():
    """X-Gene 2 spec."""
    return xgene2_spec()


@pytest.fixture
def spec3():
    """X-Gene 3 spec."""
    return xgene3_spec()


@pytest.fixture
def chip2():
    """Fresh X-Gene 2 chip (paper silicon)."""
    return Chip(xgene2_spec())


@pytest.fixture
def chip3():
    """Fresh X-Gene 3 chip (paper silicon)."""
    return Chip(xgene3_spec())


@pytest.fixture
def vmin2(spec2):
    """Ground-truth Vmin model of the paper's X-Gene 2."""
    return VminModel(spec2)


@pytest.fixture
def vmin3(spec3):
    """Ground-truth Vmin model of the paper's X-Gene 3."""
    return VminModel(spec3)


@pytest.fixture
def power2(spec2):
    """X-Gene 2 power model."""
    return PowerModel(spec2)


@pytest.fixture
def power3(spec3):
    """X-Gene 3 power model."""
    return PowerModel(spec3)


@pytest.fixture(scope="session")
def policy2():
    """Characterization-backed policy table for X-Gene 2 (cached)."""
    return VminPolicyTable.from_characterization(xgene2_spec())


@pytest.fixture(scope="session")
def policy3():
    """Characterization-backed policy table for X-Gene 3 (cached)."""
    return VminPolicyTable.from_characterization(xgene3_spec())


@pytest.fixture
def namd():
    """The most CPU-intensive SPEC profile."""
    return get_benchmark("namd")


@pytest.fixture
def cg():
    """The most memory-intensive NPB profile."""
    return get_benchmark("CG")


@pytest.fixture
def short_workload2():
    """Small deterministic workload for the 8-core chip."""
    return ServerWorkloadGenerator(max_cores=8, seed=7).generate(300.0)


@pytest.fixture
def short_workload3():
    """Small deterministic workload for the 32-core chip."""
    return ServerWorkloadGenerator(max_cores=32, seed=7).generate(300.0)
